//! End-to-end stochastic execution on the optical circuit.
//!
//! [`OpticalScSystem`] runs the complete paper pipeline for a Bernstein
//! polynomial evaluation: SNGs generate the data and coefficient streams,
//! every clock cycle the transmission model produces the power reaching
//! the photodetector, Gaussian receiver noise perturbs the observation,
//! the de-randomizer thresholds and counts — and the result is compared
//! against the exact polynomial value and against the ideal (noise-free)
//! electronic ReSC output.
//!
//! # Word-parallel execution
//!
//! The hot paths never touch individual bits: they work on packed `u64`
//! words, transposing 64 clock cycles per memory pass into
//! `(ones-count, z-word)` pairs. The receiver is folded analytically —
//! because the adder only sees the ones count and the circuit's power for
//! each `(count, z-word)` pair is precomputed, the probability that the
//! Gaussian-noise observation clears the threshold is a per-pair constant
//! `Q((threshold − power)/σ)`. A cycle's decision is then a Bernoulli
//! draw against that constant (one uniform draw, and none at all when the
//! bands are far enough apart that the probability saturates at 0 or 1),
//! instead of a full Gaussian sample per cycle.
//!
//! # The evaluate paths, and when to use each
//!
//! Four implementations share draw-for-draw identical semantics; two more
//! keep the original physical-sampling seed semantics:
//!
//! - [`OpticalScSystem::evaluate_fused`] — the hot default. Streams SNG
//!   words straight into the decision kernel through
//!   [`SngWordCursor`](osc_stochastic::sng::SngWordCursor)s: data streams
//!   fold into bit-sliced ones-count planes as they leave the generator,
//!   coefficient streams fold into the decision (or land in reusable
//!   scratch for noisy circuits), and **no `BitStream` is ever
//!   materialized** — zero heap allocation once the caller's
//!   [`EvalScratch`] has warmed up. Use this anywhere throughput matters
//!   (the batch, parallel-lane and image pipelines all do).
//! - [`OpticalScSystem::evaluate_fused_lanes`] — the lane-blocked form:
//!   `L` independent evaluations walked in 64-cycle lock-step as
//!   `[u64; L]` register groups, with vectorized comparator chains and a
//!   runtime-dispatched SIMD popcount ([`osc_stochastic::simd`]).
//!   `evaluate_fused` is its `L = 1` case; every lane is bit-identical
//!   to a standalone `evaluate_fused` call.
//! - [`OpticalScSystem::evaluate`] — the materializing equivalence twin:
//!   generates the `2n+1` input streams as `BitStream`s, then runs the
//!   same word-transposed kernel. Bit-identical to `evaluate_fused`
//!   (the property tests pin the pair across SNGs, orders and ragged
//!   lengths). Use it when the intermediate streams themselves are of
//!   interest, or as the reference side of fusion benchmarks.
//! - [`OpticalScSystem::evaluate_bitwise`] — per-bit twin of `evaluate`,
//!   draw-for-draw identical (equivalence tests pin exact equality).
//!   The readable specification of the kernel; use it in tests.
//! - [`OpticalScSystem::decide_streams`] — same decision rule over
//!   pre-generated streams when callers need the output bits.
//! - [`OpticalScSystem::evaluate_analog`] — the physical-sampling
//!   reference: one explicit Gaussian power observation per cycle
//!   (batched through [`Xoshiro256PlusPlus::fill_gaussian`]), thresholded
//!   by the de-randomizer. Statistically identical to `evaluate`; kept as
//!   the seed-semantics baseline for benchmarks and validation.
//! - [`OpticalScSystem::evaluate_reference`] — the frozen pre-word-
//!   parallel seed implementation, kept only as the benchmarks' "before"
//!   side. Do not use in new code.

use crate::backend::{Backend, BackendKind, ScBackend};
use crate::fault::FaultSpec;
use crate::receiver::Derandomizer;
use crate::{params::CircuitParams, CircuitError};
use osc_math::rng::Xoshiro256PlusPlus;
use osc_math::special::gaussian_q;
use osc_stochastic::bernstein::BernsteinPoly;
use osc_stochastic::bitstream::BitStream;
use osc_stochastic::resc::{fold_data_words, fold_sel_words, planes_for, ReScUnit};
use osc_stochastic::simd;
use osc_stochastic::sng::StochasticNumberGenerator;
use osc_units::Milliwatts;

/// Reusable scratch state for [`OpticalScSystem::evaluate_fused`].
///
/// Holds the bit-sliced ones-count planes the data streams fold into, the
/// coefficient words of noisy (non-deterministic) circuits, and the folded
/// decision output. Buffers grow on first use and are reused verbatim
/// afterwards, so steady-state fused evaluation performs **zero heap
/// allocation per call** — thread one scratch per worker through batch
/// loops ([`crate::batch::BatchEvaluator`] and the image pipelines do).
#[derive(Debug, Clone, Default)]
pub struct EvalScratch {
    /// Count planes, plane-major: plane `p` of block `w` lives at
    /// `p * words + w` (`nplanes = planes_for(order)` planes), so the
    /// fold passes run elementwise over whole arrays and vectorize.
    planes: Vec<u64>,
    /// Coefficient words, stream-major: stream `c` of block `w` lives at
    /// `c * words + w`. Only used by the noisy kernel tiers — the
    /// exact-multiplexer tier folds coefficients without storing them.
    coeff: Vec<u64>,
    /// Folded ideal multiplexer output `z_count`, one word per 64-cycle
    /// block (also the decided output in the exact-multiplexer tier).
    sel: Vec<u64>,
    /// Landing buffer for up to two streams being generated (one pair),
    /// before their words fold into `planes`/`sel`.
    stream_buf: Vec<u64>,
    /// Gather/splice scratch for the fault-injection pass (only touched
    /// when a [`FaultSpec`] with active bit-shifts rides the run).
    fault_tmp: Vec<u64>,
}

impl EvalScratch {
    /// Creates empty scratch; buffers are sized lazily by the first run.
    pub fn new() -> Self {
        EvalScratch::default()
    }

    /// Currently reserved capacity in `u64` words across all buffers —
    /// lets tests pin that steady-state evaluation stops allocating.
    pub fn capacity_words(&self) -> usize {
        self.planes.capacity()
            + self.coeff.capacity()
            + self.sel.capacity()
            + self.stream_buf.capacity()
            + self.fault_tmp.capacity()
    }
}

/// Per-lane `(ones, ideal_ones, decision_flips)` counters returned by
/// the lane kernel.
type LaneCounts<const L: usize> = ([usize; L], [usize; L], [usize; L]);

/// Fault-injection hook of the lane kernel: perturbs stream `j`'s
/// freshly drained lane-interleaved words (block `w` of lane `l` at
/// `d[w * L + l]`) with each lane's fault process, after generation and
/// **before** the words fold into count planes / the decision. Lane
/// `l`'s events depend only on `(faults[l], j, bit position)` — never on
/// `L`, the lane slot or the dispatch tier — which is what keeps faulty
/// evaluation bit-identical across tiers and lane widths.
fn apply_stream_faults<const L: usize>(
    faults: Option<&[FaultSpec; L]>,
    j: usize,
    d: &mut [u64],
    stream_length: usize,
    tmp: &mut Vec<u64>,
) {
    if let Some(specs) = faults {
        for (l, spec) in specs.iter().enumerate() {
            if spec.is_active() {
                spec.apply_to_words(j as u64, d, l, L, stream_length, tmp);
            }
        }
    }
}

/// Nibble-spread tables for the noisy decision tiers: `SPREAD[pos][v]`
/// scatters the nibble `v`'s 4 bits into four 16-bit lanes at bit `pos`,
/// so a block's 64 table indices `(count << (n+1)) | zw` assemble with
/// two lookups + ORs per source word per 8 cycles instead of ~10
/// shift/mask ops per cycle. Covers index bit positions 0..15 (orders
/// ≤ 11); at 2 KiB total the tables stay L1-resident.
fn spread_tables() -> &'static [[u64; 16]; 16] {
    use std::sync::OnceLock;
    static TABLES: OnceLock<[[u64; 16]; 16]> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut tables = [[0u64; 16]; 16];
        for (pos, tab) in tables.iter_mut().enumerate() {
            for (v, slot) in tab.iter_mut().enumerate() {
                let mut acc = 0u64;
                for k in 0..4 {
                    if (v >> k) & 1 == 1 {
                        acc |= 1u64 << (k * 16 + pos);
                    }
                }
                *slot = acc;
            }
        }
        tables
    })
}

/// Result of one end-to-end optical evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpticalRun {
    /// Optical estimate after noisy detection and counting.
    pub estimate: f64,
    /// The ideal stochastic estimate (same streams, no optical noise) —
    /// what the electronic ReSC unit would have produced.
    pub ideal_estimate: f64,
    /// Exact polynomial value.
    pub exact: f64,
    /// Fraction of clock cycles whose decision differed from the ideal
    /// multiplexer output (the observed transmission BER).
    pub observed_ber: f64,
    /// Stream length used.
    pub stream_length: usize,
}

impl OpticalRun {
    /// Absolute error against the exact value.
    pub fn abs_error(&self) -> f64 {
        (self.estimate - self.exact).abs()
    }

    /// Error attributable to the optical transmission alone (optical
    /// estimate vs. ideal stochastic estimate).
    pub fn optical_error(&self) -> f64 {
        (self.estimate - self.ideal_estimate).abs()
    }
}

/// The complete optical SC computer: transmission backend + programmed
/// polynomial. The system owns the folded decision tables and every
/// `evaluate*` kernel; the [`Backend`] supplies only the per-(count,
/// z-word) transmission physics, so every kernel tier and serving mode
/// is backend-generic by construction.
#[derive(Debug, Clone)]
pub struct OpticalScSystem {
    params: CircuitParams,
    backend: Backend,
    poly: BernsteinPoly,
    resc: ReScUnit,
    derandomizer: Derandomizer,
    /// Received power for every (count-of-ones, coefficient-word) pair,
    /// indexed `[count][z_word]`.
    power_table: Vec<Vec<Milliwatts>>,
    /// Probability the noisy observation clears the decision threshold,
    /// per (count-of-ones, coefficient-word) pair:
    /// `Q((threshold − power) / σ)`. The analytic folding of the receiver
    /// noise that lets the hot path decide cycles with at most one uniform
    /// draw each. Stored flat with row stride `2^(order+1)` — index
    /// `count << (order+1) | z_word` — so a cycle decision costs one load.
    one_probability: Vec<f64>,
    /// Whether every folded probability is saturated at exactly 0 or 1
    /// (bands far apart relative to the receiver noise). In that regime
    /// decisions are a pure function of the cycle's `(count, z-word)` and
    /// the kernel runs branch-free without consuming any randomness.
    deterministic_decisions: bool,
    /// Stronger still: every saturated decision equals the ideal
    /// multiplexer output `z_count` (the circuit transmits perfectly).
    /// Then a whole 64-cycle block reduces to a bit-sliced popcount —
    /// the fastest kernel tier.
    mux_exact: bool,
    /// Per-entry decision class, same indexing as `one_probability`:
    /// 0 = always zero, 1 = always one, 2 = needs a uniform draw. Lets
    /// the mixed kernel tier branch only on the (rare, predictable)
    /// ambiguous class instead of on two data-dependent f64 compares.
    decision_class: Vec<u8>,
}

impl OpticalScSystem {
    /// Maximum order supported by the exhaustive power table.
    pub const MAX_SIM_ORDER: usize = 12;

    /// Width of the stack-resident word-register arrays inside the
    /// kernels: room for the `order + 1` coefficient streams at
    /// [`OpticalScSystem::MAX_SIM_ORDER`]. Deriving it from the order cap
    /// keeps the kernel register arrays and the constructor bound from
    /// drifting apart.
    pub const WORD_REGS: usize = Self::MAX_SIM_ORDER + 1;

    /// Decision-flip probabilities below this are folded to exact 0/1 in
    /// the receiver table: no simulable stream length could observe them.
    pub const NEGLIGIBLE_FLIP_PROBABILITY: f64 = 1e-18;

    /// Builds a system executing `poly` on a circuit with `params`.
    ///
    /// # Errors
    ///
    /// [`CircuitError::InvalidStructure`] when the polynomial degree does
    /// not match `params.order` or the order exceeds
    /// [`OpticalScSystem::MAX_SIM_ORDER`]; otherwise propagates circuit
    /// construction failures.
    pub fn new(params: CircuitParams, poly: BernsteinPoly) -> Result<Self, CircuitError> {
        if poly.degree() != params.order {
            return Err(CircuitError::InvalidStructure(format!(
                "polynomial degree {} does not match circuit order {}",
                poly.degree(),
                params.order
            )));
        }
        if params.order > Self::MAX_SIM_ORDER {
            return Err(CircuitError::InvalidStructure(format!(
                "end-to-end simulation supports order <= {}, got {} (use the analytical model)",
                Self::MAX_SIM_ORDER,
                params.order
            )));
        }
        let backend = Backend::new(&params)?;
        let bands = backend.power_bands()?;
        let derandomizer = Derandomizer::from_bands(&bands);
        let n = params.order;
        // Precompute power for each (count, z-word): the adder only sees
        // the count, so 2^n data words collapse to n+1 rows.
        let mut power_table = Vec::with_capacity(n + 1);
        for count in 0..=n {
            let mut row = Vec::with_capacity(1 << (n + 1));
            for zw in 0..(1u32 << (n + 1)) {
                row.push(backend.received_power(count, zw)?);
            }
            power_table.push(row);
        }
        let sigma = backend.noise_sigma();
        let threshold = derandomizer.threshold();
        let one_probability: Vec<f64> = power_table
            .iter()
            .flat_map(|row| {
                row.iter().map(|&power| {
                    let q = if sigma.as_mw() > 0.0 {
                        gaussian_q((threshold - power).as_mw() / sigma.as_mw())
                    } else if power > threshold {
                        1.0
                    } else {
                        0.0
                    };
                    // Saturate sub-observable tails: a decision-flip
                    // probability below 1e-18 (e.g. Q(16σ) ≈ 1e-58 at the
                    // paper's operating point) would need ~1 exa-cycle to
                    // produce a single flip, far beyond any simulable
                    // stream, so folding it to an exact 0/1 is
                    // statistically invisible — and unlocks the
                    // deterministic kernel tiers. (The upper tail needs no
                    // clamp: 1 − 1e-58 already rounds to exactly 1.0.)
                    if q < Self::NEGLIGIBLE_FLIP_PROBABILITY {
                        0.0
                    } else if q > 1.0 - Self::NEGLIGIBLE_FLIP_PROBABILITY {
                        1.0
                    } else {
                        q
                    }
                })
            })
            .collect();
        let decision_class: Vec<u8> = one_probability
            .iter()
            .map(|&p| {
                if p <= 0.0 {
                    0
                } else if p >= 1.0 {
                    1
                } else {
                    2
                }
            })
            .collect();
        let deterministic_decisions = one_probability.iter().all(|&p| p <= 0.0 || p >= 1.0);
        let mux_exact = deterministic_decisions
            && one_probability.iter().enumerate().all(|(idx, &p)| {
                let count = idx >> (n + 1);
                let zw = idx & ((1 << (n + 1)) - 1);
                (p >= 1.0) == ((zw >> count) & 1 == 1)
            });
        Ok(OpticalScSystem {
            params,
            backend,
            resc: ReScUnit::new(poly.clone()),
            poly,
            derandomizer,
            power_table,
            one_probability,
            deterministic_decisions,
            mux_exact,
            decision_class,
        })
    }

    /// The parameter set the system was built from.
    pub fn params(&self) -> &CircuitParams {
        &self.params
    }

    /// The transmission backend realizing the circuit.
    pub fn backend(&self) -> &Backend {
        &self.backend
    }

    /// Which transmission physics realizes the circuit.
    pub fn backend_kind(&self) -> BackendKind {
        self.backend.kind()
    }

    /// The programmed polynomial.
    pub fn polynomial(&self) -> &BernsteinPoly {
        &self.poly
    }

    /// The receiver decision stage.
    pub fn derandomizer(&self) -> &Derandomizer {
        &self.derandomizer
    }

    /// Runs one end-to-end evaluation of the polynomial at `x`.
    ///
    /// `sng` drives the stochastic streams; `rng` drives the receiver
    /// noise. The receiver samples once per clock cycle with the
    /// detector's input-referred power noise.
    ///
    /// # Errors
    ///
    /// Propagates stream-generation errors for invalid `x`.
    pub fn evaluate<S: StochasticNumberGenerator>(
        &self,
        x: f64,
        stream_length: usize,
        sng: &mut S,
        rng: &mut Xoshiro256PlusPlus,
    ) -> Result<OpticalRun, CircuitError> {
        let (data, coeffs) = self
            .resc
            .generate_streams(x, stream_length, sng)
            .map_err(|e| CircuitError::InvalidStructure(e.to_string()))?;
        let (ones, ideal_ones, decision_flips) =
            self.dispatch_word_kernel(&data, &coeffs, stream_length, rng);
        Ok(self.finish_run(x, stream_length, ones, ideal_ones, decision_flips))
    }

    /// Fused zero-materialization evaluation: streams SNG words straight
    /// into the decision kernel.
    ///
    /// Where [`OpticalScSystem::evaluate`] first materializes `2n+1`
    /// [`BitStream`]s and then walks them, this path pulls one 64-cycle
    /// word at a time from each stream's
    /// [`SngWordCursor`](osc_stochastic::sng::SngWordCursor): the `n` data
    /// streams fold into `⌈log₂(n+1)⌉` bit-sliced ones-count planes as
    /// they leave the generator, and the `n+1` coefficient streams either
    /// fold directly into the decision (exact-multiplexer circuits) or
    /// land in `scratch` for the noisy kernel tiers. No stream is ever
    /// heap-allocated; `scratch` is reused across calls, so steady-state
    /// evaluation allocates nothing.
    ///
    /// Bit-identical to [`OpticalScSystem::evaluate`] and
    /// [`OpticalScSystem::evaluate_bitwise`]: same SNG comparator draws in
    /// the same order, same receiver-noise draws, same [`OpticalRun`] —
    /// the crate's property tests pin the three-way equality across all
    /// four SNGs, every simulable order and ragged stream lengths.
    ///
    /// # Errors
    ///
    /// Propagates stream-generation errors for invalid `x`.
    pub fn evaluate_fused<S: StochasticNumberGenerator>(
        &self,
        x: f64,
        stream_length: usize,
        sng: &mut S,
        rng: &mut Xoshiro256PlusPlus,
        scratch: &mut EvalScratch,
    ) -> Result<OpticalRun, CircuitError> {
        self.evaluate_fused_faulted(x, stream_length, sng, rng, None, scratch)
    }

    /// [`OpticalScSystem::evaluate_fused`] with an optional
    /// [`FaultSpec`] perturbing every generated stream at the SNG cursor
    /// boundary (see [`crate::fault`] for the universe derivation).
    /// `fault` carries the **item-level** spec — callers batching many
    /// items derive it via [`FaultSpec::rebased`]`(global_index)`.
    /// Passing `None` (or a spec with [`FaultSpec::is_active`] false) is
    /// bit-identical to the clean path.
    ///
    /// # Errors
    ///
    /// Propagates stream-generation errors for invalid `x`.
    pub fn evaluate_fused_faulted<S: StochasticNumberGenerator>(
        &self,
        x: f64,
        stream_length: usize,
        sng: &mut S,
        rng: &mut Xoshiro256PlusPlus,
        fault: Option<&FaultSpec>,
        scratch: &mut EvalScratch,
    ) -> Result<OpticalRun, CircuitError> {
        let faults = fault.map(|f| [*f]);
        let [run] = self.evaluate_fused_lanes_faulted::<1, S>(
            &[x],
            stream_length,
            std::array::from_mut(sng),
            std::array::from_mut(rng),
            faults.as_ref(),
            scratch,
        )?;
        Ok(run)
    }

    /// Lane-blocked fused evaluation: `L` independent end-to-end runs —
    /// lane `l` at input `xs[l]`, drawing its streams from `sngs[l]` and
    /// its receiver noise from `rngs[l]` — executed in 64-cycle
    /// lock-step through one shared kernel pass. This is the software
    /// form of the paper's Section V.C lane bank (see
    /// [`crate::parallel`]): the spatially separate circuit lanes become
    /// `[u64; L]` register groups walked side by side.
    ///
    /// Per-stream word arrays live *lane-interleaved* in `scratch`
    /// (block `w` of lane `l` at `w * L + l`), so the bit-sliced
    /// adder/multiplexer folds process `L` lanes per elementwise pass and
    /// the per-lane output counting is one SIMD popcount+fold sweep
    /// ([`osc_stochastic::simd`], runtime-dispatched scalar / AVX2 /
    /// AVX-512, overridable via `OSC_SIMD` for CI pinning). Generation
    /// interleaves all `L` comparator chains
    /// ([`StochasticNumberGenerator::drain_lanes`]) and, on long streams,
    /// pairs consecutive streams per lane from GF(2)-jumped states
    /// (`2L` chains, [`StochasticNumberGenerator::drain_lanes_two`]).
    ///
    /// Lane `l`'s [`OpticalRun`] — and the final states of `sngs[l]` and
    /// `rngs[l]` — are **bit-identical** to a standalone
    /// [`OpticalScSystem::evaluate_fused`] call with the same inputs;
    /// `evaluate_fused` is the `L = 1` case of this kernel, so the
    /// three-way fused/materializing/bitwise property tests transitively
    /// pin every lane width.
    ///
    /// # Errors
    ///
    /// Propagates stream-generation errors when any `xs[l]` is invalid
    /// (checked before any randomness is consumed).
    pub fn evaluate_fused_lanes<const L: usize, S: StochasticNumberGenerator>(
        &self,
        xs: &[f64; L],
        stream_length: usize,
        sngs: &mut [S; L],
        rngs: &mut [Xoshiro256PlusPlus; L],
        scratch: &mut EvalScratch,
    ) -> Result<[OpticalRun; L], CircuitError> {
        self.evaluate_fused_lanes_faulted(xs, stream_length, sngs, rngs, None, scratch)
    }

    /// [`OpticalScSystem::evaluate_fused_lanes`] with optional per-lane
    /// [`FaultSpec`]s: lane `l` perturbs its streams with `faults[l]`
    /// (the item-level spec — each lane's fault universe depends only on
    /// its spec and the stream index, never on `L` or the lane slot, so
    /// every lane stays bit-identical to a standalone
    /// [`OpticalScSystem::evaluate_fused_faulted`] run across every
    /// dispatch tier and lane width).
    ///
    /// # Errors
    ///
    /// Propagates stream-generation errors when any `xs[l]` is invalid
    /// (checked before any randomness is consumed).
    pub fn evaluate_fused_lanes_faulted<const L: usize, S: StochasticNumberGenerator>(
        &self,
        xs: &[f64; L],
        stream_length: usize,
        sngs: &mut [S; L],
        rngs: &mut [Xoshiro256PlusPlus; L],
        faults: Option<&[FaultSpec; L]>,
        scratch: &mut EvalScratch,
    ) -> Result<[OpticalRun; L], CircuitError> {
        // On the scalar dispatch tier the `[u64; L]` lock-step walk has
        // no vector engine behind it and loses to L standalone passes
        // (pr5's forced-scalar records measured 0.79–0.85×), so degrade
        // to sequential per-lane runs — bit-identical by the lane
        // contract this function documents below.
        if L > 1 && simd::active_tier() == simd::SimdTier::Scalar {
            let mut out: [Option<OpticalRun>; L] = [None; L];
            for l in 0..L {
                out[l] = Some(self.evaluate_fused_faulted(
                    xs[l],
                    stream_length,
                    &mut sngs[l],
                    &mut rngs[l],
                    faults.map(|f| &f[l]),
                    scratch,
                )?);
            }
            return Ok(out.map(|r| r.expect("every lane filled")));
        }
        let (ones, ideal, flips) = match self.params.order {
            1 => self.lane_kernel::<1, L, S>(xs, stream_length, sngs, rngs, faults, scratch),
            2 => self.lane_kernel::<2, L, S>(xs, stream_length, sngs, rngs, faults, scratch),
            3 => self.lane_kernel::<3, L, S>(xs, stream_length, sngs, rngs, faults, scratch),
            4 => self.lane_kernel::<4, L, S>(xs, stream_length, sngs, rngs, faults, scratch),
            5 => self.lane_kernel::<5, L, S>(xs, stream_length, sngs, rngs, faults, scratch),
            6 => self.lane_kernel::<6, L, S>(xs, stream_length, sngs, rngs, faults, scratch),
            7 => self.lane_kernel::<7, L, S>(xs, stream_length, sngs, rngs, faults, scratch),
            8 => self.lane_kernel::<8, L, S>(xs, stream_length, sngs, rngs, faults, scratch),
            9 => self.lane_kernel::<9, L, S>(xs, stream_length, sngs, rngs, faults, scratch),
            10 => self.lane_kernel::<10, L, S>(xs, stream_length, sngs, rngs, faults, scratch),
            11 => self.lane_kernel::<11, L, S>(xs, stream_length, sngs, rngs, faults, scratch),
            12 => self.lane_kernel::<12, L, S>(xs, stream_length, sngs, rngs, faults, scratch),
            n => unreachable!("order {n} exceeds MAX_SIM_ORDER"),
        }
        .map_err(|e| CircuitError::InvalidStructure(e.to_string()))?;
        Ok(std::array::from_fn(|l| {
            self.finish_run(xs[l], stream_length, ones[l], ideal[l], flips[l])
        }))
    }

    /// Streams shorter than this are generated one chain at a time: the
    /// GF(2) jump that lets [`StochasticNumberGenerator::drain_two`] run
    /// two streams as interleaved chains costs ~0.6 µs per pair, which
    /// only pays for itself once each stream is a few thousand bits.
    const PAIR_STREAM_CUTOFF: usize = 4096;

    /// The lane-blocked fused kernel body: generation-order streaming
    /// (all data streams, then all coefficient streams — the exact draw
    /// order of [`ReScUnit::generate_streams`], per lane), with the
    /// decision phase matching the same three tiers as
    /// [`OpticalScSystem::word_kernel`]. Returns per-lane
    /// `(ones, ideal_ones, decision_flips)`.
    ///
    /// Streams land in reusable scratch buffers (never a `BitStream`),
    /// stored lane-interleaved (`[u64; L]` register groups): data words
    /// fold into bit-sliced ones-count planes, coefficient words fold
    /// into the ideal multiplexer output (and are retained for the noisy
    /// tiers). The elementwise fold passes are lane-width-oblivious —
    /// they simply run over `words × L` blocks. On long streams,
    /// consecutive streams are drawn as `2L` interleaved chains from
    /// GF(2)-jumped states via
    /// [`StochasticNumberGenerator::drain_lanes_two`]. Per-lane ideal
    /// ones come from one SIMD popcount+fold sweep over the
    /// lane-interleaved output; the noisy decision pass walks each lane's
    /// strided words with byte-spread index assembly ([`spread_tables`]),
    /// consuming that lane's `rngs[l]` in exactly the per-lane cycle
    /// order.
    fn lane_kernel<const N: usize, const L: usize, S: StochasticNumberGenerator>(
        &self,
        xs: &[f64; L],
        stream_length: usize,
        sngs: &mut [S; L],
        rngs: &mut [Xoshiro256PlusPlus; L],
        faults: Option<&[FaultSpec; L]>,
        scratch: &mut EvalScratch,
    ) -> Result<LaneCounts<L>, osc_stochastic::ScError> {
        let nplanes = planes_for(N);
        let words = stream_length.div_ceil(64);
        let wl = words * L;
        let mux_exact = self.mux_exact;
        scratch.planes.clear();
        scratch.planes.resize(wl * nplanes, 0);
        scratch.sel.clear();
        scratch.sel.resize(wl, 0);
        if scratch.stream_buf.len() < 2 * wl {
            scratch.stream_buf.resize(2 * wl, 0);
        }
        if !mux_exact && scratch.coeff.len() < (N + 1) * wl {
            scratch.coeff.resize((N + 1) * wl, 0);
        }
        let coeffs = self.poly.coeffs();
        // Stream j of the generation order: data (lane l at probability
        // xs[l]) for j < N, then the n+1 Bernstein coefficients (shared
        // by every lane). Data streams and — in the exact-multiplexer
        // regime — coefficient streams fold immediately and land in the
        // pair buffer; noisy-tier coefficient words are retained in
        // `scratch.coeff`.
        let probs = |j: usize| -> [f64; L] {
            if j < N {
                *xs
            } else {
                [coeffs[j - N]; L]
            }
        };
        let buffered = |j: usize| j < N || mux_exact;
        let total = 2 * N + 1;
        let try_pairs = stream_length >= Self::PAIR_STREAM_CUTOFF;
        let mut j = 0usize;
        while j < total {
            let mut paired = false;
            if try_pairs && j + 1 < total {
                let (buf_a, buf_b) = scratch.stream_buf.split_at_mut(wl);
                let (d0, d1): (&mut [u64], &mut [u64]) = match (buffered(j), buffered(j + 1)) {
                    (true, true) => (&mut buf_a[..wl], &mut buf_b[..wl]),
                    (true, false) => {
                        let c1 = j + 1 - N;
                        (&mut buf_a[..wl], &mut scratch.coeff[c1 * wl..(c1 + 1) * wl])
                    }
                    (false, false) => {
                        let c0 = j - N;
                        let (left, right) = scratch.coeff.split_at_mut((c0 + 1) * wl);
                        (&mut left[c0 * wl..], &mut right[..wl])
                    }
                    (false, true) => unreachable!("data streams precede coefficient streams"),
                };
                {
                    let mut w = 0usize;
                    paired = S::drain_lanes_two(
                        sngs,
                        &probs(j),
                        &probs(j + 1),
                        stream_length,
                        |b0, b1, _| {
                            d0[w * L..(w + 1) * L].copy_from_slice(b0);
                            d1[w * L..(w + 1) * L].copy_from_slice(b1);
                            w += 1;
                        },
                    )?;
                }
                if paired {
                    for (jj, d) in [(j, d0), (j + 1, d1)] {
                        apply_stream_faults::<L>(
                            faults,
                            jj,
                            d,
                            stream_length,
                            &mut scratch.fault_tmp,
                        );
                        if jj < N {
                            fold_data_words(d, &mut scratch.planes, nplanes);
                        } else {
                            fold_sel_words(d, &scratch.planes, &mut scratch.sel, jj - N, nplanes);
                        }
                    }
                    j += 2;
                }
            }
            if !paired {
                let d: &mut [u64] = if buffered(j) {
                    &mut scratch.stream_buf[..wl]
                } else {
                    let c = j - N;
                    &mut scratch.coeff[c * wl..(c + 1) * wl]
                };
                {
                    let mut w = 0usize;
                    S::drain_lanes(sngs, &probs(j), stream_length, |b, _| {
                        d[w * L..(w + 1) * L].copy_from_slice(b);
                        w += 1;
                    })?;
                }
                apply_stream_faults::<L>(faults, j, d, stream_length, &mut scratch.fault_tmp);
                if j < N {
                    fold_data_words(d, &mut scratch.planes, nplanes);
                } else {
                    fold_sel_words(d, &scratch.planes, &mut scratch.sel, j - N, nplanes);
                }
                j += 1;
            }
        }
        // Per-lane ideal multiplexer ones: the SIMD popcount+fold over
        // the lane-interleaved folded output.
        let mut ideal_acc = [0u64; L];
        simd::popcount_lanes_accumulate(&scratch.sel, &mut ideal_acc);
        let ideal: [usize; L] = std::array::from_fn(|l| ideal_acc[l] as usize);
        if mux_exact {
            // Tier 1: every decision equals the ideal multiplexer bit
            // z_count — the folded output IS the decided stream.
            return Ok((ideal, ideal, [0; L]));
        }
        // Noisy tiers: per-cycle table decisions against the folded
        // receiver probabilities, lane by lane so that lane l consumes
        // rngs[l] in exactly the traversal order of a standalone fused
        // run (identical to the materializing kernel's tiers 2 and 3).
        let table = &self.one_probability[..];
        let classes = &self.decision_class[..];
        let deterministic = self.deterministic_decisions;
        let mut ones = [0usize; L];
        let mut flips = [0usize; L];
        if (N + 1) + nplanes <= 16 {
            // Nibble-spread index assembly: 8 cycles of `(count << (N+1))
            // | zw` per lookup group (low nibble → lanes 0–3, high nibble
            // → lanes 4–7).
            let spread = spread_tables();
            let mut idxs = [0u16; 64];
            for (l, rng) in rngs.iter_mut().enumerate() {
                let mut remaining = stream_length;
                for w in 0..words {
                    let nbits = remaining.min(64);
                    let mut src = [0u64; Self::WORD_REGS + 4];
                    for (c, slot) in src[..=N].iter_mut().enumerate() {
                        *slot = scratch.coeff[c * wl + w * L + l];
                    }
                    for p in 0..nplanes {
                        src[N + 1 + p] = scratch.planes[p * wl + w * L + l];
                    }
                    let nsrc = N + 1 + nplanes;
                    // Vector-first: on the AVX-512 tier the whole 64 ×
                    // nsrc bit transpose assembles in two ZMM
                    // accumulators (one mask broadcast + AND/OR per
                    // source word); otherwise the nibble-spread tables.
                    if !simd::assemble_indices16(&src[..nsrc], &mut idxs) {
                        for k in 0..8 {
                            let sh = k * 8;
                            let (mut lo, mut hi) = (0u64, 0u64);
                            for (j, &word) in src[..nsrc].iter().enumerate() {
                                let byte = (word >> sh) & 0xFF;
                                lo |= spread[j][(byte & 0xF) as usize];
                                hi |= spread[j][(byte >> 4) as usize];
                            }
                            for (b, slot) in idxs[k * 8..k * 8 + 4].iter_mut().enumerate() {
                                *slot = (lo >> (b * 16)) as u16;
                            }
                            for (b, slot) in idxs[k * 8 + 4..k * 8 + 8].iter_mut().enumerate() {
                                *slot = (hi >> (b * 16)) as u16;
                            }
                        }
                    }
                    let mut decided_mask = 0u64;
                    if deterministic {
                        // Tier 2: saturated table decisions, no RNG
                        // consumed (every class is 0 or 1).
                        for (t, &idx) in idxs[..nbits].iter().enumerate() {
                            decided_mask |= u64::from(classes[idx as usize]) << t;
                        }
                    } else {
                        // Tier 3: one uniform draw per ambiguous cycle,
                        // in the same cycle order as the materializing
                        // kernel.
                        for (t, &idx) in idxs[..nbits].iter().enumerate() {
                            let idx = idx as usize;
                            let cls = classes[idx];
                            let d = if cls == 2 {
                                u64::from(rng.next_f64() < table[idx])
                            } else {
                                u64::from(cls)
                            };
                            decided_mask |= d << t;
                        }
                    }
                    ones[l] += decided_mask.count_ones() as usize;
                    flips[l] += (decided_mask ^ scratch.sel[w * L + l]).count_ones() as usize;
                    remaining -= nbits;
                }
            }
        } else {
            // Orders 11–12 need 17-bit indices: plain per-cycle
            // extraction (cold path — the spread lanes are 16-bit).
            let mut cw = [0u64; Self::WORD_REGS];
            for (l, rng) in rngs.iter_mut().enumerate() {
                let mut remaining = stream_length;
                for w in 0..words {
                    let nbits = remaining.min(64);
                    for (c, slot) in cw[..=N].iter_mut().enumerate() {
                        *slot = scratch.coeff[c * wl + w * L + l];
                    }
                    let mut decided_mask = 0u64;
                    for t in 0..nbits {
                        let mut count = 0usize;
                        for p in 0..nplanes {
                            count |=
                                (((scratch.planes[p * wl + w * L + l] >> t) & 1) as usize) << p;
                        }
                        let mut zw = 0usize;
                        for (c, &word) in cw[..=N].iter().enumerate() {
                            zw |= (((word >> t) & 1) as usize) << c;
                        }
                        let idx = (count << (N + 1)) | zw;
                        let cls = classes[idx];
                        let d = if cls == 2 {
                            u64::from(rng.next_f64() < table[idx])
                        } else {
                            u64::from(cls)
                        };
                        decided_mask |= d << t;
                    }
                    ones[l] += decided_mask.count_ones() as usize;
                    flips[l] += (decided_mask ^ scratch.sel[w * L + l]).count_ones() as usize;
                    remaining -= nbits;
                }
            }
        }
        Ok((ones, ideal, flips))
    }

    /// Whether every receiver decision is exactly the ideal multiplexer
    /// output `z_count` — the regime where the fastest (bit-sliced,
    /// randomness-free) kernel tier runs.
    pub fn is_mux_exact(&self) -> bool {
        self.mux_exact
    }

    /// Whether every folded decision probability is saturated at 0 or 1
    /// (decisions are a pure function of each cycle's `(count, z-word)`,
    /// consuming no randomness).
    pub fn has_deterministic_decisions(&self) -> bool {
        self.deterministic_decisions
    }

    /// Monomorphizes the word kernel on the circuit order so the per-cycle
    /// extraction loops fully unroll (the order is bounded by
    /// [`OpticalScSystem::MAX_SIM_ORDER`], enforced in the constructor).
    fn dispatch_word_kernel(
        &self,
        data: &[BitStream],
        coeffs: &[BitStream],
        stream_length: usize,
        rng: &mut Xoshiro256PlusPlus,
    ) -> (usize, usize, usize) {
        match self.params.order {
            1 => self.word_kernel::<1>(data, coeffs, stream_length, rng),
            2 => self.word_kernel::<2>(data, coeffs, stream_length, rng),
            3 => self.word_kernel::<3>(data, coeffs, stream_length, rng),
            4 => self.word_kernel::<4>(data, coeffs, stream_length, rng),
            5 => self.word_kernel::<5>(data, coeffs, stream_length, rng),
            6 => self.word_kernel::<6>(data, coeffs, stream_length, rng),
            7 => self.word_kernel::<7>(data, coeffs, stream_length, rng),
            8 => self.word_kernel::<8>(data, coeffs, stream_length, rng),
            9 => self.word_kernel::<9>(data, coeffs, stream_length, rng),
            10 => self.word_kernel::<10>(data, coeffs, stream_length, rng),
            11 => self.word_kernel::<11>(data, coeffs, stream_length, rng),
            12 => self.word_kernel::<12>(data, coeffs, stream_length, rng),
            n => unreachable!("order {n} exceeds MAX_SIM_ORDER"),
        }
    }

    /// The word-transposed decision kernel: one memory pass per 64 cycles.
    /// Returns `(ones, ideal_ones, decision_flips)`.
    ///
    /// Three tiers, selected once per run from precomputed table facts:
    ///
    /// 1. `mux_exact` — every decision equals the ideal multiplexer bit
    ///    `z_count`, so the block collapses to a bit-sliced adder (count
    ///    planes), per-count equality masks and one popcount: no
    ///    per-cycle work at all;
    /// 2. `deterministic_decisions` — decisions are a pure table function
    ///    of `(count, z-word)`; per-cycle extraction with fully unrolled
    ///    shifts and a branch-free compare, no randomness consumed;
    /// 3. general — as (2) plus one uniform draw per ambiguous cycle.
    fn word_kernel<const N: usize>(
        &self,
        data: &[BitStream],
        coeffs: &[BitStream],
        stream_length: usize,
        rng: &mut Xoshiro256PlusPlus,
    ) -> (usize, usize, usize) {
        let table = &self.one_probability[..];
        let mut ones = 0usize;
        let mut ideal_ones = 0usize;
        let mut decision_flips = 0usize;
        // Stack-resident word registers (a fixed WORD_REGS-wide array
        // keeps the type concrete while N+1 stays inexpressible in stable
        // const generics).
        let mut dw = [0u64; Self::WORD_REGS];
        let mut cw = [0u64; Self::WORD_REGS];
        let mut remaining = stream_length;
        for w in 0..stream_length.div_ceil(64) {
            for (slot, s) in dw[..N].iter_mut().zip(data) {
                *slot = s.words()[w];
            }
            for (slot, s) in cw[..=N].iter_mut().zip(coeffs) {
                *slot = s.words()[w];
            }
            let nbits = remaining.min(64);
            if self.mux_exact {
                // Tier 1: decided == ideal == z_count on every cycle.
                // Bit-sliced ripple-carry adder: plane b of (s0..s3) holds
                // bit b of the ones count for each of the 64 lanes.
                let (mut s0, mut s1, mut s2, mut s3) = (0u64, 0u64, 0u64, 0u64);
                for &d in &dw[..N] {
                    let c0 = s0 & d;
                    s0 ^= d;
                    let c1 = s1 & c0;
                    s1 ^= c0;
                    let c2 = s2 & c1;
                    s2 ^= c1;
                    s3 ^= c2; // counts <= 12 never carry out of plane 3
                }
                let planes = [s0, s1, s2, s3];
                // Select z_count per lane: OR of (count == c) & z_c masks.
                let mut sel = 0u64;
                for (c, &z) in cw[..=N].iter().enumerate() {
                    let mut eq = !0u64;
                    for (b, &plane) in planes.iter().enumerate() {
                        eq &= if (c >> b) & 1 == 1 { plane } else { !plane };
                    }
                    sel |= eq & z;
                }
                // Coefficient words are tail-masked, so padding lanes
                // contribute zero bits.
                let block_ones = sel.count_ones() as usize;
                ones += block_ones;
                ideal_ones += block_ones;
            } else if self.deterministic_decisions {
                // Tier 2: branch-free table decisions, no RNG consumed
                // (matching the per-bit rule, which only draws when a
                // probability lies strictly inside (0, 1)).
                for t in 0..nbits {
                    let mut count = 0usize;
                    for &d in &dw[..N] {
                        count += ((d >> t) & 1) as usize;
                    }
                    let mut zw = 0usize;
                    for (j, &c) in cw[..=N].iter().enumerate() {
                        zw |= (((c >> t) & 1) as usize) << j;
                    }
                    let decided = table[(count << (N + 1)) | zw] >= 1.0;
                    let ideal = (cw[count] >> t) & 1 == 1;
                    ones += usize::from(decided);
                    ideal_ones += usize::from(ideal);
                    decision_flips += usize::from(decided != ideal);
                }
            } else {
                // Tier 3: ambiguous bands. Branch only on the (rare)
                // needs-a-draw class; saturated decisions come branch-free
                // from the class value itself.
                let classes = &self.decision_class[..];
                for t in 0..nbits {
                    let mut count = 0usize;
                    for &d in &dw[..N] {
                        count += ((d >> t) & 1) as usize;
                    }
                    let mut zw = 0usize;
                    for (j, &c) in cw[..=N].iter().enumerate() {
                        zw |= (((c >> t) & 1) as usize) << j;
                    }
                    let idx = (count << (N + 1)) | zw;
                    let cls = classes[idx];
                    let decided = if cls == 2 {
                        rng.next_f64() < table[idx]
                    } else {
                        cls == 1
                    };
                    let ideal = (cw[count] >> t) & 1 == 1;
                    ones += usize::from(decided);
                    ideal_ones += usize::from(ideal);
                    decision_flips += usize::from(decided != ideal);
                }
            }
            remaining -= nbits;
        }
        (ones, ideal_ones, decision_flips)
    }

    /// Per-bit twin of [`OpticalScSystem::evaluate`]: identical stream
    /// traversal semantics and identical RNG consumption, one bit at a
    /// time. Given equal starting `sng`/`rng` states the two return
    /// exactly the same [`OpticalRun`] — the equivalence the property
    /// tests pin down. Kept as the readable reference; use `evaluate` in
    /// hot paths.
    ///
    /// # Errors
    ///
    /// Propagates stream-generation errors for invalid `x`.
    pub fn evaluate_bitwise<S: StochasticNumberGenerator>(
        &self,
        x: f64,
        stream_length: usize,
        sng: &mut S,
        rng: &mut Xoshiro256PlusPlus,
    ) -> Result<OpticalRun, CircuitError> {
        let (data, coeffs) = self
            .resc
            .generate_streams(x, stream_length, sng)
            .map_err(|e| CircuitError::InvalidStructure(e.to_string()))?;
        let mut ones = 0usize;
        let mut ideal_ones = 0usize;
        let mut decision_flips = 0usize;
        for t in 0..stream_length {
            let count: usize = data.iter().filter(|s| s.get(t)).count();
            let mut zw = 0u32;
            for (j, s) in coeffs.iter().enumerate() {
                if s.get(t) {
                    zw |= 1 << j;
                }
            }
            let decided = self.decide_cycle(count, zw as usize, rng);
            let ideal = coeffs[count].get(t);
            ones += usize::from(decided);
            ideal_ones += usize::from(ideal);
            decision_flips += usize::from(decided != ideal);
        }
        Ok(self.finish_run(x, stream_length, ones, ideal_ones, decision_flips))
    }

    /// Physical-sampling reference: draws one explicit Gaussian power
    /// observation per clock cycle (in 64-cycle batches through
    /// [`Xoshiro256PlusPlus::fill_gaussian`]) and thresholds it with the
    /// de-randomizer — the literal translation of the paper's receiver
    /// and the semantics the original per-bit implementation had.
    /// Statistically identical to [`OpticalScSystem::evaluate`] (the
    /// crate's tests pin that), but one to two orders of magnitude
    /// slower. For the frozen seed implementation the benchmarks use as
    /// their "before" side, see
    /// [`OpticalScSystem::evaluate_reference`].
    ///
    /// # Errors
    ///
    /// Propagates stream-generation errors for invalid `x`.
    pub fn evaluate_analog<S: StochasticNumberGenerator>(
        &self,
        x: f64,
        stream_length: usize,
        sng: &mut S,
        rng: &mut Xoshiro256PlusPlus,
    ) -> Result<OpticalRun, CircuitError> {
        let (data, coeffs) = self
            .resc
            .generate_streams(x, stream_length, sng)
            .map_err(|e| CircuitError::InvalidStructure(e.to_string()))?;
        let sigma = self.backend.noise_sigma();
        let mut ones = 0usize;
        let mut ideal_ones = 0usize;
        let mut decision_flips = 0usize;
        let mut noise = [0.0f64; 64];
        for block in 0..stream_length.div_ceil(64) {
            let base = block * 64;
            let nbits = (stream_length - base).min(64);
            rng.fill_gaussian(&mut noise[..nbits]);
            for (i, &g) in noise[..nbits].iter().enumerate() {
                let t = base + i;
                let count: usize = data.iter().filter(|s| s.get(t)).count();
                let mut zw = 0u32;
                for (j, s) in coeffs.iter().enumerate() {
                    if s.get(t) {
                        zw |= 1 << j;
                    }
                }
                let power = self.power_table[count][zw as usize];
                let observed = Milliwatts::new(power.as_mw() + sigma.as_mw() * g);
                let decided = self.derandomizer.decide(observed);
                let ideal = coeffs[count].get(t);
                ones += usize::from(decided);
                ideal_ones += usize::from(ideal);
                decision_flips += usize::from(decided != ideal);
            }
        }
        Ok(self.finish_run(x, stream_length, ones, ideal_ones, decision_flips))
    }

    /// The frozen pre-word-parallel implementation: per-bit SNG comparator
    /// streams, per-cycle `get()` traversal, and one scalar Gaussian
    /// power sample per clock cycle. Exists so kernel benchmarks can pin
    /// the word-parallel speedup against the original code path;
    /// statistically identical to [`OpticalScSystem::evaluate`]. Do not
    /// use in new code.
    ///
    /// # Errors
    ///
    /// Propagates stream-generation errors for invalid `x`.
    pub fn evaluate_reference<S: StochasticNumberGenerator>(
        &self,
        x: f64,
        stream_length: usize,
        sng: &mut S,
        rng: &mut Xoshiro256PlusPlus,
    ) -> Result<OpticalRun, CircuitError> {
        let (data, coeffs) = self
            .resc
            .generate_streams_bitwise(x, stream_length, sng)
            .map_err(|e| CircuitError::InvalidStructure(e.to_string()))?;
        let sigma = self.backend.noise_sigma();
        let mut ones = 0usize;
        let mut ideal_ones = 0usize;
        let mut decision_flips = 0usize;
        for t in 0..stream_length {
            let count: usize = data.iter().filter(|s| s.get(t)).count();
            let mut zw = 0u32;
            for (j, s) in coeffs.iter().enumerate() {
                if s.get(t) {
                    zw |= 1 << j;
                }
            }
            let power = self.power_table[count][zw as usize];
            let observed = Milliwatts::new(rng.gaussian_with(power.as_mw(), sigma.as_mw()));
            let decided = self.derandomizer.decide(observed);
            let ideal = coeffs[count].get(t);
            ones += usize::from(decided);
            ideal_ones += usize::from(ideal);
            decision_flips += usize::from(decided != ideal);
        }
        Ok(self.finish_run(x, stream_length, ones, ideal_ones, decision_flips))
    }

    /// Decides one cycle from the folded noise table: saturated
    /// probabilities decide without consuming randomness; ambiguous ones
    /// cost a single uniform draw.
    #[inline]
    fn decide_cycle(&self, count: usize, zw: usize, rng: &mut Xoshiro256PlusPlus) -> bool {
        let p1 = self.one_probability[(count << (self.params.order + 1)) | zw];
        if p1 >= 1.0 {
            true
        } else if p1 <= 0.0 {
            false
        } else {
            rng.next_f64() < p1
        }
    }

    fn finish_run(
        &self,
        x: f64,
        stream_length: usize,
        ones: usize,
        ideal_ones: usize,
        decision_flips: usize,
    ) -> OpticalRun {
        OpticalRun {
            estimate: ones as f64 / stream_length as f64,
            ideal_estimate: ideal_ones as f64 / stream_length as f64,
            exact: self.poly.eval(x),
            observed_ber: decision_flips as f64 / stream_length as f64,
            stream_length,
        }
    }

    /// Decodes a pre-generated stream pair exactly like
    /// [`OpticalScSystem::evaluate`] would, returning the decided output
    /// stream — useful when callers need the bits, not just the counts.
    ///
    /// # Errors
    ///
    /// [`CircuitError::InvalidStructure`] on stream arity/length mismatch.
    pub fn decide_streams(
        &self,
        data: &[BitStream],
        coeffs: &[BitStream],
        rng: &mut Xoshiro256PlusPlus,
    ) -> Result<BitStream, CircuitError> {
        let n = self.params.order;
        if data.len() != n || coeffs.len() != n + 1 {
            return Err(CircuitError::InvalidStructure(format!(
                "expected {n} data and {} coefficient streams, got {} and {}",
                n + 1,
                data.len(),
                coeffs.len()
            )));
        }
        let len = coeffs[0].len();
        if data.iter().chain(coeffs).any(|s| s.len() != len) {
            return Err(CircuitError::InvalidStructure(
                "stream length mismatch".into(),
            ));
        }
        // Not a hot path: reuse the per-cycle decision rule directly
        // rather than mirroring the word kernel's transpose.
        Ok(BitStream::from_word_fn(len, |chunk, nbits| {
            let mut word = 0u64;
            for b in 0..nbits {
                let t = chunk * 64 + b;
                let count: usize = data.iter().filter(|s| s.get(t)).count();
                let mut zw = 0usize;
                for (j, s) in coeffs.iter().enumerate() {
                    zw |= usize::from(s.get(t)) << j;
                }
                word |= u64::from(self.decide_cycle(count, zw, rng)) << b;
            }
            word
        }))
    }

    /// Sweeps the polynomial over `[0, 1]` and returns
    /// `(x, estimate, exact)` triples — the workhorse of the examples.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn transfer_curve<S: StochasticNumberGenerator>(
        &self,
        points: usize,
        stream_length: usize,
        sng: &mut S,
        rng: &mut Xoshiro256PlusPlus,
    ) -> Result<Vec<(f64, f64, f64)>, CircuitError> {
        (0..points)
            .map(|i| {
                let x = i as f64 / (points - 1).max(1) as f64;
                let run = self.evaluate(x, stream_length, sng, rng)?;
                Ok((x, run.estimate, run.exact))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osc_stochastic::sng::XoshiroSng;

    fn system() -> OpticalScSystem {
        // Fig. 5 circuit programmed with a 2nd-order polynomial:
        // f(x) = 0.25·B0 + 0.625·B1 + 0.75·B2.
        OpticalScSystem::new(
            CircuitParams::paper_fig5(),
            BernsteinPoly::new(vec![0.25, 0.625, 0.75]).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn word_kernel_identical_to_bitwise_reference() {
        // Three-way draw identity: fused ≡ materializing ≡ per-bit, with
        // one scratch reused across every fused run.
        let s = system();
        let mut scratch = EvalScratch::new();
        for len in [1usize, 63, 64, 65, 130, 4096, 5000] {
            for (i, &x) in [0.0, 0.3, 0.5, 1.0].iter().enumerate() {
                let seed = 100 + (len + i) as u64;
                let mut sng_a = XoshiroSng::new(seed);
                let mut rng_a = Xoshiro256PlusPlus::new(seed ^ 0xABCD);
                let mut sng_b = XoshiroSng::new(seed);
                let mut rng_b = Xoshiro256PlusPlus::new(seed ^ 0xABCD);
                let mut sng_c = XoshiroSng::new(seed);
                let mut rng_c = Xoshiro256PlusPlus::new(seed ^ 0xABCD);
                let fast = s.evaluate(x, len, &mut sng_a, &mut rng_a).unwrap();
                let slow = s.evaluate_bitwise(x, len, &mut sng_b, &mut rng_b).unwrap();
                let fused = s
                    .evaluate_fused(x, len, &mut sng_c, &mut rng_c, &mut scratch)
                    .unwrap();
                assert_eq!(fast, slow, "x={x}, len={len}");
                assert_eq!(fused, fast, "fused, x={x}, len={len}");
                // Post-run RNG states must match too: another evaluation
                // from each pair must still be identical.
                let fast2 = s.evaluate(x, 130, &mut sng_a, &mut rng_a).unwrap();
                let slow2 = s.evaluate_bitwise(x, 130, &mut sng_b, &mut rng_b).unwrap();
                let fused2 = s
                    .evaluate_fused(x, 130, &mut sng_c, &mut rng_c, &mut scratch)
                    .unwrap();
                assert_eq!(fast2, slow2, "x={x}, len={len} (second run)");
                assert_eq!(fused2, fast2, "fused, x={x}, len={len} (second run)");
            }
        }
    }

    #[test]
    fn word_kernel_identical_under_visible_noise() {
        // Starved probes make the folded probabilities land strictly
        // inside (0, 1), so the uniform-draw branch is exercised — in
        // both the materializing and the fused kernel.
        let params = CircuitParams::paper_fig5().with_probe_power(Milliwatts::new(0.05));
        let s = OpticalScSystem::new(params, BernsteinPoly::new(vec![0.25, 0.625, 0.75]).unwrap())
            .unwrap();
        assert!(!s.has_deterministic_decisions() || !s.is_mux_exact());
        let mut sng_a = XoshiroSng::new(7);
        let mut rng_a = Xoshiro256PlusPlus::new(8);
        let mut sng_b = XoshiroSng::new(7);
        let mut rng_b = Xoshiro256PlusPlus::new(8);
        let mut sng_c = XoshiroSng::new(7);
        let mut rng_c = Xoshiro256PlusPlus::new(8);
        let mut scratch = EvalScratch::new();
        let fast = s.evaluate(0.4, 4097, &mut sng_a, &mut rng_a).unwrap();
        let slow = s
            .evaluate_bitwise(0.4, 4097, &mut sng_b, &mut rng_b)
            .unwrap();
        let fused = s
            .evaluate_fused(0.4, 4097, &mut sng_c, &mut rng_c, &mut scratch)
            .unwrap();
        assert_eq!(fast, slow);
        assert_eq!(fused, fast);
        assert!(fast.observed_ber > 0.0, "expected the noisy branch to fire");
    }

    #[test]
    fn fused_scratch_stops_allocating_after_warmup() {
        // The zero-allocation contract: after the first call sizes the
        // buffers, repeated fused evaluation never grows them.
        let s = system();
        let mut sng = XoshiroSng::new(19);
        let mut rng = Xoshiro256PlusPlus::new(20);
        let mut scratch = EvalScratch::new();
        let _ = s
            .evaluate_fused(0.5, 8192, &mut sng, &mut rng, &mut scratch)
            .unwrap();
        let warmed = scratch.capacity_words();
        for i in 0..8 {
            let x = i as f64 / 8.0;
            let _ = s
                .evaluate_fused(x, 8192, &mut sng, &mut rng, &mut scratch)
                .unwrap();
        }
        assert_eq!(scratch.capacity_words(), warmed, "scratch regrew");
    }

    #[test]
    fn analytic_folding_matches_analog_sampling_statistically() {
        // Same noisy circuit; the folded-Bernoulli path and the explicit
        // Gaussian-sampling path must agree in distribution.
        let params = CircuitParams::paper_fig5().with_probe_power(Milliwatts::new(0.05));
        let s = OpticalScSystem::new(params, BernsteinPoly::new(vec![0.25, 0.625, 0.75]).unwrap())
            .unwrap();
        let len = 32_768;
        let mut sng_a = XoshiroSng::new(21);
        let mut rng_a = Xoshiro256PlusPlus::new(22);
        let mut sng_b = XoshiroSng::new(21);
        let mut rng_b = Xoshiro256PlusPlus::new(23);
        let folded = s.evaluate(0.5, len, &mut sng_a, &mut rng_a).unwrap();
        let analog = s.evaluate_analog(0.5, len, &mut sng_b, &mut rng_b).unwrap();
        assert!(
            (folded.estimate - analog.estimate).abs() < 0.02,
            "folded {} vs analog {}",
            folded.estimate,
            analog.estimate
        );
        assert!(
            (folded.observed_ber - analog.observed_ber).abs() < 0.02,
            "ber folded {} vs analog {}",
            folded.observed_ber,
            analog.observed_ber
        );
    }

    #[test]
    fn decide_streams_counts_match_evaluate() {
        let s = system();
        let mut sng = XoshiroSng::new(3);
        let (data, coeffs) = s.resc.generate_streams(0.5, 1000, &mut sng).unwrap();
        let mut rng_a = Xoshiro256PlusPlus::new(4);
        let out = s.decide_streams(&data, &coeffs, &mut rng_a).unwrap();
        // Same decision rule as evaluate: re-run with the same rng seed.
        let mut sng_b = XoshiroSng::new(3);
        let mut rng_b = Xoshiro256PlusPlus::new(4);
        let run = s.evaluate(0.5, 1000, &mut sng_b, &mut rng_b).unwrap();
        assert_eq!(out.count_ones() as f64 / 1000.0, run.estimate);
        assert!(s.decide_streams(&data[..1], &coeffs, &mut rng_a).is_err());
    }

    #[test]
    fn end_to_end_accuracy() {
        let s = system();
        let mut sng = XoshiroSng::new(42);
        let mut rng = Xoshiro256PlusPlus::new(1);
        let run = s.evaluate(0.5, 16384, &mut sng, &mut rng).unwrap();
        assert!(run.abs_error() < 0.03, "error {}", run.abs_error());
        // With 1 mW probes the bands are far apart: transmission BER ~ 0.
        assert!(run.observed_ber < 1e-3, "ber {}", run.observed_ber);
    }

    #[test]
    fn optical_matches_ideal_at_high_power() {
        let s = system();
        let mut sng = XoshiroSng::new(7);
        let mut rng = Xoshiro256PlusPlus::new(2);
        let run = s.evaluate(0.3, 8192, &mut sng, &mut rng).unwrap();
        assert!(
            run.optical_error() < 0.01,
            "optical error {}",
            run.optical_error()
        );
    }

    #[test]
    fn low_probe_power_degrades_gracefully() {
        // Starve the probes: decisions get noisy, BER rises, but the
        // estimate still lands in the right region (error resilience).
        let params = CircuitParams::paper_fig5().with_probe_power(Milliwatts::new(0.05));
        let s = OpticalScSystem::new(params, BernsteinPoly::new(vec![0.25, 0.625, 0.75]).unwrap())
            .unwrap();
        let mut sng = XoshiroSng::new(11);
        let mut rng = Xoshiro256PlusPlus::new(3);
        let run = s.evaluate(0.5, 16384, &mut sng, &mut rng).unwrap();
        assert!(run.observed_ber > 1e-3, "expected visible BER");
        assert!(run.abs_error() < 0.2, "still roughly correct");
    }

    #[test]
    fn degree_mismatch_rejected() {
        let err = OpticalScSystem::new(
            CircuitParams::paper_fig5(),
            BernsteinPoly::new(vec![0.5, 0.5]).unwrap(),
        )
        .unwrap_err();
        assert!(matches!(err, CircuitError::InvalidStructure(_)));
    }

    #[test]
    fn order_cap_enforced() {
        let params = CircuitParams::paper_fig7(13, osc_units::Nanometers::new(0.2));
        let poly = BernsteinPoly::new(vec![0.5; 14]).unwrap();
        assert!(matches!(
            OpticalScSystem::new(params, poly),
            Err(CircuitError::InvalidStructure(_))
        ));
    }

    #[test]
    fn transfer_curve_tracks_polynomial() {
        let s = system();
        let mut sng = XoshiroSng::new(5);
        let mut rng = Xoshiro256PlusPlus::new(4);
        let curve = s.transfer_curve(6, 8192, &mut sng, &mut rng).unwrap();
        assert_eq!(curve.len(), 6);
        for (x, est, exact) in curve {
            assert!((est - exact).abs() < 0.05, "x={x}: est {est} vs {exact}");
        }
    }

    #[test]
    fn invalid_x_rejected() {
        let s = system();
        let mut sng = XoshiroSng::new(1);
        let mut rng = Xoshiro256PlusPlus::new(1);
        assert!(s.evaluate(1.5, 64, &mut sng, &mut rng).is_err());
    }
}
