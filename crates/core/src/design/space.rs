//! Design-space sweeps (the machinery behind Fig. 6).
//!
//! Grid sweeps over MZI characteristics, BER targets and device lists,
//! parallelized with scoped threads — a full Fig. 6(a) grid evaluates
//! hundreds of MZI-first designs.

use crate::design::mzi_first::{MziFirstDesign, MziFirstInputs};
use crate::CircuitError;
use osc_photonics::devices::MziDevice;
use osc_units::{DbRatio, Milliwatts, Nanometers};

/// One cell of the Fig. 6(a) grid.
#[derive(Debug, Clone, PartialEq)]
pub struct GridCell {
    /// MZI insertion loss, dB.
    pub il_db: f64,
    /// MZI extinction ratio, dB.
    pub er_db: f64,
    /// Minimum probe power, if the design is feasible.
    pub min_probe_power: Option<Milliwatts>,
    /// The derived wavelength spacing, if feasible.
    pub wl_spacing: Option<Nanometers>,
}

/// Sweeps the (IL, ER) grid of Fig. 6(a) and returns cells in row-major
/// order (IL outer, ER inner).
///
/// Infeasible corners (crosstalk exceeding signal) are reported as `None`
/// rather than failing the sweep.
pub fn fig6a_grid(il_db: &[f64], er_db: &[f64], target_ber: f64, threads: usize) -> Vec<GridCell> {
    let cells: Vec<(f64, f64)> = il_db
        .iter()
        .flat_map(|&il| er_db.iter().map(move |&er| (il, er)))
        .collect();
    if cells.is_empty() {
        return Vec::new();
    }
    // Clamp the worker count to the cell count before chunking — the
    // same degenerate-split rule as `batch::lane_blocks` — so asking
    // for more threads than cells spawns exactly one thread per cell
    // instead of a ragged oversplit, and every chunk is non-empty.
    let threads = threads.clamp(1, cells.len());
    let chunk = cells.len().div_ceil(threads);
    let mut out: Vec<GridCell> = Vec::with_capacity(cells.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = cells
            .chunks(chunk)
            .map(|chunk_cells| {
                scope.spawn(move || {
                    chunk_cells
                        .iter()
                        .map(|&(il, er)| {
                            let inputs = MziFirstInputs::paper_fig6(
                                DbRatio::from_db(il),
                                DbRatio::from_db(er),
                            );
                            let inputs = MziFirstInputs {
                                target_ber,
                                ..inputs
                            };
                            match MziFirstDesign::solve(&inputs) {
                                Ok(d) => GridCell {
                                    il_db: il,
                                    er_db: er,
                                    min_probe_power: Some(d.min_probe_power),
                                    wl_spacing: Some(d.wl_spacing),
                                },
                                Err(_) => GridCell {
                                    il_db: il,
                                    er_db: er,
                                    min_probe_power: None,
                                    wl_spacing: None,
                                },
                            }
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            out.extend(h.join().expect("sweep worker panicked"));
        }
    });
    out
}

/// One row of the Fig. 6(b) BER sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BerSweepPoint {
    /// Target bit error rate.
    pub target_ber: f64,
    /// Minimum probe power for that target.
    pub min_probe_power: Milliwatts,
}

/// Sweeps the BER target (Fig. 6(b)) for a fixed MZI.
///
/// # Errors
///
/// Propagates the first infeasible design.
pub fn fig6b_ber_sweep(
    il: DbRatio,
    er: DbRatio,
    targets: &[f64],
) -> Result<Vec<BerSweepPoint>, CircuitError> {
    targets
        .iter()
        .map(|&ber| {
            let inputs = MziFirstInputs {
                target_ber: ber,
                ..MziFirstInputs::paper_fig6(il, er)
            };
            Ok(BerSweepPoint {
                target_ber: ber,
                min_probe_power: MziFirstDesign::solve(&inputs)?.min_probe_power,
            })
        })
        .collect()
}

/// One bar of the Fig. 6(c) device comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct DevicePoint {
    /// Device citation label.
    pub label: String,
    /// Demonstrated speed, Gb/s.
    pub speed_gbps: f64,
    /// Phase shifter length, mm.
    pub phase_shifter_length_mm: f64,
    /// Minimum probe power, if feasible.
    pub min_probe_power: Option<Milliwatts>,
}

/// Evaluates the literature devices of Fig. 6(c).
pub fn fig6c_devices(devices: &[MziDevice], target_ber: f64) -> Vec<DevicePoint> {
    devices
        .iter()
        .map(|d| {
            let inputs = MziFirstInputs {
                target_ber,
                ..MziFirstInputs::paper_fig6(DbRatio::from_db(d.il_db), DbRatio::from_db(d.er_db))
            };
            DevicePoint {
                label: d.label.to_string(),
                speed_gbps: d.speed_gbps,
                phase_shifter_length_mm: d.phase_shifter_length_mm,
                min_probe_power: MziFirstDesign::solve(&inputs)
                    .ok()
                    .map(|s| s.min_probe_power),
            }
        })
        .collect()
}

/// A (pump power, probe power) Pareto point over the spacing sweep —
/// the pump/probe tradeoff the paper discusses at the end of Section V.B.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParetoPoint {
    /// Wavelength spacing realizing this tradeoff.
    pub wl_spacing: Nanometers,
    /// Pump power required to span the plan.
    pub pump_power: Milliwatts,
    /// Probe power required for the BER target.
    pub probe_power: Milliwatts,
}

/// Sweeps the wavelength spacing and reports the pump/probe tradeoff
/// curve (larger spacing: more pump, less probe).
pub fn pump_probe_tradeoff(order: usize, spacings_nm: &[f64], target_ber: f64) -> Vec<ParetoPoint> {
    spacings_nm
        .iter()
        .filter_map(|&s| {
            let params = crate::params::CircuitParams::paper_fig7(order, Nanometers::new(s));
            let snr = crate::snr::SnrModel::new(&params).ok()?;
            let probe = snr.min_probe_power_for_ber(target_ber).ok()?;
            Some(ParetoPoint {
                wl_spacing: Nanometers::new(s),
                pump_power: params.pump_power,
                probe_power: probe,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use osc_photonics::devices;

    #[test]
    fn grid_covers_fig6a_ranges() {
        let il = osc_math::linspace(3.0, 7.4, 5);
        let er = osc_math::linspace(4.0, 7.6, 5);
        let grid = fig6a_grid(&il, &er, 1e-6, 4);
        assert_eq!(grid.len(), 25);
        let feasible = grid.iter().filter(|c| c.min_probe_power.is_some()).count();
        assert_eq!(feasible, 25, "all Fig. 6(a) cells should be feasible");
        // Probe powers fall in the paper's plotted range (0.24–0.36 mW),
        // with calibration tolerance.
        for c in &grid {
            let p = c.min_probe_power.unwrap().as_mw();
            assert!(p > 0.1 && p < 0.6, "IL {} ER {}: {p} mW", c.il_db, c.er_db);
        }
    }

    #[test]
    fn grid_monotone_in_il_at_fixed_er() {
        let il = vec![3.0, 5.0, 7.4];
        let er = vec![6.0];
        let grid = fig6a_grid(&il, &er, 1e-6, 2);
        let p: Vec<f64> = grid
            .iter()
            .map(|c| c.min_probe_power.unwrap().as_mw())
            .collect();
        assert!(p[0] < p[1] && p[1] < p[2], "probe powers {p:?}");
    }

    #[test]
    fn single_thread_matches_parallel() {
        let il = vec![4.0, 6.0];
        let er = vec![5.0, 7.0];
        let a = fig6a_grid(&il, &er, 1e-6, 1);
        let b = fig6a_grid(&il, &er, 1e-6, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn ragged_grid_stays_row_major_when_threads_exceed_cells() {
        // A 3×2 grid asked to split across far more threads than its 6
        // cells must still come back in row-major order (IL outer, ER
        // inner), identical to the single-threaded sweep.
        let il = vec![3.5, 5.0, 7.0];
        let er = vec![5.5, 7.0];
        let reference = fig6a_grid(&il, &er, 1e-6, 1);
        for threads in [5, 6, 7, 64] {
            let grid = fig6a_grid(&il, &er, 1e-6, threads);
            assert_eq!(grid, reference, "threads={threads}");
        }
        let pairs: Vec<(f64, f64)> = reference.iter().map(|c| (c.il_db, c.er_db)).collect();
        assert_eq!(
            pairs,
            vec![
                (3.5, 5.5),
                (3.5, 7.0),
                (5.0, 5.5),
                (5.0, 7.0),
                (7.0, 5.5),
                (7.0, 7.0),
            ]
        );
        assert!(fig6a_grid(&[], &er, 1e-6, 4).is_empty());
    }

    #[test]
    fn ber_sweep_monotone() {
        let pts = fig6b_ber_sweep(
            DbRatio::from_db(6.5),
            DbRatio::from_db(7.5),
            &[1e-2, 1e-4, 1e-6],
        )
        .unwrap();
        assert!(pts[0].min_probe_power < pts[1].min_probe_power);
        assert!(pts[1].min_probe_power < pts[2].min_probe_power);
    }

    #[test]
    fn devices_all_feasible() {
        let pts = fig6c_devices(&devices::fig6_devices(), 1e-6);
        assert_eq!(pts.len(), 4);
        for p in &pts {
            assert!(p.min_probe_power.is_some(), "{} infeasible", p.label);
        }
    }

    #[test]
    fn tradeoff_directions() {
        let pts = pump_probe_tradeoff(2, &[0.3, 0.6, 1.0], 1e-6);
        assert_eq!(pts.len(), 3);
        // Pump rises with spacing; probe falls.
        assert!(pts[0].pump_power < pts[2].pump_power);
        assert!(pts[0].probe_power > pts[2].probe_power);
    }
}
