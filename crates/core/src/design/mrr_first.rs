//! The MRR-first design method (paper Section IV.B, applied in V.A).
//!
//! Inputs: the WDM plan (`WLspacing`, `λ_n`, `λ_ref`), the MRR templates,
//! the target BER (or probe power), and the MZI insertion loss.
//! Outputs, in order:
//!
//! 1. the probe wavelengths `λ_i` from the spacing (Eq. 5);
//! 2. the minimum probe laser power for the SNR/BER target (Eq. 8);
//! 3. the minimum pump power that parks the filter on `λ_0` when all MZIs
//!    are constructive: `OP_pump = (λ_ref − λ_0) / (OTE · IL%)`;
//! 4. the MZI extinction ratio that parks it on `λ_n` when all are
//!    destructive: `ER% = (λ_ref − λ_n) / (λ_ref − λ_0)`.

use crate::params::{CircuitParams, FilterTemplate, ModulatorTemplate};
use crate::snr::SnrModel;
use crate::CircuitError;
use osc_units::{DbRatio, Milliwatts, Nanometers};

/// Inputs of the MRR-first method.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MrrFirstInputs {
    /// Polynomial order `n`.
    pub order: usize,
    /// Wavelength spacing between probes.
    pub wl_spacing: Nanometers,
    /// Last probe wavelength `λ_n`.
    pub lambda_last: Nanometers,
    /// Filter rest resonance `λ_ref`.
    pub lambda_ref: Nanometers,
    /// MZI insertion loss.
    pub mzi_il: DbRatio,
    /// Target bit error rate for probe sizing.
    pub target_ber: f64,
    /// Modulator template.
    pub modulator: ModulatorTemplate,
    /// Filter template.
    pub filter: FilterTemplate,
}

impl MrrFirstInputs {
    /// The paper's Section V.A inputs.
    pub fn paper_section_va() -> Self {
        MrrFirstInputs {
            order: 2,
            wl_spacing: Nanometers::new(1.0),
            lambda_last: Nanometers::new(1550.0),
            lambda_ref: Nanometers::new(1550.1),
            mzi_il: DbRatio::from_db(4.5),
            target_ber: 1e-6,
            modulator: ModulatorTemplate::calibrated(),
            filter: FilterTemplate::calibrated(),
        }
    }
}

/// Outputs of the MRR-first method.
#[derive(Debug, Clone, PartialEq)]
pub struct MrrFirstDesign {
    /// The derived probe wavelengths `λ_0 … λ_n`.
    pub channels: Vec<Nanometers>,
    /// Minimum probe power per laser for the BER target.
    pub min_probe_power: Milliwatts,
    /// Minimum pump power (all-constructive case reaches `λ_0`).
    pub min_pump_power: Milliwatts,
    /// Required MZI extinction ratio (all-destructive case reaches `λ_n`).
    pub required_er: DbRatio,
    /// The complete parameter set realizing the design.
    pub params: CircuitParams,
}

impl MrrFirstDesign {
    /// Runs the MRR-first method.
    ///
    /// # Errors
    ///
    /// [`CircuitError::InvalidStructure`] for inconsistent wavelength
    /// plans; [`CircuitError::Infeasible`] when no probe power meets the
    /// BER target at this spacing.
    pub fn solve(inputs: &MrrFirstInputs) -> Result<Self, CircuitError> {
        // Step 3 first (pump), because the ER needed for step 4 and the
        // derived params are interlinked.
        let full_shift =
            inputs.lambda_ref - (inputs.lambda_last - inputs.wl_spacing * inputs.order as f64);
        let ref_offset = inputs.lambda_ref - inputs.lambda_last;
        if ref_offset.as_nm() <= 0.0 {
            return Err(CircuitError::InvalidStructure(
                "λ_ref must exceed λ_n".into(),
            ));
        }
        let min_pump_power = Milliwatts::new(
            full_shift.as_nm() / (inputs.filter.ote_nm_per_mw * inputs.mzi_il.as_linear()),
        );
        // Step 4: ER% = (λ_ref − λ_n)/(λ_ref − λ_0).
        let required_er = DbRatio::from_linear(ref_offset.as_nm() / full_shift.as_nm());

        let params = CircuitParams {
            order: inputs.order,
            wl_spacing: inputs.wl_spacing,
            lambda_last: inputs.lambda_last,
            lambda_ref: inputs.lambda_ref,
            mzi_il: inputs.mzi_il,
            mzi_er: required_er,
            modulator: inputs.modulator,
            filter: inputs.filter,
            pump_power: min_pump_power,
            probe_power: Milliwatts::new(1.0), // provisional; replaced below
            responsivity_a_per_w: crate::params::receiver_defaults::RESPONSIVITY_A_PER_W,
            noise_current_a: crate::params::receiver_defaults::NOISE_CURRENT_A,
            backend: crate::backend::BackendKind::MrrMzi,
        };
        params.validate()?;

        // Step 2: minimum probe power via the Eq. 8 margin.
        let snr = SnrModel::new(&params)?;
        let min_probe_power = snr.min_probe_power_for_ber(inputs.target_ber)?;
        let params = params.with_probe_power(min_probe_power);

        Ok(MrrFirstDesign {
            channels: params.channels(),
            min_probe_power,
            min_pump_power,
            required_er,
            params,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_paper_section_va() {
        let d = MrrFirstDesign::solve(&MrrFirstInputs::paper_section_va()).unwrap();
        // Paper: 591.8 mW minimum pump, 13.22 dB extinction ratio.
        assert!(
            (d.min_pump_power.as_mw() - 591.86).abs() < 0.1,
            "pump = {}",
            d.min_pump_power
        );
        assert!(
            (d.required_er.as_db() - 13.222).abs() < 0.01,
            "er = {}",
            d.required_er
        );
        let ch: Vec<f64> = d.channels.iter().map(|c| c.as_nm()).collect();
        assert_eq!(ch, vec![1548.0, 1549.0, 1550.0]);
    }

    #[test]
    fn probe_power_meets_ber_target() {
        let d = MrrFirstDesign::solve(&MrrFirstInputs::paper_section_va()).unwrap();
        let snr = SnrModel::new(&d.params).unwrap();
        let achieved = snr.ber().unwrap();
        assert!(
            achieved <= 1.05e-6,
            "achieved BER {achieved:.2e} misses the 1e-6 target"
        );
    }

    #[test]
    fn wider_spacing_needs_more_pump() {
        let mut inputs = MrrFirstInputs::paper_section_va();
        let narrow = MrrFirstDesign::solve(&inputs).unwrap();
        inputs.wl_spacing = Nanometers::new(1.5);
        // λ_0 moves further from λ_ref -> larger shift -> more pump.
        let wide = MrrFirstDesign::solve(&inputs).unwrap();
        assert!(wide.min_pump_power > narrow.min_pump_power);
        // And the ER requirement becomes *stricter* (smaller linear).
        assert!(wide.required_er.as_db() > narrow.required_er.as_db());
    }

    #[test]
    fn lossier_mzi_needs_more_pump() {
        let mut inputs = MrrFirstInputs::paper_section_va();
        inputs.mzi_il = DbRatio::from_db(6.5);
        let lossy = MrrFirstDesign::solve(&inputs).unwrap();
        let base = MrrFirstDesign::solve(&MrrFirstInputs::paper_section_va()).unwrap();
        assert!(lossy.min_pump_power > base.min_pump_power);
    }

    #[test]
    fn relaxed_ber_halves_probe_power() {
        let mut inputs = MrrFirstInputs::paper_section_va();
        let tight = MrrFirstDesign::solve(&inputs).unwrap();
        inputs.target_ber = 1e-2;
        let loose = MrrFirstDesign::solve(&inputs).unwrap();
        let ratio = loose.min_probe_power / tight.min_probe_power;
        assert!((ratio - 0.489).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn invalid_reference_rejected() {
        let mut inputs = MrrFirstInputs::paper_section_va();
        inputs.lambda_ref = Nanometers::new(1549.9);
        assert!(MrrFirstDesign::solve(&inputs).is_err());
    }
}
