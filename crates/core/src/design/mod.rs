//! Design methods (paper Section IV.B).
//!
//! The architecture couples heterogeneous devices, so its optimization is
//! a genuine design-space exploration. The paper proposes two orderings of
//! the decisions:
//!
//! - [`mrr_first`] — fix the WDM plan (wavelength spacing) from the MRR
//!   side, then derive the pump power and the required MZI extinction
//!   ratio;
//! - [`mzi_first`] — fix the pump power and the MZI characteristics, then
//!   derive the wavelength plan and the minimum probe power.
//!
//! [`space`] sweeps either method across parameter grids (the machinery
//! behind Fig. 6) and extracts Pareto fronts. [`sweep`] scales that up:
//! a pool-servable design-space search over order × SNG × stream ×
//! backend × device grid, with an accuracy × energy × area Pareto
//! frontier that is bit-identical across every serving tier.

pub mod mrr_first;
pub mod mzi_first;
pub mod space;
pub mod sweep;
