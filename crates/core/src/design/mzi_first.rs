//! The MZI-first design method (paper Section IV.B, applied in V.B).
//!
//! Inputs: the pump power and the MZI characteristics (IL, ER). The
//! control power levels then *determine* the wavelength plan:
//!
//! `λ_k = λ_ref − OP_pump · OTE · (1/n)·[(n−k)·IL% + k·IL%·ER%]`
//!
//! after which the minimum probe power for a BER target follows from the
//! Eq. 8 margin. This is the method behind Fig. 6: weaker MZIs (higher
//! IL, lower ER) compress the wavelength plan, raise the crosstalk, and
//! push the probe power up.

use crate::params::{CircuitParams, FilterTemplate, ModulatorTemplate};
use crate::snr::SnrModel;
use crate::CircuitError;
use osc_units::{DbRatio, Milliwatts, Nanometers};

/// Inputs of the MZI-first method.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MziFirstInputs {
    /// Polynomial order `n`.
    pub order: usize,
    /// Pump laser power (0.6 W in Fig. 6).
    pub pump_power: Milliwatts,
    /// MZI insertion loss.
    pub mzi_il: DbRatio,
    /// MZI extinction ratio.
    pub mzi_er: DbRatio,
    /// Filter rest resonance `λ_ref`.
    pub lambda_ref: Nanometers,
    /// Target bit error rate (1e-6 in Fig. 6(a)).
    pub target_ber: f64,
    /// Modulator template.
    pub modulator: ModulatorTemplate,
    /// Filter template.
    pub filter: FilterTemplate,
}

impl MziFirstInputs {
    /// The Fig. 6 baseline: 2nd order, 0.6 W pump, BER 1e-6; IL/ER are
    /// supplied per device.
    pub fn paper_fig6(il: DbRatio, er: DbRatio) -> Self {
        MziFirstInputs {
            order: 2,
            pump_power: Milliwatts::new(600.0),
            mzi_il: il,
            mzi_er: er,
            lambda_ref: Nanometers::new(1550.1),
            target_ber: 1e-6,
            modulator: ModulatorTemplate::calibrated(),
            filter: FilterTemplate::calibrated(),
        }
    }
}

/// Outputs of the MZI-first method.
#[derive(Debug, Clone, PartialEq)]
pub struct MziFirstDesign {
    /// The derived probe wavelengths `λ_0 … λ_n`.
    pub channels: Vec<Nanometers>,
    /// The derived wavelength spacing.
    pub wl_spacing: Nanometers,
    /// Minimum probe power per laser for the BER target.
    pub min_probe_power: Milliwatts,
    /// The complete parameter set realizing the design.
    pub params: CircuitParams,
}

impl MziFirstDesign {
    /// Runs the MZI-first method.
    ///
    /// # Errors
    ///
    /// [`CircuitError::Infeasible`] when the derived plan cannot meet the
    /// BER target at any probe power; [`CircuitError::InvalidStructure`]
    /// for degenerate inputs.
    pub fn solve(inputs: &MziFirstInputs) -> Result<Self, CircuitError> {
        let n = inputs.order;
        if n == 0 {
            return Err(CircuitError::InvalidStructure(
                "polynomial order must be at least 1".into(),
            ));
        }
        let ote = inputs.filter.ote_nm_per_mw;
        let il = inputs.mzi_il.as_linear();
        let er = inputs.mzi_er.as_linear();
        // Detuning for count k of destructive MZIs.
        let detuning = |k: usize| -> f64 {
            let t = ((n - k) as f64 * il + k as f64 * il * er) / n as f64;
            inputs.pump_power.as_mw() * ote * t
        };
        let d0 = detuning(0);
        let dn = detuning(n);
        let spacing = Nanometers::new((d0 - dn) / n as f64);
        if spacing.as_nm() <= 0.0 {
            return Err(CircuitError::InvalidStructure(
                "MZI extinction ratio must attenuate (ER > 0 dB)".into(),
            ));
        }
        let lambda_last = inputs.lambda_ref - Nanometers::new(dn);

        let params = CircuitParams {
            order: n,
            wl_spacing: spacing,
            lambda_last,
            lambda_ref: inputs.lambda_ref,
            mzi_il: inputs.mzi_il,
            mzi_er: inputs.mzi_er,
            modulator: inputs.modulator,
            filter: inputs.filter,
            pump_power: inputs.pump_power,
            probe_power: Milliwatts::new(1.0), // provisional
            responsivity_a_per_w: crate::params::receiver_defaults::RESPONSIVITY_A_PER_W,
            noise_current_a: crate::params::receiver_defaults::NOISE_CURRENT_A,
            backend: crate::backend::BackendKind::MrrMzi,
        };
        params.validate()?;
        let snr = SnrModel::new(&params)?;
        let min_probe_power = snr.min_probe_power_for_ber(inputs.target_ber)?;
        let params = params.with_probe_power(min_probe_power);
        Ok(MziFirstDesign {
            channels: params.channels(),
            wl_spacing: spacing,
            min_probe_power,
            params,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xiao() -> MziFirstInputs {
        MziFirstInputs::paper_fig6(DbRatio::from_db(6.5), DbRatio::from_db(7.5))
    }

    #[test]
    fn channels_land_on_control_levels() {
        let d = MziFirstDesign::solve(&xiao()).unwrap();
        assert_eq!(d.channels.len(), 3);
        // Derived spacing ≈ 0.552 nm for the Xiao MZI at 0.6 W.
        assert!(
            (d.wl_spacing.as_nm() - 0.552).abs() < 0.005,
            "spacing {}",
            d.wl_spacing
        );
        // The filter detuned by the count-k control power must land on λ_k.
        let model = crate::transmission::TransmissionModel::new(&d.params).unwrap();
        for k in 0..=2 {
            let x: Vec<bool> = (0..2).map(|i| i < k).collect();
            let control = model.adder().control_power(&x).unwrap();
            let res = model.mux().effective_resonance(control);
            assert!(
                (res - d.channels[k]).abs().as_nm() < 1e-9,
                "count {k}: {res} vs {}",
                d.channels[k]
            );
        }
    }

    #[test]
    fn xiao_design_point_probe_power() {
        // Paper: "assuming the MZI device in [19] (IL 6.5 dB, ER 7.5 dB),
        // the required laser probe power would be 0.26 mW".
        let d = MziFirstDesign::solve(&xiao()).unwrap();
        let p = d.min_probe_power.as_mw();
        assert!(
            (p - 0.26).abs() < 0.03,
            "probe power {p} mW (paper: 0.26 mW)"
        );
    }

    #[test]
    fn worse_mzi_needs_more_probe_power() {
        let good = MziFirstDesign::solve(&MziFirstInputs::paper_fig6(
            DbRatio::from_db(3.0),
            DbRatio::from_db(7.6),
        ))
        .unwrap();
        let bad = MziFirstDesign::solve(&MziFirstInputs::paper_fig6(
            DbRatio::from_db(7.4),
            DbRatio::from_db(4.0),
        ))
        .unwrap();
        assert!(
            bad.min_probe_power > good.min_probe_power,
            "bad {} vs good {}",
            bad.min_probe_power,
            good.min_probe_power
        );
        // The mechanism: the bad MZI compresses the wavelength plan.
        assert!(bad.wl_spacing < good.wl_spacing);
    }

    #[test]
    fn ber_target_scaling() {
        let mut inputs = xiao();
        let tight = MziFirstDesign::solve(&inputs).unwrap();
        inputs.target_ber = 1e-2;
        let loose = MziFirstDesign::solve(&inputs).unwrap();
        // Fig. 6(b): ~50% power saving from 1e-6 to 1e-2.
        let ratio = loose.min_probe_power / tight.min_probe_power;
        assert!((ratio - 0.489).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn zero_er_rejected() {
        let inputs = MziFirstInputs::paper_fig6(DbRatio::from_db(4.5), DbRatio::from_db(0.0));
        assert!(MziFirstDesign::solve(&inputs).is_err());
    }

    #[test]
    fn zero_order_rejected() {
        let mut inputs = xiao();
        inputs.order = 0;
        assert!(matches!(
            MziFirstDesign::solve(&inputs),
            Err(CircuitError::InvalidStructure(_))
        ));
    }

    #[test]
    fn probe_power_meets_target() {
        let d = MziFirstDesign::solve(&xiao()).unwrap();
        let achieved = SnrModel::new(&d.params).unwrap().ber().unwrap();
        assert!(achieved <= 1.05e-6, "achieved {achieved:.2e}");
    }
}
