//! Pool-scale design-space search with a Pareto frontier.
//!
//! The paper's Fig. 5/6 methodology is a design-point search: sweep the
//! circuit and device parameters, solve each point for its minimum
//! probe power, and pick operating points. This module turns that
//! search into a **many-distinct-circuits batch workload**: a
//! [`DesignSweep`] enumerates candidate circuits over the axes of
//! [`SweepAxes`] (order × SNG kind × stream length × backend × the
//! IL/ER device grid of [`super::space::fig6a_grid`]), solves each
//! distinct `(order, IL, ER)` point once through
//! [`super::mzi_first::MziFirstDesign`], joins per-candidate energy
//! ([`crate::energy::EnergyModel::breakdown_for`]) and a first-order
//! area proxy ([`area_proxy_mm2`]), measures each candidate's empirical
//! accuracy through any serving tier ([`SweepMode`]), and extracts the
//! non-dominated accuracy × energy × area set ([`pareto_frontier`])
//! with deterministic tie-breaking.
//!
//! # Determinism contract
//!
//! Frontier determinism is part of the standing
//! [`crate::batch::mix_seed`] contract. Candidate `i` (its position in
//! the fixed [`SweepAxes::enumerate`] order, counting infeasible
//! candidates) seeds its evaluation with `mix_seed(sweep_seed, i)`, and
//! every serving tier evaluates the candidate's probe batch through the
//! proven-equivalent entrypoints — the same
//! [`crate::batch::shard::evaluate_batch_in_process`] dispatch point
//! the workers run, a [`ShardCoordinator`], a
//! [`WorkerPool::run_requests`] stream (one [`ShardRequest::batch`] per
//! candidate, `first_index` 0), or a TCP [`ServiceClient`]. Design
//! solving, the energy/area join, Pareto extraction and the canonical
//! CSV ([`frontier_csv`]) are all host-side scalar arithmetic over
//! those bit-exact results, so the frontier bytes are identical across
//! serving modes, worker counts, SIMD dispatch tiers and thread counts.
//!
//! ```no_run
//! use osc_core::batch::BatchEvaluator;
//! use osc_core::design::sweep::{frontier_csv, pareto_frontier, DesignSweep, SweepAxes, SweepMode};
//!
//! let sweep = DesignSweep::new(SweepAxes::fig6(4));
//! let evaluator = BatchEvaluator::new();
//! let points = sweep.evaluate(SweepMode::InProcess(&evaluator)).unwrap();
//! let csv = frontier_csv(&pareto_frontier(&points));
//! # drop(csv);
//! ```
//!
//! A pool-served sweep is the stress profile the digest-keyed worker
//! circuit cache was built for: ≥ 1000 distinct circuits stream through
//! [`WorkerPool::run_requests`] as one pipelined call, so size the
//! cache to the working set via `OSC_CIRCUIT_CACHE` or
//! [`crate::batch::shard::pool::PoolConfig::with_circuit_cache_capacity`].

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::backend::BackendKind;
use crate::batch::shard::pool::WorkerPool;
use crate::batch::shard::service::ServiceClient;
use crate::batch::shard::{
    evaluate_batch_in_process, ShardCoordinator, ShardError, ShardRequest, SngKind,
};
use crate::batch::{mix_seed, BatchEvaluator};
use crate::design::mzi_first::{MziFirstDesign, MziFirstInputs};
use crate::energy::{EnergyAssumptions, EnergyModel};
use crate::params::CircuitParams;
use crate::system::{OpticalRun, OpticalScSystem};
use crate::CircuitError;
use osc_stochastic::bernstein::BernsteinPoly;
use osc_units::{DbRatio, Milliwatts, Nanometers};

/// The candidate axes of one design sweep.
///
/// The candidate universe is the cross product of every axis; see
/// [`SweepAxes::enumerate`] for the pinned ordering.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepAxes {
    /// Polynomial orders to sweep.
    pub orders: Vec<usize>,
    /// Stochastic number generator kinds to sweep.
    pub sngs: Vec<SngKind>,
    /// Stream lengths (bits) to sweep.
    pub stream_lengths: Vec<usize>,
    /// Transmission backends to sweep.
    pub backends: Vec<BackendKind>,
    /// MZI insertion losses, dB (Fig. 6(a) outer axis).
    pub il_db: Vec<f64>,
    /// MZI extinction ratios, dB (Fig. 6(a) inner axis).
    pub er_db: Vec<f64>,
    /// Transmission BER target each design point is solved for.
    pub target_ber: f64,
    /// Accuracy probe inputs per candidate ([`probe_inputs`]).
    pub probes: usize,
    /// Sweep seed; candidate `i` evaluates under `mix_seed(seed, i)`.
    pub seed: u64,
}

impl SweepAxes {
    /// The Fig. 6-flavoured default axes over a `points × points` IL/ER
    /// grid: orders 1 and 2, the counter and Xoshiro generators, 64-
    /// and 256-bit stream lengths (the accuracy ↔ energy-per-evaluation
    /// tradeoff that keeps the frontier multi-point), both backends,
    /// and the paper's IL 3.0–7.4 dB / ER 4.0–7.6 dB device ranges at
    /// BER 10⁻⁶.
    pub fn fig6(points: usize) -> SweepAxes {
        let points = points.max(1);
        SweepAxes {
            orders: vec![1, 2],
            sngs: vec![SngKind::Counter, SngKind::Xoshiro],
            stream_lengths: vec![64, 256],
            backends: BackendKind::ALL.to_vec(),
            il_db: osc_math::linspace(3.0, 7.4, points),
            er_db: osc_math::linspace(4.0, 7.6, points),
            target_ber: 1e-6,
            probes: 3,
            seed: 0xDE51_6E0A,
        }
    }

    /// [`SweepAxes::fig6`] sized so the candidate universe holds at
    /// least `min_candidates` (the grid side grows until the cross
    /// product reaches the floor).
    pub fn fig6_sized(min_candidates: usize) -> SweepAxes {
        let mut points = 1usize;
        loop {
            let axes = SweepAxes::fig6(points);
            if axes.candidate_count() >= min_candidates {
                return axes;
            }
            points += 1;
        }
    }

    /// Size of the candidate universe (including candidates that later
    /// solve infeasible).
    pub fn candidate_count(&self) -> usize {
        self.backends.len()
            * self.orders.len()
            * self.sngs.len()
            * self.stream_lengths.len()
            * self.il_db.len()
            * self.er_db.len()
    }

    /// Enumerates the candidate universe in its pinned order — backend
    /// outermost, then order, SNG kind, stream length, IL, ER innermost
    /// (the row-major Fig. 6(a) convention). `Candidate::index` is the
    /// position in this order and is what seeds the candidate, so the
    /// ordering is part of the determinism contract.
    pub fn enumerate(&self) -> Vec<Candidate> {
        let mut out = Vec::with_capacity(self.candidate_count());
        let mut index = 0u64;
        for &backend in &self.backends {
            for &order in &self.orders {
                for &sng in &self.sngs {
                    for &stream_length in &self.stream_lengths {
                        for &il_db in &self.il_db {
                            for &er_db in &self.er_db {
                                out.push(Candidate {
                                    index,
                                    backend,
                                    order,
                                    sng,
                                    stream_length,
                                    il_db,
                                    er_db,
                                });
                                index += 1;
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

/// One point of the candidate universe.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// Position in the [`SweepAxes::enumerate`] order (seeds the
    /// candidate via `mix_seed(sweep_seed, index)`).
    pub index: u64,
    /// Transmission backend.
    pub backend: BackendKind,
    /// Polynomial order.
    pub order: usize,
    /// Stochastic number generator kind.
    pub sng: SngKind,
    /// Stream length in bits.
    pub stream_length: usize,
    /// MZI insertion loss, dB.
    pub il_db: f64,
    /// MZI extinction ratio, dB.
    pub er_db: f64,
}

impl Candidate {
    /// The batch seed this candidate evaluates under — the standing
    /// [`mix_seed`] contract applied at candidate granularity.
    pub fn seed_for(&self, sweep_seed: u64) -> u64 {
        mix_seed(sweep_seed, self.index)
    }
}

/// The deterministic Bernstein coefficients a sweep programs into an
/// order-`n` candidate: `c_j = 0.2 + 0.6·j/n`, a monotone ramp well
/// inside the `[0, 1]` Bernstein box for every order.
pub fn sweep_coeffs(order: usize) -> Vec<f64> {
    let n = order.max(1) as f64;
    (0..=order).map(|j| 0.2 + 0.6 * j as f64 / n).collect()
}

/// The accuracy probe inputs of a sweep: `x_j = (j+1)/(probes+1)`,
/// interior points of `[0, 1]` in index order.
pub fn probe_inputs(probes: usize) -> Vec<f64> {
    (0..probes)
        .map(|j| (j + 1) as f64 / (probes + 1) as f64)
        .collect()
}

/// First-order chip-area proxy, mm².
///
/// This is a comparison metric, not a layout estimate. The MZI
/// phase-shifter length is anchored to the Fig. 6(c) literature corpus
/// (0.75 mm at 6.5 dB IL \[Xiao\], 1.0 mm at 3.2 dB \[Dong\] — lower
/// loss costs length), interpolated linearly in IL and clamped to
/// [0.5, 1.5] mm; ER does not enter the proxy. An order-`n` circuit
/// charges `n` MZIs (phase shifter × 50 µm pitch), `n+1` MRR
/// modulators (20 µm × 20 µm each) and one add-drop filter. The
/// nanocavity backend swaps the MZI bank for wavelength-scale
/// photonic-crystal cavities (50 µm² each) and keeps the WDM plumbing.
pub fn area_proxy_mm2(backend: BackendKind, order: usize, il_db: f64) -> f64 {
    const MZI_PITCH_MM: f64 = 0.05;
    const MRR_AREA_MM2: f64 = 4e-4;
    const FILTER_AREA_MM2: f64 = 1e-3;
    const CAVITY_AREA_MM2: f64 = 5e-5;
    let n = order as f64;
    let wdm = (n + 1.0) * MRR_AREA_MM2 + FILTER_AREA_MM2;
    match backend {
        BackendKind::MrrMzi => {
            let ps_len_mm = (1.2424 - 0.0758 * il_db).clamp(0.5, 1.5);
            n * ps_len_mm * MZI_PITCH_MM + wdm
        }
        BackendKind::Nanocavity => n * CAVITY_AREA_MM2 + wdm,
    }
}

/// A feasible candidate with its solved design and joined metrics.
#[derive(Debug, Clone)]
pub struct CandidateDesign {
    /// The candidate itself.
    pub candidate: Candidate,
    /// Complete parameter set (candidate backend applied).
    pub params: CircuitParams,
    /// Programmed Bernstein coefficients ([`sweep_coeffs`]).
    pub coeffs: Vec<f64>,
    /// Derived wavelength spacing.
    pub wl_spacing: Nanometers,
    /// Minimum probe power per laser for the BER target.
    pub min_probe_power: Milliwatts,
    /// Laser energy per evaluation (per-bit total × stream bits), pJ.
    pub energy_pj: f64,
    /// Chip-area proxy ([`area_proxy_mm2`]).
    pub area_mm2: f64,
}

/// One evaluated frontier candidate: a [`CandidateDesign`] joined with
/// its measured accuracy.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The candidate.
    pub candidate: Candidate,
    /// Derived wavelength spacing.
    pub wl_spacing: Nanometers,
    /// Minimum probe power per laser.
    pub min_probe_power: Milliwatts,
    /// Laser energy per evaluation, pJ (minimized).
    pub energy_pj: f64,
    /// Chip-area proxy, mm² (minimized).
    pub area_mm2: f64,
    /// Mean |estimate − exact| over the probe inputs (minimized).
    pub mean_abs_error: f64,
}

/// The serving tier a sweep evaluates through. Every mode produces
/// bit-identical [`SweepPoint`]s (see the module-level determinism
/// contract).
pub enum SweepMode<'a> {
    /// In this process, through the worker dispatch point
    /// ([`evaluate_batch_in_process`]).
    InProcess(&'a BatchEvaluator),
    /// Spawn-per-call subprocess sharding.
    Spawn(&'a ShardCoordinator),
    /// A persistent worker pool; all candidates stream through one
    /// pipelined [`WorkerPool::run_requests`] call — the many-distinct-
    /// circuits profile the digest-keyed circuit cache was built for.
    Pool(&'a mut WorkerPool),
    /// A TCP service connection, one request per candidate.
    Service(&'a mut ServiceClient),
}

/// Errors of a sweep evaluation.
#[derive(Debug)]
pub enum SweepError {
    /// A candidate system failed to build or evaluate in-process.
    Circuit(CircuitError),
    /// A sharded/pooled/service evaluation failed.
    Shard(ShardError),
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::Circuit(e) => write!(f, "sweep circuit error: {e}"),
            SweepError::Shard(e) => write!(f, "sweep shard error: {e}"),
        }
    }
}

impl std::error::Error for SweepError {}

impl From<CircuitError> for SweepError {
    fn from(e: CircuitError) -> Self {
        SweepError::Circuit(e)
    }
}

impl From<ShardError> for SweepError {
    fn from(e: ShardError) -> Self {
        SweepError::Shard(e)
    }
}

/// A fully enumerated and solved design sweep, ready to evaluate
/// through any [`SweepMode`].
#[derive(Debug, Clone)]
pub struct DesignSweep {
    axes: SweepAxes,
    designs: Vec<CandidateDesign>,
    infeasible: usize,
}

impl DesignSweep {
    /// Enumerates the candidate universe and solves every distinct
    /// `(order, IL, ER)` design point once (backends and SNG/stream
    /// axes share the solve). Infeasible points — order 0, degenerate
    /// ER, or crosstalk swamping the BER target — are skipped as
    /// values, never panics; they still occupy their enumeration index,
    /// so feasibility filtering does not shift any candidate's seed.
    pub fn new(axes: SweepAxes) -> DesignSweep {
        type SolveKey = (usize, u64, u64);
        let mut solved: BTreeMap<SolveKey, Option<MziFirstDesign>> = BTreeMap::new();
        let mut designs = Vec::new();
        let mut infeasible = 0usize;
        for candidate in axes.enumerate() {
            let key = (
                candidate.order,
                candidate.il_db.to_bits(),
                candidate.er_db.to_bits(),
            );
            let design = solved.entry(key).or_insert_with(|| {
                let inputs = MziFirstInputs {
                    order: candidate.order,
                    target_ber: axes.target_ber,
                    ..MziFirstInputs::paper_fig6(
                        DbRatio::from_db(candidate.il_db),
                        DbRatio::from_db(candidate.er_db),
                    )
                };
                MziFirstDesign::solve(&inputs).ok()
            });
            let Some(design) = design else {
                infeasible += 1;
                continue;
            };
            let params = design.params.with_backend(candidate.backend);
            let energy = EnergyModel::new(
                candidate.order,
                EnergyAssumptions {
                    target_ber: axes.target_ber,
                    ..EnergyAssumptions::default()
                },
            )
            .breakdown_for(
                design.wl_spacing,
                params.pump_power,
                design.min_probe_power,
            );
            designs.push(CandidateDesign {
                candidate,
                params,
                coeffs: sweep_coeffs(candidate.order),
                wl_spacing: design.wl_spacing,
                min_probe_power: design.min_probe_power,
                energy_pj: energy.total().as_pj() * candidate.stream_length as f64,
                area_mm2: area_proxy_mm2(candidate.backend, candidate.order, candidate.il_db),
            });
        }
        DesignSweep {
            axes,
            designs,
            infeasible,
        }
    }

    /// The sweep axes.
    pub fn axes(&self) -> &SweepAxes {
        &self.axes
    }

    /// The feasible candidate designs, in enumeration order.
    pub fn designs(&self) -> &[CandidateDesign] {
        &self.designs
    }

    /// How many enumerated candidates solved infeasible.
    pub fn infeasible(&self) -> usize {
        self.infeasible
    }

    /// Total candidate universe size (feasible + infeasible).
    pub fn candidates(&self) -> usize {
        self.axes.candidate_count()
    }

    /// Builds the optical system of one feasible design.
    fn system(&self, design: &CandidateDesign) -> Result<OpticalScSystem, CircuitError> {
        let poly = BernsteinPoly::new(design.coeffs.clone())
            .map_err(|e| CircuitError::InvalidStructure(e.to_string()))?;
        OpticalScSystem::new(design.params, poly)
    }

    /// Evaluates every feasible candidate's accuracy through the given
    /// serving tier and joins the [`SweepPoint`] metrics, in
    /// enumeration order.
    ///
    /// # Errors
    ///
    /// Propagates the first failed evaluation.
    pub fn evaluate(&self, mode: SweepMode<'_>) -> Result<Vec<SweepPoint>, SweepError> {
        let xs = probe_inputs(self.axes.probes);
        let runs_per_design: Vec<Vec<OpticalRun>> = match mode {
            SweepMode::InProcess(evaluator) => {
                let mut all = Vec::with_capacity(self.designs.len());
                for d in &self.designs {
                    let system = self.system(d)?;
                    all.push(evaluate_batch_in_process(
                        evaluator,
                        &system,
                        d.candidate.sng,
                        &xs,
                        d.candidate.stream_length,
                        d.candidate.seed_for(self.axes.seed),
                    )?);
                }
                all
            }
            SweepMode::Spawn(coordinator) => {
                let mut all = Vec::with_capacity(self.designs.len());
                for d in &self.designs {
                    let system = self.system(d)?;
                    all.push(coordinator.evaluate_many(
                        &system,
                        d.candidate.sng,
                        &xs,
                        d.candidate.stream_length,
                        d.candidate.seed_for(self.axes.seed),
                    )?);
                }
                all
            }
            SweepMode::Pool(pool) => {
                let mut requests = Vec::with_capacity(self.designs.len());
                for d in &self.designs {
                    let system = self.system(d)?;
                    requests.push(ShardRequest::batch(
                        &system,
                        d.candidate.sng,
                        0,
                        &xs,
                        d.candidate.stream_length,
                        d.candidate.seed_for(self.axes.seed),
                        None,
                    ));
                }
                let expected = vec![xs.len(); requests.len()];
                pool.run_requests(&requests, &expected)?
            }
            SweepMode::Service(client) => {
                let mut all = Vec::with_capacity(self.designs.len());
                for d in &self.designs {
                    let system = self.system(d)?;
                    all.push(client.request(&ShardRequest::batch(
                        &system,
                        d.candidate.sng,
                        0,
                        &xs,
                        d.candidate.stream_length,
                        d.candidate.seed_for(self.axes.seed),
                        None,
                    ))?);
                }
                all
            }
        };
        Ok(self
            .designs
            .iter()
            .zip(runs_per_design)
            .map(|(d, runs)| {
                let total: f64 = runs.iter().map(|r| (r.estimate - r.exact).abs()).sum();
                SweepPoint {
                    candidate: d.candidate,
                    wl_spacing: d.wl_spacing,
                    min_probe_power: d.min_probe_power,
                    energy_pj: d.energy_pj,
                    area_mm2: d.area_mm2,
                    mean_abs_error: total / runs.len().max(1) as f64,
                }
            })
            .collect())
    }
}

/// `q` strictly dominates `p` on (error, energy, area): no worse on
/// every metric and better on at least one.
fn dominates(q: &SweepPoint, p: &SweepPoint) -> bool {
    q.mean_abs_error <= p.mean_abs_error
        && q.energy_pj <= p.energy_pj
        && q.area_mm2 <= p.area_mm2
        && (q.mean_abs_error < p.mean_abs_error
            || q.energy_pj < p.energy_pj
            || q.area_mm2 < p.area_mm2)
}

/// Extracts the non-dominated accuracy × energy × area set, sorted with
/// deterministic tie-breaking: ascending mean absolute error, then
/// energy, then area (all by IEEE total order), then candidate index.
/// Points tied on all three metrics are all kept — neither dominates.
pub fn pareto_frontier(points: &[SweepPoint]) -> Vec<SweepPoint> {
    let mut frontier: Vec<SweepPoint> = points
        .iter()
        .filter(|p| !points.iter().any(|q| dominates(q, p)))
        .cloned()
        .collect();
    frontier.sort_by(|a, b| {
        a.mean_abs_error
            .total_cmp(&b.mean_abs_error)
            .then(a.energy_pj.total_cmp(&b.energy_pj))
            .then(a.area_mm2.total_cmp(&b.area_mm2))
            .then(a.candidate.index.cmp(&b.candidate.index))
    });
    frontier
}

/// Header row of the canonical frontier CSV.
pub const FRONTIER_CSV_HEADER: &str = "candidate,backend,order,sng,stream_bits,il_db,er_db,\
                                       wl_spacing_nm,probe_mw,energy_pj,area_mm2,mean_abs_error";

/// Renders frontier points as the canonical CSV: the
/// [`FRONTIER_CSV_HEADER`] row, then one row per point in the given
/// order, floats in Rust's shortest-round-trip decimal form and `\n`
/// line endings. Bit-identical inputs render to byte-identical CSV, so
/// `cmp` across serving modes is the frontier-determinism check.
pub fn frontier_csv(points: &[SweepPoint]) -> String {
    let mut out = String::from(FRONTIER_CSV_HEADER);
    out.push('\n');
    for p in points {
        let c = &p.candidate;
        writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{},{},{}",
            c.index,
            c.backend,
            c.order,
            c.sng.name(),
            c.stream_length,
            c.il_db,
            c.er_db,
            p.wl_spacing.as_nm(),
            p.min_probe_power.as_mw(),
            p.energy_pj,
            p.area_mm2,
            p.mean_abs_error,
        )
        .expect("writing to a String cannot fail");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(index: u64, err: f64, energy: f64, area: f64) -> SweepPoint {
        SweepPoint {
            candidate: Candidate {
                index,
                backend: BackendKind::MrrMzi,
                order: 2,
                sng: SngKind::Counter,
                stream_length: 64,
                il_db: 4.0,
                er_db: 6.0,
            },
            wl_spacing: Nanometers::new(0.5),
            min_probe_power: Milliwatts::new(0.3),
            energy_pj: energy,
            area_mm2: area,
            mean_abs_error: err,
        }
    }

    #[test]
    fn enumeration_order_is_pinned_and_seeds_by_index() {
        let axes = SweepAxes {
            orders: vec![1, 2],
            sngs: vec![SngKind::Counter],
            stream_lengths: vec![32, 64],
            backends: vec![BackendKind::MrrMzi, BackendKind::Nanocavity],
            il_db: vec![3.0, 5.0],
            er_db: vec![6.0],
            target_ber: 1e-6,
            probes: 2,
            seed: 9,
        };
        let cands = axes.enumerate();
        assert_eq!(cands.len(), axes.candidate_count());
        assert_eq!(cands.len(), 16);
        // Indices are the enumeration positions.
        for (i, c) in cands.iter().enumerate() {
            assert_eq!(c.index, i as u64);
            assert_eq!(c.seed_for(9), mix_seed(9, i as u64));
        }
        // Backend outermost, ER innermost: the first block is MrrMzi
        // order 1 stream 32, sweeping IL.
        assert_eq!(cands[0].backend, BackendKind::MrrMzi);
        assert_eq!((cands[0].il_db, cands[1].il_db), (3.0, 5.0));
        assert_eq!(cands[2].stream_length, 64);
        assert_eq!(cands[4].order, 2);
        assert_eq!(cands[8].backend, BackendKind::Nanocavity);
    }

    #[test]
    fn infeasible_candidates_skip_as_values_and_keep_seeds() {
        // 40 dB insertion loss is hopeless at BER 1e-6; 3 dB is fine.
        let axes = SweepAxes {
            il_db: vec![3.0, 40.0],
            er_db: vec![6.0],
            orders: vec![2],
            sngs: vec![SngKind::Counter],
            stream_lengths: vec![64],
            backends: vec![BackendKind::MrrMzi],
            ..SweepAxes::fig6(1)
        };
        let sweep = DesignSweep::new(axes);
        assert_eq!(sweep.candidates(), 2);
        assert_eq!(sweep.infeasible(), 1);
        assert_eq!(sweep.designs().len(), 1);
        // The surviving candidate keeps its enumeration index (0), so
        // its seed is unshifted by the infeasible neighbour.
        assert_eq!(sweep.designs()[0].candidate.index, 0);
    }

    #[test]
    fn solve_dedup_shares_design_across_backends_and_sngs() {
        let axes = SweepAxes {
            il_db: vec![4.0],
            er_db: vec![6.0],
            orders: vec![2],
            sngs: vec![SngKind::Counter, SngKind::Xoshiro],
            stream_lengths: vec![64],
            backends: BackendKind::ALL.to_vec(),
            ..SweepAxes::fig6(1)
        };
        let sweep = DesignSweep::new(axes);
        assert_eq!(sweep.designs().len(), 4);
        let spacings: Vec<u64> = sweep
            .designs()
            .iter()
            .map(|d| d.wl_spacing.as_nm().to_bits())
            .collect();
        assert!(spacings.windows(2).all(|w| w[0] == w[1]));
        // Backends differ only in the params backend tag and area.
        let a = &sweep.designs()[0];
        let b = &sweep.designs()[2];
        assert_eq!(a.params.backend, BackendKind::MrrMzi);
        assert_eq!(b.params.backend, BackendKind::Nanocavity);
        assert!(b.area_mm2 < a.area_mm2);
    }

    #[test]
    fn in_process_frontier_is_thread_count_invariant() {
        let sweep = DesignSweep::new(SweepAxes {
            probes: 2,
            stream_lengths: vec![32],
            ..SweepAxes::fig6(2)
        });
        let one = sweep
            .evaluate(SweepMode::InProcess(&BatchEvaluator::with_threads(1)))
            .unwrap();
        let four = sweep
            .evaluate(SweepMode::InProcess(&BatchEvaluator::with_threads(4)))
            .unwrap();
        let csv_one = frontier_csv(&pareto_frontier(&one));
        let csv_four = frontier_csv(&pareto_frontier(&four));
        assert_eq!(csv_one, csv_four);
        assert!(csv_one.starts_with(FRONTIER_CSV_HEADER));
        assert!(csv_one.lines().count() > 1);
    }

    #[test]
    fn pareto_keeps_only_non_dominated_with_deterministic_order() {
        let pts = vec![
            point(0, 0.10, 5.0, 1.0), // dominated by 3 on error+energy
            point(1, 0.05, 9.0, 1.0), // frontier: best error
            point(2, 0.20, 1.0, 1.0), // frontier: best energy
            point(3, 0.08, 4.0, 1.0), // frontier: middle
            point(4, 0.08, 4.0, 1.0), // exact tie with 3: both kept
            point(5, 0.30, 2.0, 0.1), // frontier: best area
        ];
        let frontier = pareto_frontier(&pts);
        let idx: Vec<u64> = frontier.iter().map(|p| p.candidate.index).collect();
        assert_eq!(idx, vec![1, 3, 4, 2, 5]);
    }

    #[test]
    fn frontier_csv_shape() {
        let csv = frontier_csv(&[point(7, 0.125, 2.5, 0.75)]);
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some(FRONTIER_CSV_HEADER));
        let row = lines.next().unwrap();
        assert!(row.starts_with("7,mrr-mzi,2,counter,64,4,6,0.5,0.3,2.5,0.75,0.125"));
        assert_eq!(lines.next(), None);
        assert!(csv.ends_with('\n'));
    }

    #[test]
    fn area_proxy_directions() {
        // Larger order costs area; lower IL costs MZI length; the
        // nanocavity backend undercuts the MZI bank.
        assert!(
            area_proxy_mm2(BackendKind::MrrMzi, 3, 4.0)
                > area_proxy_mm2(BackendKind::MrrMzi, 2, 4.0)
        );
        assert!(
            area_proxy_mm2(BackendKind::MrrMzi, 2, 3.0)
                > area_proxy_mm2(BackendKind::MrrMzi, 2, 7.0)
        );
        assert!(
            area_proxy_mm2(BackendKind::Nanocavity, 2, 4.0)
                < area_proxy_mm2(BackendKind::MrrMzi, 2, 4.0)
        );
    }

    #[test]
    fn fig6_sized_reaches_floor() {
        let axes = SweepAxes::fig6_sized(1000);
        assert!(axes.candidate_count() >= 1000);
        // Growth is by grid side, so the floor is not wildly overshot.
        assert!(axes.candidate_count() < 4000);
    }

    #[test]
    fn sweep_coeffs_stay_in_bernstein_box() {
        for order in 1..=6 {
            let c = sweep_coeffs(order);
            assert_eq!(c.len(), order + 1);
            assert!(c.iter().all(|&v| (0.0..=1.0).contains(&v)));
            assert!(c.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
