//! The all-optical multiplexer: TPA-tuned add-drop filter
//! (paper Fig. 4(a) right, Eq. 7.a).
//!
//! The filter's rest resonance is `λ_ref`; the adder's control power
//! blue-shifts it by `ΔFilter = OP_control × OTE` onto one of the probe
//! channels, dropping that channel to the photodetector. The wavelength
//! plan is built so that a count of `k` ones parks the filter exactly on
//! `λ_k` — the optical equivalent of the ReSC multiplexer selecting
//! coefficient `z_k`.

use crate::{params::CircuitParams, CircuitError};
use osc_photonics::add_drop_filter::AddDropFilter;
use osc_units::{Milliwatts, Nanometers};

/// The all-optical multiplexer stage.
#[derive(Debug, Clone)]
pub struct OpticalMux {
    filter: AddDropFilter,
    channels: Vec<Nanometers>,
}

impl OpticalMux {
    /// Builds the multiplexer from circuit parameters.
    ///
    /// # Errors
    ///
    /// Propagates validation and device construction failures.
    pub fn new(params: &CircuitParams) -> Result<Self, CircuitError> {
        params.validate()?;
        Ok(OpticalMux {
            filter: params.filter.at_reference(params.lambda_ref)?,
            channels: params.channels(),
        })
    }

    /// The underlying tuned filter.
    pub fn filter(&self) -> &AddDropFilter {
        &self.filter
    }

    /// The probe channel plan `λ_0 … λ_n`.
    pub fn channels(&self) -> &[Nanometers] {
        &self.channels
    }

    /// Filter detuning produced by a control power (Eq. 7.a).
    pub fn detuning(&self, control: Milliwatts) -> Nanometers {
        self.filter.detuning_for(control)
    }

    /// Effective filter resonance under a control power.
    pub fn effective_resonance(&self, control: Milliwatts) -> Nanometers {
        self.filter.effective_resonance(control)
    }

    /// Drop transmission of channel `i` under a control power — the
    /// `φ_d` factor of Eq. (6).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range (internal indexing error).
    pub fn drop_channel(&self, i: usize, control: Milliwatts) -> f64 {
        self.filter.drop(self.channels[i], control)
    }

    /// The channel index whose wavelength is closest to the effective
    /// resonance — which coefficient the multiplexer currently selects.
    pub fn selected_channel(&self, control: Milliwatts) -> usize {
        let res = self.effective_resonance(control);
        let mut best = 0;
        let mut best_d = f64::INFINITY;
        for (i, &ch) in self.channels.iter().enumerate() {
            let d = (ch - res).abs().as_nm();
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        best
    }

    /// Selectivity under a control power: ratio of the selected channel's
    /// drop transmission to the sum over all channels (1.0 = ideal mux).
    pub fn selectivity(&self, control: Milliwatts) -> f64 {
        let sel = self.selected_channel(control);
        let total: f64 = (0..self.channels.len())
            .map(|i| self.drop_channel(i, control))
            .sum();
        if total == 0.0 {
            return 0.0;
        }
        self.drop_channel(sel, control) / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adder::OpticalAdder;
    use crate::params::CircuitParams;

    fn mux() -> OpticalMux {
        OpticalMux::new(&CircuitParams::paper_fig5()).unwrap()
    }

    #[test]
    fn count_k_selects_channel_k() {
        // The core claim of the architecture: data count k drops λ_k.
        let params = CircuitParams::paper_fig5();
        let adder = OpticalAdder::new(&params).unwrap();
        let mux = mux();
        for k in 0..=2 {
            let control = adder.control_power_for_count(k);
            assert_eq!(
                mux.selected_channel(control),
                k,
                "count {k} selected wrong channel"
            );
        }
    }

    #[test]
    fn resonance_lands_on_channels() {
        let params = CircuitParams::paper_fig5();
        let adder = OpticalAdder::new(&params).unwrap();
        let mux = mux();
        for k in 0..=2 {
            let res = mux.effective_resonance(adder.control_power_for_count(k));
            let target = mux.channels()[k];
            assert!(
                (res - target).abs().as_nm() < 1e-6,
                "count {k}: resonance {res} vs channel {target}"
            );
        }
    }

    #[test]
    fn selected_channel_dominates_drop() {
        let params = CircuitParams::paper_fig5();
        let adder = OpticalAdder::new(&params).unwrap();
        let mux = mux();
        for k in 0..=2 {
            let control = adder.control_power_for_count(k);
            let sel = mux.drop_channel(k, control);
            for other in 0..=2 {
                if other != k {
                    assert!(
                        sel > 10.0 * mux.drop_channel(other, control),
                        "count {k}: channel {other} not suppressed"
                    );
                }
            }
            assert!(mux.selectivity(control) > 0.9);
        }
    }

    #[test]
    fn zero_control_rests_at_lambda_ref() {
        let mux = mux();
        assert_eq!(
            mux.effective_resonance(Milliwatts::ZERO),
            Nanometers::new(1550.1)
        );
        // At rest, no channel is selected strongly: even the best channel
        // (λ2, 0.1 nm away) only sees partial drop.
        let d2 = mux.drop_channel(2, Milliwatts::ZERO);
        assert!(d2 < 0.8, "rest-state drop of λ2 = {d2}");
    }

    #[test]
    fn detuning_is_linear_in_power() {
        let mux = mux();
        let d1 = mux.detuning(Milliwatts::new(100.0)).as_nm();
        let d2 = mux.detuning(Milliwatts::new(200.0)).as_nm();
        assert!((d2 - 2.0 * d1).abs() < 1e-12);
    }
}
