//! The full WDM transmission model (paper Eqs. 5–7).
//!
//! For probe signal `i` (coefficient `z_i`), data word `x` and coefficient
//! word `z`, Eq. (6) factors the end-to-end power transmission as
//!
//! `T_{s,z}[i] = φ_t(λ_i, λ_i − Δλ·z_i) · Π_{w≠i} φ_t(λ_i, λ_w − Δλ·z_w) · φ_d(λ_i, λ_ref − ΔFilter(x))`
//!
//! i.e. the signal passes its own modulator (whose resonance is blue-
//! shifted by `Δλ` when transmitting a 1), then every *other* modulator on
//! the shared bus (inter-channel attenuation), and is finally dropped by
//! the pump-tuned filter. The detector receives the sum over all probe
//! channels — including the crosstalk the SNR analysis must subtract.

use crate::adder::OpticalAdder;
use crate::mux::OpticalMux;
use crate::{params::CircuitParams, CircuitError};
use osc_photonics::mrr_modulator::MrrModulator;
use osc_photonics::spectrum::{Channel, Spectrum};
use osc_units::{Milliwatts, Nanometers};

/// The analytical transmission model of one circuit instance.
#[derive(Debug, Clone)]
pub struct TransmissionModel {
    adder: OpticalAdder,
    mux: OpticalMux,
    modulators: Vec<MrrModulator>,
    channels: Vec<Nanometers>,
}

impl TransmissionModel {
    /// Builds the model from circuit parameters.
    ///
    /// # Errors
    ///
    /// Propagates validation and device construction failures.
    pub fn new(params: &CircuitParams) -> Result<Self, CircuitError> {
        let adder = OpticalAdder::new(params)?;
        let mux = OpticalMux::new(params)?;
        let channels = params.channels();
        let modulators = channels
            .iter()
            .map(|&ch| params.modulator.at_channel(ch))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(TransmissionModel {
            adder,
            mux,
            modulators,
            channels,
        })
    }

    /// Polynomial order `n`.
    pub fn order(&self) -> usize {
        self.adder.order()
    }

    /// Probe channel wavelengths `λ_0 … λ_n`.
    pub fn channels(&self) -> &[Nanometers] {
        &self.channels
    }

    /// The stochastic adder stage.
    pub fn adder(&self) -> &OpticalAdder {
        &self.adder
    }

    /// The multiplexer stage.
    pub fn mux(&self) -> &OpticalMux {
        &self.mux
    }

    /// The coefficient modulators, channel order.
    pub fn modulators(&self) -> &[MrrModulator] {
        &self.modulators
    }

    fn check_arities(&self, x_bits: &[bool], z_bits: &[bool]) -> Result<(), CircuitError> {
        let n = self.order();
        if x_bits.len() != n {
            return Err(CircuitError::ArityMismatch {
                what: "data bits",
                expected: n,
                got: x_bits.len(),
            });
        }
        if z_bits.len() != n + 1 {
            return Err(CircuitError::ArityMismatch {
                what: "coefficient bits",
                expected: n + 1,
                got: z_bits.len(),
            });
        }
        Ok(())
    }

    /// Filter detuning `ΔFilter(x)` for a data word (Eq. 7.a).
    ///
    /// # Errors
    ///
    /// [`CircuitError::ArityMismatch`] on wrong word length.
    pub fn delta_filter(&self, x_bits: &[bool]) -> Result<Nanometers, CircuitError> {
        Ok(self.mux.detuning(self.adder.control_power(x_bits)?))
    }

    /// End-to-end transmission of probe channel `i` (Eq. 6).
    ///
    /// # Errors
    ///
    /// [`CircuitError::ArityMismatch`] on wrong word lengths or an
    /// out-of-range channel index.
    pub fn channel_transmission(
        &self,
        i: usize,
        z_bits: &[bool],
        x_bits: &[bool],
    ) -> Result<f64, CircuitError> {
        self.check_arities(x_bits, z_bits)?;
        if i > self.order() {
            return Err(CircuitError::ArityMismatch {
                what: "channel index",
                expected: self.order(),
                got: i,
            });
        }
        let signal = self.channels[i];
        // Through every modulator: its own (bit z_i) plus the others.
        let mut t = 1.0;
        for (w, modulator) in self.modulators.iter().enumerate() {
            t *= modulator.through(signal, z_bits[w]);
        }
        // Dropped by the pump-tuned filter.
        let control = self.adder.control_power(x_bits)?;
        t *= self.mux.filter().drop(signal, control);
        Ok(t)
    }

    /// Transmission of every channel for one input combination.
    ///
    /// # Errors
    ///
    /// [`CircuitError::ArityMismatch`] on wrong word lengths.
    pub fn all_transmissions(
        &self,
        z_bits: &[bool],
        x_bits: &[bool],
    ) -> Result<Vec<f64>, CircuitError> {
        (0..=self.order())
            .map(|i| self.channel_transmission(i, z_bits, x_bits))
            .collect()
    }

    /// Power spectrum arriving at the photodetector when every probe laser
    /// emits `probe_power`.
    ///
    /// # Errors
    ///
    /// [`CircuitError::ArityMismatch`] on wrong word lengths.
    pub fn received_spectrum(
        &self,
        z_bits: &[bool],
        x_bits: &[bool],
        probe_power: Milliwatts,
    ) -> Result<Spectrum, CircuitError> {
        let ts = self.all_transmissions(z_bits, x_bits)?;
        Ok(self
            .channels
            .iter()
            .zip(ts)
            .map(|(&wavelength, t)| Channel {
                wavelength,
                power: probe_power * t,
            })
            .collect())
    }

    /// Total power at the photodetector (the sum the de-randomizer
    /// thresholds).
    ///
    /// # Errors
    ///
    /// [`CircuitError::ArityMismatch`] on wrong word lengths.
    pub fn received_power(
        &self,
        z_bits: &[bool],
        x_bits: &[bool],
        probe_power: Milliwatts,
    ) -> Result<Milliwatts, CircuitError> {
        Ok(self
            .received_spectrum(z_bits, x_bits, probe_power)?
            .total_power())
    }

    /// Sampled transmission spectra of each modulator and of the filter
    /// for a given input combination, for reproducing Fig. 5(a)/(b):
    /// returns `(wavelengths, modulator_curves, filter_curve)` over
    /// `[λ_0 − 1.5·spacing, λ_ref + 0.5]` nm.
    ///
    /// # Errors
    ///
    /// [`CircuitError::ArityMismatch`] on wrong word lengths.
    #[allow(clippy::type_complexity)]
    pub fn spectra(
        &self,
        z_bits: &[bool],
        x_bits: &[bool],
        points: usize,
    ) -> Result<(Vec<f64>, Vec<Vec<f64>>, Vec<f64>), CircuitError> {
        self.check_arities(x_bits, z_bits)?;
        let lo = self.channels[0].as_nm() - 1.0;
        let hi = self.mux.filter().lambda_ref().as_nm() + 0.5;
        let wavelengths = osc_math::linspace(lo, hi, points);
        let control = self.adder.control_power(x_bits)?;
        let modulator_curves = self
            .modulators
            .iter()
            .enumerate()
            .map(|(w, m)| {
                wavelengths
                    .iter()
                    .map(|&wl| m.through(Nanometers::new(wl), z_bits[w]))
                    .collect()
            })
            .collect();
        let filter_curve = wavelengths
            .iter()
            .map(|&wl| self.mux.filter().drop(Nanometers::new(wl), control))
            .collect();
        Ok((wavelengths, modulator_curves, filter_curve))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CircuitParams;

    fn model() -> TransmissionModel {
        TransmissionModel::new(&CircuitParams::paper_fig5()).unwrap()
    }

    #[test]
    fn fig5a_transmission_ordering() {
        // z = (0,1,0), x1 = x2 = 1: the filter sits on λ2, so channel 2
        // dominates, channel 1 is next (it carries a 1 but the filter
        // rejects it), channel 0 is deeply suppressed.
        let m = model();
        let t = m
            .all_transmissions(&[false, true, false], &[true, true])
            .unwrap();
        assert!(t[2] > 10.0 * t[1], "t = {t:?}");
        assert!(t[1] > t[0], "t = {t:?}");
    }

    #[test]
    fn fig5b_strong_one_level() {
        // z = (1,1,0), x1 = x2 = 0: filter on λ0 which carries a 1.
        let m = model();
        let t = m
            .all_transmissions(&[true, true, false], &[false, false])
            .unwrap();
        assert!(t[0] > 0.3, "t0 = {}", t[0]);
        assert!(t[0] > 20.0 * t[1]);
    }

    #[test]
    fn zero_and_one_levels_separate() {
        // For every data word, the received power when the selected
        // coefficient is 1 must clearly exceed the power when it is 0.
        let m = model();
        let words: [(&[bool], usize); 3] = [
            (&[false, false], 0),
            (&[false, true], 1),
            (&[true, true], 2),
        ];
        for (x, sel) in words {
            let mut z1 = vec![false; 3];
            z1[sel] = true;
            let z0 = vec![false; 3];
            let p1 = m.received_power(&z1, x, Milliwatts::new(1.0)).unwrap();
            let p0 = m.received_power(&z0, x, Milliwatts::new(1.0)).unwrap();
            assert!(p1.as_mw() > 3.0 * p0.as_mw(), "x={x:?}: p1={p1}, p0={p0}");
        }
    }

    #[test]
    fn received_power_scales_with_probe() {
        let m = model();
        let z = [false, true, false];
        let x = [true, true];
        let p1 = m.received_power(&z, &x, Milliwatts::new(1.0)).unwrap();
        let p2 = m.received_power(&z, &x, Milliwatts::new(2.0)).unwrap();
        assert!((p2.as_mw() - 2.0 * p1.as_mw()).abs() < 1e-12);
    }

    #[test]
    fn delta_filter_matches_paper() {
        let m = model();
        assert!((m.delta_filter(&[false, false]).unwrap().as_nm() - 2.1).abs() < 1e-6);
        assert!((m.delta_filter(&[true, false]).unwrap().as_nm() - 1.1).abs() < 1e-6);
        assert!((m.delta_filter(&[true, true]).unwrap().as_nm() - 0.1).abs() < 1e-6);
    }

    #[test]
    fn arity_errors() {
        let m = model();
        assert!(m.channel_transmission(0, &[false], &[true, true]).is_err());
        assert!(m
            .channel_transmission(0, &[false, true, false], &[true])
            .is_err());
        assert!(m
            .channel_transmission(5, &[false, true, false], &[true, true])
            .is_err());
    }

    #[test]
    fn spectra_shapes() {
        let m = model();
        let (wl, mods, filt) = m
            .spectra(&[false, true, false], &[true, true], 200)
            .unwrap();
        assert_eq!(wl.len(), 200);
        assert_eq!(mods.len(), 3);
        assert_eq!(filt.len(), 200);
        // Each modulator curve dips near its own channel when OFF.
        let idx_of = |target: f64| {
            wl.iter()
                .enumerate()
                .min_by(|a, b| {
                    (a.1 - target)
                        .abs()
                        .partial_cmp(&(b.1 - target).abs())
                        .unwrap()
                })
                .unwrap()
                .0
        };
        let dip0 = mods[0][idx_of(1548.0)];
        let far0 = mods[0][idx_of(1550.0)];
        assert!(dip0 < 0.3 && far0 > 0.9, "dip {dip0}, far {far0}");
        // Filter curve peaks at λ2 for x = (1,1).
        let peak = filt[idx_of(1550.0)];
        let off = filt[idx_of(1548.0)];
        assert!(peak > 0.5 && off < 0.05);
    }

    #[test]
    fn spectrum_object_consistent_with_total() {
        let m = model();
        let z = [true, false, true];
        let x = [false, true];
        let spec = m.received_spectrum(&z, &x, Milliwatts::new(1.0)).unwrap();
        let total = m.received_power(&z, &x, Milliwatts::new(1.0)).unwrap();
        assert!((spec.total_power().as_mw() - total.as_mw()).abs() < 1e-15);
        assert_eq!(spec.len(), 3);
    }
}
