//! The full parameter set of the architecture (paper Fig. 4(b)).
//!
//! The paper publishes the system-level parameters (order, wavelength
//! plan, MZI IL/ER, OTE, laser powers) but not the micro-ring geometry or
//! the detector constants; those are **calibrated** against the reported
//! operating points by [`crate::calibration`] and stored here as named
//! constants. Each `paper_*` constructor assembles the exact configuration
//! of one of the paper's experiments.

use crate::backend::BackendKind;
use crate::CircuitError;
use osc_photonics::add_drop_filter::AddDropFilter;
use osc_photonics::detector::Photodetector;
use osc_photonics::mrr_modulator::MrrModulator;
use osc_photonics::mzi::MziModulator;
use osc_photonics::ring::RingResonator;
use osc_units::{Amperes, DbRatio, Milliwatts, Nanometers};

/// Calibrated micro-ring template shared by all coefficient modulators.
///
/// `r1/r2/a` were fitted by [`crate::calibration`] so that the Fig. 5
/// operating points reproduce (see EXPERIMENTS.md for residuals).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModulatorTemplate {
    /// Input-bus self-coupling.
    pub r1: f64,
    /// Drop-bus self-coupling.
    pub r2: f64,
    /// Single-pass amplitude transmission.
    pub a: f64,
    /// Free spectral range.
    pub fsr: Nanometers,
    /// ON-state (z = 1) blue shift Δλ.
    pub delta_lambda: Nanometers,
}

impl ModulatorTemplate {
    /// The calibrated default used for the paper's experiments
    /// (fitted by `osc_core::calibration::fit` against the Section V.A
    /// operating points; residual 9.6e-4 in summed squared log-relative
    /// error).
    pub fn calibrated() -> Self {
        ModulatorTemplate {
            r1: 0.96528,
            r2: 0.98648,
            a: 0.999,
            fsr: Nanometers::new(10.0),
            delta_lambda: Nanometers::new(0.25),
        }
    }

    /// A higher-Q profile for dense WDM plans (spacings well below 1 nm,
    /// as in the Fig. 7 energy sweep): narrower linewidth to keep
    /// adjacent-channel attenuation workable, ON-shift scaled to half the
    /// channel spacing (a designer would re-size the modulator drive for
    /// the plan; the paper does not pin these devices for Fig. 7).
    pub fn dense_wdm(spacing: Nanometers) -> Self {
        ModulatorTemplate {
            r1: 0.9862,
            r2: 0.9943,
            a: 0.9996,
            fsr: Nanometers::new(10.0),
            delta_lambda: Nanometers::new((spacing.as_nm() * 0.5).clamp(0.01, 0.25)),
        }
    }

    /// Returns a copy with a larger FSR (smaller ring) whose linewidth and
    /// through-port extinction floor are preserved, by re-solving the
    /// coupling coefficients. Used when a wide WDM plan would otherwise
    /// alias across FSR periods.
    ///
    /// No-op when `new_fsr` does not exceed the current FSR.
    pub fn with_min_fsr(&self, new_fsr: Nanometers) -> Self {
        if new_fsr.as_nm() <= self.fsr.as_nm() {
            return *self;
        }
        let p0 = self.r1 * self.r2 * self.a;
        let floor = ((self.a * self.r2 - self.r1) / (1.0 - p0)).abs();
        // Preserve linewidth: (1−p)/√p scales with 1/FSR.
        let c1 = (1.0 - p0) / p0.sqrt() * self.fsr.as_nm() / new_fsr.as_nm();
        let q = (-c1 + (c1 * c1 + 4.0).sqrt()) / 2.0;
        let p1 = q * q;
        // Preserve the extinction floor: a·r2 − r1 = floor·(1−p1).
        let d = floor * (1.0 - p1);
        let r1 = (-d + (d * d + 4.0 * p1).sqrt()) / 2.0;
        let r2 = (p1 / self.a / r1).min(0.999_999);
        ModulatorTemplate {
            r1,
            r2,
            a: self.a,
            fsr: new_fsr,
            delta_lambda: self.delta_lambda,
        }
    }

    /// Instantiates a modulator for one channel.
    ///
    /// # Errors
    ///
    /// Propagates device validation errors.
    pub fn at_channel(&self, channel: Nanometers) -> Result<MrrModulator, CircuitError> {
        let ring = RingResonator::builder()
            .resonance(channel)
            .fsr(self.fsr)
            .self_coupling(self.r1, self.r2)
            .amplitude_transmission(self.a)
            .build()?;
        Ok(MrrModulator::new(ring, self.delta_lambda)?)
    }
}

/// Calibrated add-drop filter template (the all-optical multiplexer).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FilterTemplate {
    /// Input-bus self-coupling.
    pub r1: f64,
    /// Drop-bus self-coupling.
    pub r2: f64,
    /// Single-pass amplitude transmission.
    pub a: f64,
    /// Free spectral range.
    pub fsr: Nanometers,
    /// Optical tuning efficiency, nm/mW (0.1 nm per 10 mW from Van et
    /// al. \[14\]).
    pub ote_nm_per_mw: f64,
}

impl FilterTemplate {
    /// The calibrated default used for the paper's experiments
    /// (fitted jointly with [`ModulatorTemplate::calibrated`]).
    pub fn calibrated() -> Self {
        FilterTemplate {
            r1: 0.97986,
            r2: 0.97986,
            a: 0.98474,
            fsr: Nanometers::new(10.0),
            ote_nm_per_mw: 0.01,
        }
    }

    /// Higher-Q filter for dense WDM plans (Fig. 7 sweep); see
    /// [`ModulatorTemplate::dense_wdm`]. Tuned so the order-2 energy
    /// optimum lands near the paper's 0.165 nm / 20.1 pJ operating point.
    pub fn dense_wdm() -> Self {
        FilterTemplate {
            r1: 0.9785,
            r2: 0.9785,
            a: 0.9871,
            fsr: Nanometers::new(10.0),
            ote_nm_per_mw: 0.01,
        }
    }

    /// Returns a copy with a larger FSR whose linewidth and drop-port peak
    /// are preserved (see [`ModulatorTemplate::with_min_fsr`]).
    ///
    /// No-op when `new_fsr` does not exceed the current FSR.
    pub fn with_min_fsr(&self, new_fsr: Nanometers) -> Self {
        if new_fsr.as_nm() <= self.fsr.as_nm() {
            return *self;
        }
        let p0 = self.r1 * self.r2 * self.a;
        let peak = self.a * (1.0 - self.r1 * self.r1) * (1.0 - self.r2 * self.r2)
            / ((1.0 - p0) * (1.0 - p0));
        let c1 = (1.0 - p0) / p0.sqrt() * self.fsr.as_nm() / new_fsr.as_nm();
        let q = (-c1 + (c1 * c1 + 4.0).sqrt()) / 2.0;
        let p1 = q * q;
        // Symmetric filter: iterate (r, a) to keep the drop peak.
        let mut a = self.a;
        let mut r2sq = self.r1 * self.r1;
        for _ in 0..40 {
            let u = (peak / a).sqrt().min(1.0) * (1.0 - p1);
            r2sq = (1.0 - u).clamp(1e-6, 1.0 - 1e-9);
            a = (p1 / r2sq).min(1.0);
        }
        let r = r2sq.sqrt();
        FilterTemplate {
            r1: r,
            r2: r,
            a,
            fsr: new_fsr,
            ote_nm_per_mw: self.ote_nm_per_mw,
        }
    }

    /// Instantiates the filter at `lambda_ref`.
    ///
    /// # Errors
    ///
    /// Propagates device validation errors.
    pub fn at_reference(&self, lambda_ref: Nanometers) -> Result<AddDropFilter, CircuitError> {
        let ring = RingResonator::builder()
            .resonance(lambda_ref)
            .fsr(self.fsr)
            .self_coupling(self.r1, self.r2)
            .amplitude_transmission(self.a)
            .build()?;
        Ok(AddDropFilter::new(ring, self.ote_nm_per_mw)?)
    }
}

/// Calibrated receiver constants (paper Eq. 8's `R` and `i_n`).
///
/// `NOISE_CURRENT` is fitted so the Fig. 6 design point (Xiao et al. MZI,
/// 0.6 W pump, BER 1e-6) needs 0.26 mW of probe power, as the paper
/// reports.
pub mod receiver_defaults {
    /// Detector responsivity, A/W.
    pub const RESPONSIVITY_A_PER_W: f64 = 1.1;
    /// Internal noise current, A (calibrated).
    pub const NOISE_CURRENT_A: f64 = 1.341e-5;
}

/// Complete parameter set for one optical SC circuit instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CircuitParams {
    /// Polynomial order `n` (the circuit uses `n` MZIs and `n+1` probes).
    pub order: usize,
    /// Wavelength spacing between consecutive probes (paper Eq. 5).
    pub wl_spacing: Nanometers,
    /// Last (right-most) probe wavelength `λ_n`.
    pub lambda_last: Nanometers,
    /// Filter rest resonance `λ_ref` (detuned reference, `> λ_n`).
    pub lambda_ref: Nanometers,
    /// MZI insertion loss.
    pub mzi_il: DbRatio,
    /// MZI extinction ratio.
    pub mzi_er: DbRatio,
    /// Coefficient modulator template.
    pub modulator: ModulatorTemplate,
    /// Multiplexer filter template.
    pub filter: FilterTemplate,
    /// Pump laser optical power.
    pub pump_power: Milliwatts,
    /// Per-probe laser optical power.
    pub probe_power: Milliwatts,
    /// Detector responsivity, A/W.
    pub responsivity_a_per_w: f64,
    /// Detector internal noise current, A.
    pub noise_current_a: f64,
    /// Which transmission physics realizes the circuit (defaults to
    /// the paper's MRR/MZI architecture).
    pub backend: BackendKind,
}

impl CircuitParams {
    /// The paper's Section V.A / Fig. 5 design point: 2nd-order circuit,
    /// `WLspacing` = 1 nm, `λ2` = 1550 nm, `λ_ref` = 1550.1 nm, Ziebell
    /// MZI (IL 4.5 dB) with the derived ER of 13.22 dB, 591.86 mW pump,
    /// 1 mW probes.
    pub fn paper_fig5() -> Self {
        let il = DbRatio::from_db(4.5);
        // MRR-first outputs (Section V.A): pump = (λref−λ0)/(OTE·IL%),
        // ER% = (λref−λn)/(λref−λ0).
        let detuning_full = Nanometers::new(2.1);
        let ote = FilterTemplate::calibrated().ote_nm_per_mw;
        let pump = Milliwatts::new(detuning_full.as_nm() / (ote * il.as_linear()));
        let er = DbRatio::from_linear(0.1 / 2.1);
        CircuitParams {
            order: 2,
            wl_spacing: Nanometers::new(1.0),
            lambda_last: Nanometers::new(1550.0),
            lambda_ref: Nanometers::new(1550.1),
            mzi_il: il,
            mzi_er: er,
            modulator: ModulatorTemplate::calibrated(),
            filter: FilterTemplate::calibrated(),
            pump_power: pump,
            probe_power: Milliwatts::new(1.0),
            responsivity_a_per_w: receiver_defaults::RESPONSIVITY_A_PER_W,
            noise_current_a: receiver_defaults::NOISE_CURRENT_A,
            backend: BackendKind::MrrMzi,
        }
    }

    /// The Fig. 6 study configuration: a 2nd-order circuit driven MZI-first
    /// from a 0.6 W pump and the given MZI characteristics. Wavelengths
    /// are *derived* from the control power levels (see
    /// [`crate::design::mzi_first`]); this constructor stores the derived
    /// plan directly.
    pub fn paper_fig6(il: DbRatio, er: DbRatio) -> Self {
        let mut p = CircuitParams::paper_fig5();
        p.mzi_il = il;
        p.mzi_er = er;
        p.pump_power = Milliwatts::new(600.0);
        // MZI-first wavelength plan: λ_k = λ_ref − pump·OTE·T(k)/n… the
        // derived spacing follows Eq. 7; recompute via the design method.
        let ote = p.filter.ote_nm_per_mw;
        let il_lin = il.as_linear();
        let er_lin = er.as_linear();
        let n = p.order as f64;
        let d0 = 600.0 * ote * il_lin; // all-constructive detuning
        let dn = 600.0 * ote * il_lin * er_lin; // all-destructive detuning
        p.wl_spacing = Nanometers::new((d0 - dn) / n);
        p.lambda_last = p.lambda_ref - Nanometers::new(dn);
        p
    }

    /// The Fig. 7 energy-study configuration: order `n`, wavelength
    /// spacing `s`, Ziebell MZI (IL 4.5 dB), MRR-first pump sizing, probe
    /// power left at the Fig. 5 default (the energy model replaces it with
    /// the BER-minimal value).
    pub fn paper_fig7(order: usize, spacing: Nanometers) -> Self {
        let mut p = CircuitParams::paper_fig5();
        p.order = order;
        p.wl_spacing = spacing;
        // Dense-WDM device profile for sub-nm plans; at the 1 nm reference
        // point the sweep only uses relative trends, so the profile choice
        // is applied uniformly across the sweep (documented in DESIGN.md).
        // Wide plans (large n·s) force a larger FSR so channels stay
        // within one filter period; linewidth/extinction are preserved.
        let span_nm = order as f64 * spacing.as_nm() + 0.1;
        let min_fsr = Nanometers::new((1.25 * span_nm + 3.0).max(10.0));
        p.modulator = ModulatorTemplate::dense_wdm(spacing).with_min_fsr(min_fsr);
        p.filter = FilterTemplate::dense_wdm().with_min_fsr(min_fsr);
        // Keep λ_ref − λ_n = 0.1 nm as in Fig. 5.
        let delta_ref = Nanometers::new(0.1);
        p.lambda_ref = Nanometers::new(1550.1);
        p.lambda_last = p.lambda_ref - delta_ref;
        let full = Nanometers::new(order as f64 * spacing.as_nm()) + delta_ref;
        p.pump_power =
            Milliwatts::new(full.as_nm() / (p.filter.ote_nm_per_mw * p.mzi_il.as_linear()));
        p.mzi_er = DbRatio::from_linear(delta_ref.as_nm() / full.as_nm());
        p
    }

    /// Probe channel wavelengths `λ_0 … λ_n` (ascending).
    pub fn channels(&self) -> Vec<Nanometers> {
        (0..=self.order)
            .map(|i| self.lambda_last - self.wl_spacing * (self.order - i) as f64)
            .collect()
    }

    /// The MZI modulator model.
    pub fn mzi(&self) -> MziModulator {
        MziModulator::new(self.mzi_il, self.mzi_er).expect("validated in constructor")
    }

    /// The photodetector model.
    ///
    /// # Errors
    ///
    /// Propagates device validation errors for unphysical `R`/`i_n`.
    pub fn detector(&self) -> Result<Photodetector, CircuitError> {
        Ok(Photodetector::new(
            self.responsivity_a_per_w,
            Amperes::new(self.noise_current_a),
        )?)
    }

    /// Validates the structural invariants.
    ///
    /// # Errors
    ///
    /// [`CircuitError::InvalidStructure`] when the order is zero, the
    /// spacing non-positive, or `λ_ref ≤ λ_n`.
    pub fn validate(&self) -> Result<(), CircuitError> {
        if self.order == 0 {
            return Err(CircuitError::InvalidStructure(
                "polynomial order must be at least 1".into(),
            ));
        }
        if self.wl_spacing.as_nm() <= 0.0 {
            return Err(CircuitError::InvalidStructure(format!(
                "wavelength spacing must be positive, got {}",
                self.wl_spacing
            )));
        }
        if self.lambda_ref <= self.lambda_last {
            return Err(CircuitError::InvalidStructure(format!(
                "λ_ref ({}) must exceed λ_n ({})",
                self.lambda_ref, self.lambda_last
            )));
        }
        if !self.pump_power.is_physical() || !self.probe_power.is_physical() {
            return Err(CircuitError::InvalidStructure(
                "laser powers must be non-negative and finite".into(),
            ));
        }
        Ok(())
    }

    /// Returns a copy with a different per-probe power (for sweeps).
    pub fn with_probe_power(mut self, power: Milliwatts) -> Self {
        self.probe_power = power;
        self
    }

    /// Returns a copy with a different pump power (for sweeps).
    pub fn with_pump_power(mut self, power: Milliwatts) -> Self {
        self.pump_power = power;
        self
    }

    /// Returns a copy realized by a different transmission physics.
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_reproduces_paper_pump_and_er() {
        let p = CircuitParams::paper_fig5();
        assert!(
            (p.pump_power.as_mw() - 591.86).abs() < 0.1,
            "pump = {}",
            p.pump_power
        );
        assert!(
            (p.mzi_er.as_db() - 13.222).abs() < 0.01,
            "er = {}",
            p.mzi_er
        );
    }

    #[test]
    fn fig5_channel_plan() {
        let p = CircuitParams::paper_fig5();
        let ch: Vec<f64> = p.channels().iter().map(|c| c.as_nm()).collect();
        assert_eq!(ch, vec![1548.0, 1549.0, 1550.0]);
        p.validate().unwrap();
    }

    #[test]
    fn fig6_derives_spacing_from_mzi() {
        // Xiao et al.: IL 6.5 dB, ER 7.5 dB at 0.6 W pump.
        let p = CircuitParams::paper_fig6(DbRatio::from_db(6.5), DbRatio::from_db(7.5));
        // d0 = 600·0.01·0.2239 = 1.3435 nm; dn = d0·0.1778 = 0.2389 nm;
        // spacing = (d0 − dn)/2 ≈ 0.552 nm.
        assert!(
            (p.wl_spacing.as_nm() - 0.552).abs() < 0.003,
            "spacing = {}",
            p.wl_spacing
        );
        p.validate().unwrap();
    }

    #[test]
    fn fig7_scales_pump_with_order_and_spacing() {
        let p2 = CircuitParams::paper_fig7(2, Nanometers::new(0.165));
        let p6 = CircuitParams::paper_fig7(6, Nanometers::new(0.165));
        assert!(p6.pump_power > p2.pump_power);
        // n=2, s=0.165: full shift 0.43 nm -> pump = 0.43/(0.01·0.3548) ≈ 121 mW.
        assert!(
            (p2.pump_power.as_mw() - 121.2).abs() < 1.0,
            "pump = {}",
            p2.pump_power
        );
        p2.validate().unwrap();
        p6.validate().unwrap();
    }

    #[test]
    fn fig7_at_1nm_matches_fig5_pump() {
        let p = CircuitParams::paper_fig7(2, Nanometers::new(1.0));
        let f5 = CircuitParams::paper_fig5();
        assert!((p.pump_power.as_mw() - f5.pump_power.as_mw()).abs() < 0.1);
        assert!((p.mzi_er.as_db() - f5.mzi_er.as_db()).abs() < 0.01);
    }

    #[test]
    fn validation_catches_bad_structures() {
        let mut p = CircuitParams::paper_fig5();
        p.order = 0;
        assert!(p.validate().is_err());
        let mut p = CircuitParams::paper_fig5();
        p.wl_spacing = Nanometers::new(0.0);
        assert!(p.validate().is_err());
        let mut p = CircuitParams::paper_fig5();
        p.lambda_ref = Nanometers::new(1549.0);
        assert!(p.validate().is_err());
        let mut p = CircuitParams::paper_fig5();
        p.pump_power = Milliwatts::new(-1.0);
        assert!(p.validate().is_err());
    }

    #[test]
    fn templates_build_devices() {
        let p = CircuitParams::paper_fig5();
        for ch in p.channels() {
            let m = p.modulator.at_channel(ch).unwrap();
            assert_eq!(m.channel(), ch);
        }
        let f = p.filter.at_reference(p.lambda_ref).unwrap();
        assert_eq!(f.lambda_ref(), p.lambda_ref);
        let d = p.detector().unwrap();
        assert!(d.responsivity() > 0.0);
    }

    #[test]
    fn with_setters() {
        let p = CircuitParams::paper_fig5()
            .with_probe_power(Milliwatts::new(0.26))
            .with_pump_power(Milliwatts::new(600.0));
        assert_eq!(p.probe_power.as_mw(), 0.26);
        assert_eq!(p.pump_power.as_mw(), 600.0);
    }
}
