//! Pool hardening against misbehaving workers: a worker that accepts
//! requests but never answers must surface as a
//! [`ShardError::Timeout`] value within the configured deadline, and
//! every child process the pool (or a one-shot coordinator) spawned
//! must be killed **and reaped** when the owner goes away — including
//! when the owning thread unwinds from a panic — so a long-lived
//! service never accumulates zombies.
//!
//! The stalling worker is a tiny shell stub (`exec sleep`), so these
//! tests need no prebuilt binary; they are Unix-only like the zombie
//! semantics they pin.
#![cfg(unix)]

use osc_core::batch::shard::pool::PoolConfig;
use osc_core::batch::shard::{ShardCoordinator, ShardError, SngKind};
use osc_core::params::CircuitParams;
use osc_core::system::OpticalScSystem;
use osc_stochastic::bernstein::BernsteinPoly;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::{Duration, Instant};

fn fig5_system() -> OpticalScSystem {
    OpticalScSystem::new(
        CircuitParams::paper_fig5(),
        BernsteinPoly::new(vec![0.25, 0.625, 0.75]).unwrap(),
    )
    .unwrap()
}

/// Writes an executable stub that consumes stdin forever and never
/// writes a byte — a worker that is alive but stalled.
fn stalling_stub(tag: &str) -> PathBuf {
    use std::os::unix::fs::PermissionsExt;
    let path = std::env::temp_dir().join(format!("osc_stall_stub_{tag}_{}", std::process::id()));
    std::fs::write(&path, "#!/bin/sh\nexec sleep 3600\n").unwrap();
    std::fs::set_permissions(&path, std::fs::Permissions::from_mode(0o755)).unwrap();
    path
}

/// Whether `pid` currently exists as a zombie child of this process.
/// After a correct kill + reap the pid is gone from /proc (or, under
/// pid recycling, belongs to some other process and is not in state
/// `Z` with us as parent).
fn is_our_zombie(pid: u32) -> bool {
    let Ok(stat) = std::fs::read_to_string(format!("/proc/{pid}/stat")) else {
        return false;
    };
    // Fields after the parenthesized command name: state, ppid.
    let Some(rest) = stat.rsplit(')').next() else {
        return false;
    };
    let mut fields = rest.split_whitespace();
    let state = fields.next().unwrap_or("");
    let ppid = fields.next().unwrap_or("");
    state == "Z" && ppid == std::process::id().to_string()
}

#[test]
fn stalled_worker_times_out_as_a_value_within_the_deadline() {
    let stub = stalling_stub("timeout");
    let system = fig5_system();
    let timeout = Duration::from_millis(300);
    let mut pool = PoolConfig::new(&stub, 1)
        .with_read_timeout(timeout)
        .with_retries(1)
        .spawn()
        .unwrap();
    let started = Instant::now();
    let err = pool
        .evaluate_many(&system, SngKind::Xoshiro, &[0.5], 64, 1)
        .unwrap_err();
    let elapsed = started.elapsed();
    assert!(
        matches!(err, ShardError::Timeout { .. }),
        "expected a timeout value, got {err}"
    );
    let rendered = err.to_string();
    assert!(rendered.contains("timed out"), "{rendered}");
    // 1 retry = 2 stalled attempts plus one capped respawn backoff:
    // well under ten deadlines, never a 3600 s hang.
    assert!(
        elapsed < timeout * 10,
        "timeout took {elapsed:?} for a {timeout:?} deadline"
    );
    // The pool is still usable as a value — the next call fails the
    // same way instead of panicking or hanging forever.
    let again = pool
        .evaluate_many(&system, SngKind::Xoshiro, &[0.5], 64, 1)
        .unwrap_err();
    assert!(matches!(again, ShardError::Timeout { .. }), "{again}");
    drop(pool);
    let _ = std::fs::remove_file(&stub);
}

#[test]
fn dropping_the_pool_kills_and_reaps_stalled_workers() {
    let stub = stalling_stub("drop");
    let pool = PoolConfig::new(&stub, 3).spawn().unwrap();
    let pids = pool.worker_pids();
    assert_eq!(pids.len(), 3);
    for &pid in &pids {
        assert!(
            std::fs::metadata(format!("/proc/{pid}")).is_ok(),
            "worker {pid} should be running before the drop"
        );
    }
    drop(pool);
    for &pid in &pids {
        assert!(!is_our_zombie(pid), "worker {pid} left as a zombie");
    }
    let _ = std::fs::remove_file(&stub);
}

#[test]
fn panicking_caller_leaves_no_zombies() {
    // The regression this pins: a caller that panics mid-request used
    // to leak the worker processes as zombies (killed on drop but never
    // waited on). The unwind must run the pool's drop path, which kills
    // and reaps every child.
    let stub = stalling_stub("panic");
    let pids = Mutex::new(Vec::new());
    let result = catch_unwind(AssertUnwindSafe(|| {
        let mut pool = PoolConfig::new(&stub, 2)
            .with_read_timeout(Duration::from_millis(200))
            .with_retries(0)
            .spawn()
            .unwrap();
        *pids.lock().unwrap() = pool.worker_pids();
        let system = fig5_system();
        // The stalled worker times out; the caller treats that as fatal
        // and panics with the pool still holding live children.
        pool.evaluate_many(&system, SngKind::Xoshiro, &[0.5], 64, 1)
            .unwrap();
        unreachable!("the stalled pool cannot produce runs");
    }));
    assert!(result.is_err(), "the caller must have panicked");
    let pids = pids.into_inner().unwrap();
    assert_eq!(pids.len(), 2);
    for pid in pids {
        assert!(!is_our_zombie(pid), "worker {pid} left as a zombie");
    }
    let _ = std::fs::remove_file(&stub);
}

#[test]
fn coordinator_error_paths_leave_no_zombies() {
    // A one-shot coordinator run against stalling workers must fail as
    // a value and reap every subprocess it spawned on the way out.
    let stub = stalling_stub("coordinator");
    let system = fig5_system();
    let coordinator = ShardCoordinator::new(&stub, 2)
        .with_retries(0)
        .with_read_timeout(Duration::from_millis(200));
    let before: Vec<u32> = our_children();
    let err = coordinator
        .evaluate_many(&system, SngKind::Xoshiro, &[0.25, 0.75], 64, 3)
        .unwrap_err();
    assert!(
        matches!(err, ShardError::Timeout { .. } | ShardError::Worker { .. }),
        "{err}"
    );
    // Every child that appeared during the run is gone (reaped), not a
    // zombie.
    for pid in our_children() {
        if !before.contains(&pid) {
            assert!(!is_our_zombie(pid), "coordinator left zombie {pid}");
        }
    }
    let _ = std::fs::remove_file(&stub);
}

#[test]
fn dispatcher_overload_rejection_is_immediate_and_a_value() {
    // One stalled worker at depth 1 with a queue cap of 1: the first
    // submit occupies the worker, the second the queue, and the third
    // must be rejected *immediately* as [`ShardError::Overloaded`] —
    // not after a deadline, and never as a hang.
    let stub = stalling_stub("overload");
    let system = fig5_system();
    let request = || {
        osc_core::batch::shard::ShardRequest::batch(
            &system,
            SngKind::Xoshiro,
            0,
            &[0.5],
            64,
            1,
            None,
        )
    };
    let dispatcher = PoolConfig::new(&stub, 1)
        .with_pipeline_depth(1)
        .with_queue_cap(1)
        .with_read_timeout(Duration::from_millis(600))
        .with_retries(0)
        .spawn_dispatcher()
        .unwrap();
    std::thread::scope(|scope| {
        let first = scope.spawn(|| dispatcher.submit(request()));
        std::thread::sleep(Duration::from_millis(100));
        let second = scope.spawn(|| dispatcher.submit(request()));
        std::thread::sleep(Duration::from_millis(100));

        let started = Instant::now();
        let rejected = dispatcher.submit(request()).unwrap_err();
        let elapsed = started.elapsed();
        assert!(
            matches!(rejected, ShardError::Overloaded { queued: 1, cap: 1 }),
            "expected an overload value, got {rejected}"
        );
        assert!(rejected.to_string().contains("overloaded"), "{rejected}");
        assert!(
            elapsed < Duration::from_millis(200),
            "overload rejection must not wait on a deadline, took {elapsed:?}"
        );

        // The two admitted requests fail as timeout values against the
        // stalled worker — admission never silently drops them.
        for admitted in [first.join().unwrap(), second.join().unwrap()] {
            let err = admitted.unwrap_err();
            assert!(matches!(err, ShardError::Timeout { .. }), "{err}");
        }
    });
    drop(dispatcher);
    let _ = std::fs::remove_file(&stub);
}

#[test]
fn dispatcher_drop_reaps_stalled_workers_promptly() {
    // Dropping an idle dispatcher joins its pump threads and reaps the
    // workers even though they never answered a byte — no zombies, no
    // hang until `sleep 3600` expires.
    let stub = stalling_stub("dispatcher_drop");
    let dispatcher = PoolConfig::new(&stub, 2).spawn_dispatcher().unwrap();
    assert_eq!(dispatcher.workers(), 2);
    assert_eq!(dispatcher.queued(), 0);
    let before = Instant::now();
    drop(dispatcher);
    assert!(
        before.elapsed() < Duration::from_secs(5),
        "dispatcher drop must not wait on stalled workers"
    );
    for pid in our_children() {
        assert!(!is_our_zombie(pid), "dispatcher left zombie {pid}");
    }
    let _ = std::fs::remove_file(&stub);
}

/// The pids of this process's current children, zombie or not.
fn our_children() -> Vec<u32> {
    let me = std::process::id().to_string();
    let Ok(entries) = std::fs::read_dir("/proc") else {
        return Vec::new();
    };
    entries
        .filter_map(|e| e.ok())
        .filter_map(|e| e.file_name().to_str()?.parse::<u32>().ok())
        .filter(|pid| {
            std::fs::read_to_string(format!("/proc/{pid}/stat"))
                .ok()
                .and_then(|stat| {
                    let rest = stat.rsplit(')').next()?;
                    let mut fields = rest.split_whitespace();
                    let _state = fields.next()?;
                    Some(fields.next()? == me)
                })
                .unwrap_or(false)
        })
        .collect()
}
