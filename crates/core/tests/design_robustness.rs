//! Determinism and error-value robustness of the design-support
//! modules a sweep leans on: `calibration` (the Nelder–Mead device
//! fit) and `reconfig` (the shared-plan multi-order circuit). Repeated
//! solves must be bit-identical — these run host-side inside every
//! sweep, so any drift would break the cross-mode frontier byte
//! contract — and infeasible inputs must come back as `Err` values,
//! never panics.

use osc_core::calibration::{self, Fig5Targets};
use osc_core::energy::EnergyAssumptions;
use osc_core::params::{CircuitParams, FilterTemplate, ModulatorTemplate};
use osc_core::reconfig::ReconfigurableCircuit;
use osc_core::CircuitError;
use osc_units::Nanometers;

#[test]
fn calibration_fit_is_bit_identical_across_repeated_solves() {
    let run = || {
        calibration::fit(
            ModulatorTemplate::calibrated(),
            FilterTemplate::calibrated(),
            &Fig5Targets::paper(),
        )
        .expect("calibrated start converges")
    };
    let a = run();
    let b = run();
    assert_eq!(a.residual.to_bits(), b.residual.to_bits());
    assert_eq!(a.modulator.r1.to_bits(), b.modulator.r1.to_bits());
    assert_eq!(a.modulator.r2.to_bits(), b.modulator.r2.to_bits());
    assert_eq!(
        a.modulator.delta_lambda.as_nm().to_bits(),
        b.modulator.delta_lambda.as_nm().to_bits()
    );
    assert_eq!(a.filter.r1.to_bits(), b.filter.r1.to_bits());
    assert_eq!(a.filter.a.to_bits(), b.filter.a.to_bits());
    assert_eq!(
        a.predictions.received_case_a_mw.to_bits(),
        b.predictions.received_case_a_mw.to_bits()
    );
}

#[test]
fn calibration_fit_from_a_nonphysical_box_errors_instead_of_panicking() {
    // Every coupling coefficient the optimizer can reach from this
    // start sits outside the physical box (r < 0.5), so the objective
    // is +inf everywhere and the fit must come back as a clean
    // Infeasible value.
    let mut bad_mod = ModulatorTemplate::calibrated();
    bad_mod.r1 = 0.05;
    bad_mod.r2 = 0.05;
    let mut bad_filt = FilterTemplate::calibrated();
    bad_filt.r1 = 0.05;
    bad_filt.r2 = 0.05;
    bad_filt.a = 0.05;
    let result = calibration::fit(bad_mod, bad_filt, &Fig5Targets::paper());
    assert!(
        matches!(result, Err(CircuitError::Infeasible(_))),
        "{result:?}"
    );
}

#[test]
fn calibration_predict_propagates_construction_failures_as_values() {
    // A degenerate wavelength plan (zero spacing collapses all
    // channels) must surface as an Err from predict, not a panic.
    let mut params = CircuitParams::paper_fig5();
    params.wl_spacing = Nanometers::new(0.0);
    params.lambda_last = params.lambda_ref;
    assert!(calibration::predict(&params).is_err());
}

#[test]
fn reconfig_provision_is_deterministic_across_repeated_solves() {
    // provision() runs a grid + golden-section search over the energy
    // model; repeated solves must land on the bit-same shared spacing,
    // and the derived per-order parameter sets must agree exactly.
    let a = ReconfigurableCircuit::provision(4, EnergyAssumptions::default()).unwrap();
    let b = ReconfigurableCircuit::provision(4, EnergyAssumptions::default()).unwrap();
    assert_eq!(
        a.shared_spacing().as_nm().to_bits(),
        b.shared_spacing().as_nm().to_bits()
    );
    for order in 1..=4 {
        let pa = a.params_for_order(order).unwrap();
        let pb = b.params_for_order(order).unwrap();
        assert_eq!(pa, pb, "order {order}");
    }
}

#[test]
fn reconfig_rejects_infeasible_inputs_as_values() {
    // Order 0 cannot be provisioned.
    assert!(matches!(
        ReconfigurableCircuit::provision(0, EnergyAssumptions::default()),
        Err(CircuitError::InvalidStructure(_))
    ));

    // Orders outside the provisioned range are clean errors.
    let circuit = ReconfigurableCircuit::provision(3, EnergyAssumptions::default()).unwrap();
    assert!(matches!(
        circuit.params_for_order(0),
        Err(CircuitError::InvalidStructure(_))
    ));
    assert!(matches!(
        circuit.params_for_order(4),
        Err(CircuitError::InvalidStructure(_))
    ));

    // BER 0 is unreachable by any finite SNR: every candidate spacing
    // errors inside the energy model, so the provision itself must come
    // back as an error value — historically this panicked inside the
    // detector's inverse-BER assert.
    let impossible = EnergyAssumptions {
        target_ber: 0.0,
        ..EnergyAssumptions::default()
    };
    let result = ReconfigurableCircuit::provision(2, impossible);
    assert!(
        matches!(result, Err(CircuitError::Infeasible(_))),
        "{result:?}"
    );
}
