//! The backend contract: every [`ScBackend`] must enjoy the exact same
//! determinism guarantees the MRR/MZI path pinned before the trait
//! existed. One generic harness sweeps each property over **every**
//! shipped backend ([`BackendKind::ALL`]), in clean and
//! noisy receiver regimes:
//!
//! - forced-scalar dispatch ≡ the machine's detected SIMD tier,
//!   word for word, on the lane-blocked kernel;
//! - a present-but-inert fault spec (rate 0) ≡ the clean path,
//!   bit for bit;
//! - any shard partition through the wire-protocol worker loop,
//!   merged in index order, ≡ the single-process batch;
//! - the lane-blocked kernel ≡ standalone per-lane fused runs.
//!
//! A backend that passes this file plugs into the fused, lane-blocked,
//! faulted, batched, sharded, pooled and service paths with no further
//! proof obligations — the system's kernels never ask *which* physics
//! built the tables.

use osc_core::backend::BackendKind;
use osc_core::batch::shard::{
    decode_response, encode_request, read_frame, serve, write_frame, ShardJob, ShardPlan,
    ShardRequest, ShardResponse, SngKind,
};
use osc_core::batch::BatchEvaluator;
use osc_core::fault::FaultSpec;
use osc_core::params::CircuitParams;
use osc_core::system::{EvalScratch, OpticalRun, OpticalScSystem};
use osc_math::rng::Xoshiro256PlusPlus;
use osc_stochastic::bernstein::BernsteinPoly;
use osc_stochastic::simd::{self, SimdTier};
use osc_stochastic::sng::XoshiroSng;
use osc_units::Milliwatts;

fn poly2() -> BernsteinPoly {
    BernsteinPoly::new(vec![0.25, 0.625, 0.75]).unwrap()
}

/// Clean and starved-probe systems for one backend. Both backends are
/// deterministic-decision at the paper's probe power and forced onto
/// the uniform-draw tier by the starved probe, so the sweep covers the
/// fast and the randomness-consuming kernel tiers per backend.
fn systems_for(kind: BackendKind) -> Vec<(String, OpticalScSystem)> {
    let params = CircuitParams::paper_fig5().with_backend(kind);
    let clean = OpticalScSystem::new(params, poly2()).unwrap();
    let noisy =
        OpticalScSystem::new(params.with_probe_power(Milliwatts::new(0.05)), poly2()).unwrap();
    assert!(
        !noisy.has_deterministic_decisions(),
        "{kind}: starved probes should need draws"
    );
    vec![
        (format!("{kind}/clean"), clean),
        (format!("{kind}/noisy"), noisy),
    ]
}

/// Runs one 4-lane blocked evaluation under a forced dispatch tier.
fn run_lanes_under_tier(system: &OpticalScSystem, tier: SimdTier, len: usize) -> [OpticalRun; 4] {
    simd::set_tier_override(Some(tier));
    let xs: [f64; 4] = std::array::from_fn(|l| (l as f64 * 0.171 + 0.13) % 1.0);
    let mut sngs: [XoshiroSng; 4] = std::array::from_fn(|l| XoshiroSng::new(41 + l as u64));
    let mut rngs: [Xoshiro256PlusPlus; 4] =
        std::array::from_fn(|l| Xoshiro256PlusPlus::new(977 + l as u64));
    let mut scratch = EvalScratch::new();
    let runs = system
        .evaluate_fused_lanes(&xs, len, &mut sngs, &mut rngs, &mut scratch)
        .unwrap();
    simd::set_tier_override(None);
    runs
}

#[test]
fn forced_scalar_equals_detected_simd_for_every_backend() {
    for kind in BackendKind::ALL {
        for (label, system) in systems_for(kind) {
            for &len in &[257usize, 4097] {
                assert_eq!(
                    run_lanes_under_tier(&system, SimdTier::Scalar, len),
                    run_lanes_under_tier(&system, simd::detected_tier(), len),
                    "{label}, len {len}"
                );
            }
        }
    }
}

#[test]
fn rate_zero_fault_equals_clean_for_every_backend() {
    // A present-but-inert spec must be unobservable — including the
    // post-run SNG/RNG states, hence the second back-to-back run.
    let inert = FaultSpec::with_seed(0xBEEF);
    assert!(!inert.is_active());
    for kind in BackendKind::ALL {
        for (label, system) in systems_for(kind) {
            for &len in &[100usize, 1027] {
                let mut clean_sng = XoshiroSng::new(5);
                let mut clean_rng = Xoshiro256PlusPlus::new(17);
                let mut faulted_sng = XoshiroSng::new(5);
                let mut faulted_rng = Xoshiro256PlusPlus::new(17);
                let mut scratch = EvalScratch::new();
                for pass in 0..2 {
                    let clean = system
                        .evaluate_fused(0.37, len, &mut clean_sng, &mut clean_rng, &mut scratch)
                        .unwrap();
                    let faulted = system
                        .evaluate_fused_faulted(
                            0.37,
                            len,
                            &mut faulted_sng,
                            &mut faulted_rng,
                            Some(&inert),
                            &mut scratch,
                        )
                        .unwrap();
                    assert_eq!(clean, faulted, "{label}, len {len}, pass {pass}");
                }
            }
        }
    }
}

#[test]
fn sharded_equals_unsharded_for_every_backend() {
    // Every partition of a 13-item batch through the in-memory worker
    // loop must merge to the single-process batch — the wire protocol
    // round-trips the backend tag, the worker rebuilds the same
    // physics, and the shard math is backend-blind.
    let n = 13usize;
    let xs: Vec<f64> = (0..n).map(|i| i as f64 / (n - 1) as f64).collect();
    let stream_length = 200usize;
    let seed = 0xBACC;
    for kind in BackendKind::ALL {
        for (label, system) in systems_for(kind) {
            let reference = BatchEvaluator::with_threads(2)
                .evaluate_many(&system, &xs, stream_length, XoshiroSng::new, seed)
                .unwrap();
            for shards in [1usize, 2, 5] {
                let plan = ShardPlan::new(n, shards);
                let mut merged = Vec::with_capacity(n);
                for &(start, len) in plan.ranges() {
                    let req = ShardRequest {
                        params: *system.params(),
                        coeffs: system.polynomial().coeffs().to_vec(),
                        sng: SngKind::Xoshiro,
                        seed,
                        stream_length: stream_length as u64,
                        faults: None,
                        job: ShardJob::Batch {
                            first_index: start as u64,
                            xs: xs[start..start + len].to_vec(),
                        },
                    };
                    let mut input = Vec::new();
                    write_frame(&mut input, &encode_request(&req)).unwrap();
                    let mut output = Vec::new();
                    serve(&input[..], &mut output).unwrap();
                    let payload = read_frame(&mut &output[..]).unwrap().expect("one response");
                    match decode_response(&payload).unwrap() {
                        ShardResponse::Runs(runs) => merged.extend(runs),
                        ShardResponse::Error(msg) => panic!("{label}: worker error: {msg}"),
                    }
                }
                assert_eq!(merged, reference, "{label}, shards={shards}");
            }
        }
    }
}

#[test]
fn lane_blocked_equals_per_lane_for_every_backend() {
    for kind in BackendKind::ALL {
        for (label, system) in systems_for(kind) {
            let xs: [f64; 4] = std::array::from_fn(|l| (l as f64 * 0.119 + 0.23) % 1.0);
            let len = 301usize;
            let mut blocked_sngs: [XoshiroSng; 4] =
                std::array::from_fn(|l| XoshiroSng::new(7 + l as u64));
            let mut blocked_rngs: [Xoshiro256PlusPlus; 4] =
                std::array::from_fn(|l| Xoshiro256PlusPlus::new(23 + l as u64));
            let mut scratch = EvalScratch::new();
            let blocked = system
                .evaluate_fused_lanes(&xs, len, &mut blocked_sngs, &mut blocked_rngs, &mut scratch)
                .unwrap();
            for (l, blocked_run) in blocked.iter().enumerate() {
                let mut sng = XoshiroSng::new(7 + l as u64);
                let mut rng = Xoshiro256PlusPlus::new(23 + l as u64);
                let standalone = system
                    .evaluate_fused(xs[l], len, &mut sng, &mut rng, &mut scratch)
                    .unwrap();
                assert_eq!(*blocked_run, standalone, "{label}, lane {l}");
            }
        }
    }
}
