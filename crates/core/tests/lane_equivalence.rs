//! Lane-blocked kernel equivalence: the `[u64; L]` register-group
//! pipeline must be unobservable.
//!
//! [`OpticalScSystem::evaluate_fused_lanes`] runs `L` evaluations in
//! lock-step; every lane must return **exactly** the [`OpticalRun`] a
//! standalone [`OpticalScSystem::evaluate_fused`] produces from the same
//! starting SNG/RNG states — and leave those generators in the same
//! final states. The sweeps cover all four stochastic number generators,
//! L ∈ {1, 2, 4, 8}, odd/ragged/word-aligned lengths, the noisy decision
//! tiers, the GF(2)-jump paired generation path (lengths past the pair
//! cutoff), and the [`ParallelOpticalSc`] bank that rides on the kernel.
//! A separate sweep pins the forced-scalar SIMD dispatch against the
//! machine-detected tier word-for-word.

use osc_core::batch::mix_seed;
use osc_core::parallel::ParallelOpticalSc;
use osc_core::params::CircuitParams;
use osc_core::system::{EvalScratch, OpticalScSystem};
use osc_math::rng::Xoshiro256PlusPlus;
use osc_stochastic::bernstein::BernsteinPoly;
use osc_stochastic::simd::{self, SimdTier};
use osc_stochastic::sng::{
    ChaoticLaserSng, CounterSng, LfsrSng, StochasticNumberGenerator, XoshiroSng,
};
use osc_units::Milliwatts;

fn poly2() -> BernsteinPoly {
    BernsteinPoly::new(vec![0.25, 0.625, 0.75]).expect("coefficients in range")
}

/// The paper's Fig. 5 circuit — mux-exact (tier-1 kernel).
fn clean_system() -> OpticalScSystem {
    OpticalScSystem::new(CircuitParams::paper_fig5(), poly2()).expect("fig5 builds")
}

/// Starved probes — folded probabilities strictly inside (0, 1), so the
/// uniform-draw tier (and per-lane RNG consumption order) is exercised.
fn noisy_system() -> OpticalScSystem {
    let params = CircuitParams::paper_fig5().with_probe_power(Milliwatts::new(0.05));
    OpticalScSystem::new(params, poly2()).expect("noisy fig5 builds")
}

/// Runs one lane-blocked evaluation and asserts every lane equal to its
/// standalone fused run — twice in a row, so diverging post-run SNG/RNG
/// states would also be caught.
fn assert_lanes_match_per_lane<const L: usize, S, F>(
    system: &OpticalScSystem,
    make_sng: F,
    len: usize,
    tag: &str,
) where
    S: StochasticNumberGenerator,
    F: Fn(usize) -> S,
{
    let xs: [f64; L] = std::array::from_fn(|l| (l as f64 * 0.119 + 0.23) % 1.0);
    let mut blocked_sngs: [S; L] = std::array::from_fn(&make_sng);
    let mut blocked_rngs: [Xoshiro256PlusPlus; L] =
        std::array::from_fn(|l| Xoshiro256PlusPlus::new(0xAB5EED ^ (l as u64) << 8 ^ len as u64));
    let mut block_scratch = EvalScratch::new();
    let mut lane_scratch = EvalScratch::new();
    for round in 0..2 {
        let blocked = system
            .evaluate_fused_lanes(
                &xs,
                len,
                &mut blocked_sngs,
                &mut blocked_rngs,
                &mut block_scratch,
            )
            .unwrap();
        for l in 0..L {
            // Replay lane l standalone from the same starting states by
            // re-deriving them and fast-forwarding `round` runs.
            let mut sng = make_sng(l);
            let mut rng = Xoshiro256PlusPlus::new(0xAB5EED ^ (l as u64) << 8 ^ len as u64);
            let mut want = system
                .evaluate_fused(xs[l], len, &mut sng, &mut rng, &mut lane_scratch)
                .unwrap();
            for _ in 0..round {
                want = system
                    .evaluate_fused(xs[l], len, &mut sng, &mut rng, &mut lane_scratch)
                    .unwrap();
            }
            assert_eq!(blocked[l], want, "{tag}: L={L}, lane {l}, round {round}");
        }
    }
}

/// One full sweep over the four SNGs at a given width and length.
fn sweep_all_sngs<const L: usize>(system: &OpticalScSystem, len: usize, tag: &str) {
    let seed = (L * 1009 + len) as u64;
    assert_lanes_match_per_lane::<L, _, _>(
        system,
        |l| XoshiroSng::new(seed + 31 * l as u64),
        len,
        &format!("{tag} xoshiro"),
    );
    assert_lanes_match_per_lane::<L, _, _>(
        system,
        |l| ChaoticLaserSng::seeded(seed + 17 * l as u64),
        len,
        &format!("{tag} chaotic"),
    );
    assert_lanes_match_per_lane::<L, _, _>(
        system,
        |l| LfsrSng::new(16, 0xACE1 ^ (seed as u32 + 7 * l as u32)).unwrap(),
        len,
        &format!("{tag} lfsr"),
    );
    assert_lanes_match_per_lane::<L, _, _>(
        system,
        |l| {
            // Stagger each lane's Halton position so lanes differ.
            let mut sng = CounterSng::new();
            for _ in 0..l {
                let _ = sng.generate(0.5, 4);
            }
            sng
        },
        len,
        &format!("{tag} counter"),
    );
}

/// Odd, ragged and word-aligned lengths named by the satellite criteria.
const LENGTHS: [usize; 5] = [63, 64, 65, 257, 1001];

#[test]
fn lane_blocked_equals_per_lane_fused_clean() {
    let system = clean_system();
    for &len in &LENGTHS {
        sweep_all_sngs::<1>(&system, len, "clean");
        sweep_all_sngs::<2>(&system, len, "clean");
        sweep_all_sngs::<4>(&system, len, "clean");
        sweep_all_sngs::<8>(&system, len, "clean");
    }
}

#[test]
fn lane_blocked_equals_per_lane_fused_noisy() {
    let system = noisy_system();
    assert!(!system.has_deterministic_decisions());
    for &len in &[63usize, 257, 1001] {
        sweep_all_sngs::<2>(&system, len, "noisy");
        sweep_all_sngs::<8>(&system, len, "noisy");
    }
}

#[test]
fn lane_blocked_equals_per_lane_on_paired_lengths() {
    // Past the pair cutoff the kernel draws 2L GF(2)-jumped chains per
    // stream pair; identity must survive, clean and noisy.
    for (tag, system) in [("clean", clean_system()), ("noisy", noisy_system())] {
        for &len in &[8192usize, 8257] {
            sweep_all_sngs::<4>(&system, len, tag);
            sweep_all_sngs::<8>(&system, len, tag);
        }
    }
}

/// Runs one 8-lane blocked evaluation under a forced dispatch tier.
fn run_lanes_under_tier<S: StochasticNumberGenerator>(
    system: &OpticalScSystem,
    tier: SimdTier,
    make_sng: impl Fn(usize) -> S,
    len: usize,
) -> [osc_core::system::OpticalRun; 8] {
    simd::set_tier_override(Some(tier));
    let xs: [f64; 8] = std::array::from_fn(|l| l as f64 / 8.0);
    let mut sngs: [S; 8] = std::array::from_fn(&make_sng);
    let mut rngs: [Xoshiro256PlusPlus; 8] =
        std::array::from_fn(|l| Xoshiro256PlusPlus::new(99 + l as u64));
    let mut scratch = EvalScratch::new();
    let runs = system
        .evaluate_fused_lanes(&xs, len, &mut sngs, &mut rngs, &mut scratch)
        .unwrap();
    simd::set_tier_override(None);
    runs
}

#[test]
fn forced_scalar_and_detected_simd_agree_word_for_word() {
    // The same lane-blocked workload through the forced-scalar dispatch
    // and through the machine's detected tier must produce identical
    // runs — for every SNG engine family, clean and noisy, at a length
    // past the pair cutoff so the paired-generation path is covered too.
    // (The CI dispatch matrix pins the same property across processes
    // via OSC_SIMD; this test pins it in-process via the API switch.
    // Safe under parallel tests: every tier is bit-identical by
    // contract, so racing tests only vary which implementation runs.
    // Note the scalar tier also degrades the L = 8 block to sequential
    // per-lane runs, so this doubles as the degradation-identity check.)
    for (tag, system) in [("clean", clean_system()), ("noisy", noisy_system())] {
        for &len in &[257usize, 4097] {
            for tier in [SimdTier::Avx2, simd::detected_tier()] {
                let seed = len as u64;
                assert_eq!(
                    run_lanes_under_tier(
                        &system,
                        SimdTier::Scalar,
                        |l| XoshiroSng::new(seed + l as u64),
                        len
                    ),
                    run_lanes_under_tier(&system, tier, |l| XoshiroSng::new(seed + l as u64), len),
                    "{tag} xoshiro, len {len}, {tier:?}"
                );
                assert_eq!(
                    run_lanes_under_tier(
                        &system,
                        SimdTier::Scalar,
                        |l| ChaoticLaserSng::seeded(seed + l as u64),
                        len
                    ),
                    run_lanes_under_tier(
                        &system,
                        tier,
                        |l| ChaoticLaserSng::seeded(seed + l as u64),
                        len
                    ),
                    "{tag} chaotic, len {len}, {tier:?}"
                );
                assert_eq!(
                    run_lanes_under_tier(
                        &system,
                        SimdTier::Scalar,
                        |l| LfsrSng::new(16, 0xACE1 + l as u32).unwrap(),
                        len
                    ),
                    run_lanes_under_tier(
                        &system,
                        tier,
                        |l| LfsrSng::new(16, 0xACE1 + l as u32).unwrap(),
                        len
                    ),
                    "{tag} lfsr, len {len}, {tier:?}"
                );
                // Fresh counters: every stream set starts on Halton
                // base 2, the vectorized bit-reversal engine's shape.
                assert_eq!(
                    run_lanes_under_tier(&system, SimdTier::Scalar, |_| CounterSng::new(), len),
                    run_lanes_under_tier(&system, tier, |_| CounterSng::new(), len),
                    "{tag} counter, len {len}, {tier:?}"
                );
            }
        }
    }
    // And the raw dispatch primitives agree on every tier for this
    // machine (clamping makes unsupported requests safe).
    let words: Vec<u64> = (0..64u64 * 8)
        .map(|i| i.wrapping_mul(0x9E37_79B9))
        .collect();
    let mut want = [0u64; 8];
    simd::popcount_lanes_accumulate_with(SimdTier::Scalar, &words, &mut want);
    for tier in [SimdTier::Avx2, SimdTier::Avx512] {
        let mut got = [0u64; 8];
        simd::popcount_lanes_accumulate_with(tier, &words, &mut got);
        assert_eq!(got, want, "{tier:?}");
    }
}

#[test]
fn parallel_bank_rides_on_lane_blocks_bit_identically() {
    // The satellite acceptance: ParallelOpticalSc lane-blocked results
    // bit-identical to per-lane evaluate_fused under the bank's seed
    // derivation, across SNGs and lane counts.
    for lanes in [2usize, 7, 8] {
        let bank = ParallelOpticalSc::new(CircuitParams::paper_fig5(), poly2(), lanes).unwrap();
        let total = 8usize * 1001;
        let per_lane = total.div_ceil(lanes);
        let got = bank.evaluate(0.6, total, XoshiroSng::new, 5).unwrap();
        let mut scratch = EvalScratch::new();
        let mut ones_weighted = 0.0;
        for i in 0..lanes {
            let lane_seed = mix_seed(5, i as u64);
            let mut sng = XoshiroSng::new(lane_seed);
            let mut rng = Xoshiro256PlusPlus::new(mix_seed(lane_seed, 0x0A11_D1CE));
            let run = bank
                .lane(i)
                .unwrap()
                .evaluate_fused(0.6, per_lane, &mut sng, &mut rng, &mut scratch)
                .unwrap();
            ones_weighted += run.estimate * per_lane as f64;
        }
        assert_eq!(
            got.estimate,
            ones_weighted / (per_lane * lanes) as f64,
            "lanes={lanes}"
        );
    }
}
