//! Protocol robustness: hostile or corrupted wire input must surface as
//! **values** — error responses from a still-alive worker where the
//! stream can be resynchronized, clean `io::Error`s (never panics,
//! hangs or unbounded allocations) where it cannot. The
//! coordinator/pool side of the same contract — dead and garbage-
//! speaking workers becoming [`osc_core::batch::shard::ShardError`]
//! values after retries — is pinned with real subprocesses in the
//! `osc-bench` suites.

use osc_core::batch::shard::{
    decode_request, decode_request_v2, decode_response, decode_response_v2, encode_request,
    encode_request_v2, encode_response, encode_response_v2, read_frame, serve, write_frame,
    ShardJob, ShardRequest, ShardResponse, ShardResponseV2, SngKind, MAX_FRAME_BYTES,
    PROTOCOL_VERSION, PROTOCOL_VERSION_V2, PROTOCOL_VERSION_V3,
};
use osc_core::params::CircuitParams;
use osc_core::system::OpticalRun;

fn small_request() -> ShardRequest {
    ShardRequest {
        params: CircuitParams::paper_fig5(),
        coeffs: vec![0.25, 0.625, 0.75],
        sng: SngKind::Xoshiro,
        seed: 3,
        stream_length: 64,
        faults: None,
        job: ShardJob::Batch {
            first_index: 0,
            xs: vec![0.5],
        },
    }
}

/// Collects every response frame a worker loop produces for `input`,
/// plus whether the loop exited cleanly (EOF) or with a transport
/// error.
fn serve_raw(input: &[u8]) -> (Vec<Vec<u8>>, std::io::Result<()>) {
    let mut output = Vec::new();
    let outcome = serve(input, &mut output);
    let mut responses = Vec::new();
    let mut reader = &output[..];
    while let Ok(Some(payload)) = read_frame(&mut reader) {
        responses.push(payload);
    }
    (responses, outcome)
}

#[test]
fn truncated_frames_error_cleanly_after_answering_what_arrived() {
    // A complete request followed by a frame cut off mid-payload: the
    // worker answers the first and reports a transport error for the
    // torso — no panic, no hang, no half-written response.
    let mut input = Vec::new();
    write_frame(&mut input, &encode_request(&small_request())).unwrap();
    let cut_at = input.len() + 12; // 8-byte prefix + 4 payload bytes
    write_frame(&mut input, &encode_request(&small_request())).unwrap();
    let (responses, outcome) = serve_raw(&input[..cut_at]);
    assert_eq!(responses.len(), 1, "the complete request was answered");
    assert!(matches!(
        decode_response(&responses[0]).unwrap(),
        ShardResponse::Runs(_)
    ));
    let err = outcome.unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof, "{err}");
    // EOF mid-prefix is the same clean error.
    let (responses, outcome) = serve_raw(&input[..3]);
    assert!(responses.is_empty());
    assert_eq!(
        outcome.unwrap_err().kind(),
        std::io::ErrorKind::UnexpectedEof
    );
}

#[test]
fn oversized_length_prefixes_are_rejected_before_allocation() {
    for hostile_len in [MAX_FRAME_BYTES + 1, u64::MAX, 1 << 60] {
        let mut input = hostile_len.to_le_bytes().to_vec();
        input.extend_from_slice(b"whatever follows");
        let err = read_frame(&mut &input[..]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "{hostile_len}");
        assert!(err.to_string().contains("exceeds"), "{err}");
        // The worker loop surfaces the same clean error.
        let (responses, outcome) = serve_raw(&input);
        assert!(responses.is_empty());
        assert_eq!(
            outcome.unwrap_err().kind(),
            std::io::ErrorKind::InvalidData,
            "{hostile_len}"
        );
    }
    // Exactly at the cap the prefix itself is fine (the payload is then
    // simply truncated input → UnexpectedEof, not InvalidData).
    let input = MAX_FRAME_BYTES.to_le_bytes().to_vec();
    let err = read_frame(&mut &input[..]).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
}

#[test]
fn unknown_tags_are_error_values_and_the_worker_stays_alive() {
    let good_v1 = encode_request(&small_request());
    let good_v2 = encode_request_v2(&small_request(), 44, None);

    // v1 job-kind byte is at offset 8; SNG kind at 9.
    let mut bad_job = good_v1.clone();
    bad_job[8] = 9;
    let mut bad_sng = good_v1.clone();
    bad_sng[9] = 77;
    // v2 circuit-kind byte is at offset 16, job kind 17, SNG 18.
    let mut bad_circuit = good_v2.clone();
    bad_circuit[16] = 5;
    let mut bad_job_v2 = good_v2.clone();
    bad_job_v2[17] = 9;

    let mut input = Vec::new();
    for frame in [
        &bad_job,
        &bad_sng,
        &bad_circuit,
        &bad_job_v2,
        &good_v1,
        &good_v2,
    ] {
        write_frame(&mut input, frame).unwrap();
    }
    let (responses, outcome) = serve_raw(&input);
    outcome.unwrap();
    assert_eq!(responses.len(), 6, "every frame answered, worker alive");
    for (i, expected) in ["job kind", "SNG kind", "circuit kind", "job kind"]
        .iter()
        .enumerate()
    {
        match decode_response(&responses[i]) {
            Ok(ShardResponse::Error(msg)) => {
                assert!(
                    msg.contains("unknown"),
                    "frame {i}: {msg} (want {expected})"
                )
            }
            other => {
                // v2 frames get v2 error responses.
                match decode_response_v2(&responses[i]) {
                    Ok(ShardResponseV2::Error { message, .. }) => {
                        assert!(message.contains("unknown"), "frame {i}: {message}")
                    }
                    _ => panic!("frame {i}: expected an error value, got {other:?}"),
                }
            }
        }
    }
    // The trailing good requests still evaluate.
    assert!(matches!(
        decode_response(&responses[4]).unwrap(),
        ShardResponse::Runs(_)
    ));
    assert!(matches!(
        decode_response_v2(&responses[5]).unwrap(),
        ShardResponseV2::Runs { request_id: 44, .. }
    ));
}

#[test]
fn version_mismatch_is_answered_and_the_worker_stays_alive() {
    // A frame claiming protocol version 4 — one past every version
    // this build speaks (v3 is the fault-carrying request format): the
    // worker answers a clean error naming the version problem and
    // keeps serving.
    let mut future = encode_request(&small_request());
    future[4..8].copy_from_slice(&4u32.to_le_bytes());
    let mut input = Vec::new();
    write_frame(&mut input, &future).unwrap();
    write_frame(&mut input, &encode_request(&small_request())).unwrap();
    let (responses, outcome) = serve_raw(&input);
    outcome.unwrap();
    assert_eq!(responses.len(), 2);
    match decode_response(&responses[0]).unwrap() {
        ShardResponse::Error(msg) => assert!(msg.contains("version"), "{msg}"),
        other => panic!("expected a version error, got {other:?}"),
    }
    assert!(matches!(
        decode_response(&responses[1]).unwrap(),
        ShardResponse::Runs(_)
    ));
    // Sanity: the version constants the mismatch is judged against —
    // the forged version above must stay one past the newest.
    assert_eq!(PROTOCOL_VERSION, 1);
    assert_eq!(PROTOCOL_VERSION_V2, 2);
    assert_eq!(PROTOCOL_VERSION_V3, 3);
}

#[test]
fn response_decoders_reject_unknown_statuses_and_cross_version_frames() {
    let run = OpticalRun {
        estimate: 0.5,
        ideal_estimate: 0.5,
        exact: 0.5,
        observed_ber: 0.0,
        stream_length: 64,
    };
    // v1 status byte is at offset 8; v2 status at 16.
    let mut v1 = encode_response(&ShardResponse::Runs(vec![run]));
    v1[8] = 9;
    assert!(decode_response(&v1).unwrap_err().contains("status"));
    let mut v2 = encode_response_v2(&ShardResponseV2::Runs {
        request_id: 1,
        runs: vec![run],
    });
    v2[16] = 9;
    assert!(decode_response_v2(&v2).unwrap_err().contains("status"));
    // Absurd declared counts are rejected before allocation.
    let mut huge = encode_response(&ShardResponse::Runs(vec![run]));
    huge[9..17].copy_from_slice(&u64::MAX.to_le_bytes());
    assert!(decode_response(&huge).is_err());
    let mut huge2 = encode_response_v2(&ShardResponseV2::Runs {
        request_id: 1,
        runs: vec![run],
    });
    huge2[17..25].copy_from_slice(&u64::MAX.to_le_bytes());
    assert!(decode_response_v2(&huge2).is_err());
}

#[test]
fn request_decoders_never_panic_on_corrupted_bytes() {
    // Flip every byte of both request encodings (one at a time) and
    // decode: any outcome is fine except a panic or a wrong-length
    // success.
    let v1 = encode_request(&small_request());
    for i in 0..v1.len() {
        let mut mutated = v1.clone();
        mutated[i] ^= 0xA5;
        let _ = decode_request(&mutated);
    }
    let v2 = encode_request_v2(&small_request(), 1, None);
    for i in 0..v2.len() {
        let mut mutated = v2.clone();
        mutated[i] ^= 0xA5;
        let _ = decode_request_v2(&mutated);
    }
    // And the worker loop answers every mutation with *some* clean
    // frame (spot-check a few offsets across the payload regions).
    for &i in &[0usize, 4, 8, 16, 40, v1.len() - 1] {
        let mut mutated = v1.clone();
        mutated[i] ^= 0xA5;
        let mut input = Vec::new();
        write_frame(&mut input, &mutated).unwrap();
        let (responses, outcome) = serve_raw(&input);
        outcome.unwrap();
        assert_eq!(responses.len(), 1, "offset {i}");
    }
}
