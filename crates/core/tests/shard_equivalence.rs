//! Shard-protocol determinism: any [`ShardPlan`] partition of a batch,
//! run through the worker loop shard by shard and merged in index
//! order, must be **byte-identical** to the single-process
//! `evaluate_many` output — for every SNG kind, in clean and noisy
//! receiver regimes, for balanced and ragged splits.
//!
//! These tests drive [`osc_core::batch::shard::serve`] over in-memory
//! pipes, so they pin the whole protocol path (encode → decode → worker
//! evaluation → encode → decode) without spawning processes; the
//! subprocess coordinator itself is exercised end to end by the
//! `osc-bench` integration suite, which owns the worker binary.

use osc_core::batch::shard::{
    circuit_digest, decode_response, decode_response_v2, encode_request, encode_request_v2,
    read_frame, serve, write_frame, ShardJob, ShardPlan, ShardRequest, ShardResponse,
    ShardResponseV2, SngKind, CIRCUIT_CACHE_CAPACITY,
};
use osc_core::batch::BatchEvaluator;
use osc_core::params::CircuitParams;
use osc_core::system::{OpticalRun, OpticalScSystem};
use osc_stochastic::bernstein::BernsteinPoly;
use osc_stochastic::sng::{ChaoticLaserSng, CounterSng, LfsrSng, XoshiroSng};
use osc_units::Milliwatts;

fn fig5_poly() -> BernsteinPoly {
    BernsteinPoly::new(vec![0.25, 0.625, 0.75]).unwrap()
}

fn clean_system() -> OpticalScSystem {
    OpticalScSystem::new(CircuitParams::paper_fig5(), fig5_poly()).unwrap()
}

/// Starved probes push the folded decision probabilities strictly inside
/// (0, 1): the uniform-draw kernel tier, whose RNG consumption order is
/// part of the determinism contract, runs on every cycle.
fn noisy_system() -> OpticalScSystem {
    let params = CircuitParams::paper_fig5().with_probe_power(Milliwatts::new(0.05));
    let system = OpticalScSystem::new(params, fig5_poly()).unwrap();
    assert!(
        !system.has_deterministic_decisions(),
        "noisy config should need draws"
    );
    system
}

/// Runs one request through the in-memory worker loop.
fn serve_one(req: &ShardRequest) -> Vec<OpticalRun> {
    let mut input = Vec::new();
    write_frame(&mut input, &encode_request(req)).unwrap();
    let mut output = Vec::new();
    serve(&input[..], &mut output).unwrap();
    let payload = read_frame(&mut &output[..]).unwrap().expect("one response");
    match decode_response(&payload).unwrap() {
        ShardResponse::Runs(runs) => runs,
        ShardResponse::Error(msg) => panic!("worker error: {msg}"),
    }
}

/// The single-process reference with the factory the wire protocol pins
/// for each SNG kind.
fn reference_runs(
    system: &OpticalScSystem,
    kind: SngKind,
    xs: &[f64],
    stream_length: usize,
    seed: u64,
) -> Vec<OpticalRun> {
    let ev = BatchEvaluator::with_threads(2);
    match kind {
        SngKind::Lfsr => ev.evaluate_many(
            system,
            xs,
            stream_length,
            |s| LfsrSng::new(16, s as u32).unwrap(),
            seed,
        ),
        SngKind::Counter => {
            ev.evaluate_many(system, xs, stream_length, |_| CounterSng::new(), seed)
        }
        SngKind::Xoshiro => ev.evaluate_many(system, xs, stream_length, XoshiroSng::new, seed),
        SngKind::Chaotic => {
            ev.evaluate_many(system, xs, stream_length, ChaoticLaserSng::seeded, seed)
        }
    }
    .unwrap()
}

#[test]
fn any_partition_merges_to_the_single_process_batch() {
    // 23 items: every shard count in {1, 2, 3, 7} splits it raggedly
    // except 1, and 23 > 2 lane blocks so blocks straddle shard cuts.
    let n = 23usize;
    let xs: Vec<f64> = (0..n).map(|i| i as f64 / (n - 1) as f64).collect();
    let stream_length = 200usize;
    for (label, system) in [("clean", clean_system()), ("noisy", noisy_system())] {
        for kind in SngKind::ALL {
            let seed = 0xD1CE ^ kind.name().len() as u64;
            let reference = reference_runs(&system, kind, &xs, stream_length, seed);
            for shards in [1usize, 2, 3, 7, n, n + 5] {
                let plan = ShardPlan::new(n, shards);
                let mut merged = Vec::with_capacity(n);
                for &(start, len) in plan.ranges() {
                    let req = ShardRequest {
                        params: *system.params(),
                        coeffs: system.polynomial().coeffs().to_vec(),
                        sng: kind,
                        seed,
                        stream_length: stream_length as u64,
                        faults: None,
                        job: ShardJob::Batch {
                            first_index: start as u64,
                            xs: xs[start..start + len].to_vec(),
                        },
                    };
                    merged.extend(serve_one(&req));
                }
                assert_eq!(merged, reference, "{label} {} shards={shards}", kind.name());
            }
        }
    }
}

/// Runs a sequence of raw frame payloads through one worker loop and
/// returns the raw response payloads — the cache persists across the
/// whole sequence, exactly as it does in a pooled worker process.
fn serve_frames(payloads: &[Vec<u8>]) -> Vec<Vec<u8>> {
    let mut input = Vec::new();
    for payload in payloads {
        write_frame(&mut input, payload).unwrap();
    }
    let mut output = Vec::new();
    serve(&input[..], &mut output).unwrap();
    let mut responses = Vec::new();
    let mut reader = &output[..];
    while let Some(payload) = read_frame(&mut reader).unwrap() {
        responses.push(payload);
    }
    assert_eq!(responses.len(), payloads.len(), "one response per request");
    responses
}

fn v2_runs(payload: &[u8]) -> (u64, Vec<OpticalRun>) {
    match decode_response_v2(payload).unwrap() {
        ShardResponseV2::Runs { request_id, runs } => (request_id, runs),
        other => panic!("expected runs, got {other:?}"),
    }
}

#[test]
fn v2_requests_match_v1_and_the_single_process_reference() {
    // The same request through the v1 frame, the v2 inline frame and
    // the v2 cached-reference frame must produce identical runs — and
    // all of them the single-process reference bytes.
    let system = clean_system();
    let xs: Vec<f64> = (0..9).map(|i| i as f64 / 8.0).collect();
    let reference = reference_runs(&system, SngKind::Xoshiro, &xs, 160, 21);
    let req = ShardRequest {
        params: *system.params(),
        coeffs: system.polynomial().coeffs().to_vec(),
        sng: SngKind::Xoshiro,
        seed: 21,
        stream_length: 160,
        faults: None,
        job: ShardJob::Batch {
            first_index: 0,
            xs: xs.clone(),
        },
    };
    let digest = circuit_digest(&req.params, &req.coeffs);
    let responses = serve_frames(&[
        encode_request(&req),                       // v1
        encode_request_v2(&req, 101, None),         // v2 inline (caches the circuit)
        encode_request_v2(&req, 102, Some(digest)), // v2 cached reference (hit)
    ]);
    let v1 = match decode_response(&responses[0]).unwrap() {
        ShardResponse::Runs(runs) => runs,
        ShardResponse::Error(msg) => panic!("v1 worker error: {msg}"),
    };
    let (id_inline, inline) = v2_runs(&responses[1]);
    let (id_cached, cached) = v2_runs(&responses[2]);
    assert_eq!(id_inline, 101);
    assert_eq!(id_cached, 102);
    assert_eq!(v1, reference, "v1 ≡ single-process");
    assert_eq!(inline, reference, "v2 inline ≡ single-process");
    assert_eq!(cached, reference, "v2 cache hit ≡ single-process");
}

#[test]
fn interleaved_request_ids_echo_in_arrival_order() {
    // One worker serving several outstanding requests: each response
    // carries its request's ID, so a pool can match them up even though
    // the IDs arrive out of numeric order.
    let system = clean_system();
    let mk = |id: u64, seed: u64| {
        let req = ShardRequest {
            params: *system.params(),
            coeffs: system.polynomial().coeffs().to_vec(),
            sng: SngKind::Counter,
            seed,
            stream_length: 96,
            faults: None,
            job: ShardJob::Batch {
                first_index: 0,
                xs: vec![0.25, 0.75],
            },
        };
        encode_request_v2(&req, id, None)
    };
    let responses = serve_frames(&[mk(7, 1), mk(9, 2), mk(8, 3)]);
    let ids: Vec<u64> = responses.iter().map(|p| v2_runs(p).0).collect();
    assert_eq!(ids, vec![7, 9, 8]);
}

#[test]
fn cache_misses_are_clean_values_and_lru_evicts_the_oldest() {
    let system = clean_system();
    let base = ShardRequest {
        params: *system.params(),
        coeffs: system.polynomial().coeffs().to_vec(),
        sng: SngKind::Xoshiro,
        seed: 5,
        stream_length: 64,
        faults: None,
        job: ShardJob::Batch {
            first_index: 0,
            xs: vec![0.5],
        },
    };
    // An unknown digest on a fresh worker is a cache miss, not an error
    // — and the worker stays alive to serve the inline form next.
    let bogus = 0x0BAD_D16E_0057u64;
    let responses = serve_frames(&[
        encode_request_v2(&base, 1, Some(bogus)),
        encode_request_v2(&base, 2, None),
    ]);
    assert_eq!(
        decode_response_v2(&responses[0]).unwrap(),
        ShardResponseV2::CacheMiss {
            request_id: 1,
            digest: bogus
        }
    );
    let (_, runs) = v2_runs(&responses[1]);
    assert_eq!(runs.len(), 1);

    // Fill the cache past capacity with distinct circuits: the first
    // digest must be evicted (miss), the most recent must still hit.
    let mut frames = vec![encode_request_v2(&base, 10, None)];
    let mut variant_digest = 0;
    for i in 0..CIRCUIT_CACHE_CAPACITY as u64 {
        let mut variant = base.clone();
        variant.coeffs[2] = 0.70 + i as f64 / 1000.0;
        variant_digest = circuit_digest(&variant.params, &variant.coeffs);
        frames.push(encode_request_v2(&variant, 11 + i, None));
    }
    let first_digest = circuit_digest(&base.params, &base.coeffs);
    frames.push(encode_request_v2(&base, 90, Some(first_digest))); // evicted → miss
    let mut last = base.clone();
    last.coeffs[2] = 0.70 + (CIRCUIT_CACHE_CAPACITY as u64 - 1) as f64 / 1000.0;
    assert_eq!(circuit_digest(&last.params, &last.coeffs), variant_digest);
    frames.push(encode_request_v2(&last, 91, Some(variant_digest))); // recent → hit
    let responses = serve_frames(&frames);
    assert_eq!(
        decode_response_v2(&responses[responses.len() - 2]).unwrap(),
        ShardResponseV2::CacheMiss {
            request_id: 90,
            digest: first_digest
        },
        "the oldest circuit must have been evicted"
    );
    let (id, runs) = v2_runs(&responses[responses.len() - 1]);
    assert_eq!(id, 91);
    assert_eq!(runs.len(), 1, "the most recent circuit must still hit");
}

#[test]
fn image_rows_partition_matches_whole_image_job() {
    // Row-sharded image evaluation must be invisible: any row partition
    // merges to the single-request whole-image job, whose derivation the
    // apps layer pins against `apply_optical_lanes`.
    let (width, height) = (13usize, 6usize); // 13 → ragged 8+4+1 lane blocks
    let pixels: Vec<f64> = (0..width * height)
        .map(|i| (i as f64 * 0.37) % 1.0)
        .collect();
    let system = clean_system();
    let base_req = |first_row: usize, rows: &[f64]| ShardRequest {
        params: *system.params(),
        coeffs: system.polynomial().coeffs().to_vec(),
        sng: SngKind::Xoshiro,
        seed: 99,
        stream_length: 128,
        faults: None,
        job: ShardJob::ImageRows {
            width: width as u64,
            first_row: first_row as u64,
            pixels: rows.to_vec(),
        },
    };
    let whole = serve_one(&base_req(0, &pixels));
    assert_eq!(whole.len(), width * height);
    for shards in [2usize, 3, 7] {
        let plan = ShardPlan::new(height, shards);
        let mut merged = Vec::new();
        for &(start, len) in plan.ranges() {
            merged.extend(serve_one(&base_req(
                start,
                &pixels[start * width..(start + len) * width],
            )));
        }
        assert_eq!(merged, whole, "shards={shards}");
    }
}
