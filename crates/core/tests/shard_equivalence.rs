//! Shard-protocol determinism: any [`ShardPlan`] partition of a batch,
//! run through the worker loop shard by shard and merged in index
//! order, must be **byte-identical** to the single-process
//! `evaluate_many` output — for every SNG kind, in clean and noisy
//! receiver regimes, for balanced and ragged splits.
//!
//! These tests drive [`osc_core::batch::shard::serve`] over in-memory
//! pipes, so they pin the whole protocol path (encode → decode → worker
//! evaluation → encode → decode) without spawning processes; the
//! subprocess coordinator itself is exercised end to end by the
//! `osc-bench` integration suite, which owns the worker binary.

use osc_core::batch::shard::{
    decode_response, encode_request, read_frame, serve, write_frame, ShardJob, ShardPlan,
    ShardRequest, ShardResponse, SngKind,
};
use osc_core::batch::BatchEvaluator;
use osc_core::params::CircuitParams;
use osc_core::system::{OpticalRun, OpticalScSystem};
use osc_stochastic::bernstein::BernsteinPoly;
use osc_stochastic::sng::{ChaoticLaserSng, CounterSng, LfsrSng, XoshiroSng};
use osc_units::Milliwatts;

fn fig5_poly() -> BernsteinPoly {
    BernsteinPoly::new(vec![0.25, 0.625, 0.75]).unwrap()
}

fn clean_system() -> OpticalScSystem {
    OpticalScSystem::new(CircuitParams::paper_fig5(), fig5_poly()).unwrap()
}

/// Starved probes push the folded decision probabilities strictly inside
/// (0, 1): the uniform-draw kernel tier, whose RNG consumption order is
/// part of the determinism contract, runs on every cycle.
fn noisy_system() -> OpticalScSystem {
    let params = CircuitParams::paper_fig5().with_probe_power(Milliwatts::new(0.05));
    let system = OpticalScSystem::new(params, fig5_poly()).unwrap();
    assert!(
        !system.has_deterministic_decisions(),
        "noisy config should need draws"
    );
    system
}

/// Runs one request through the in-memory worker loop.
fn serve_one(req: &ShardRequest) -> Vec<OpticalRun> {
    let mut input = Vec::new();
    write_frame(&mut input, &encode_request(req)).unwrap();
    let mut output = Vec::new();
    serve(&input[..], &mut output).unwrap();
    let payload = read_frame(&mut &output[..]).unwrap().expect("one response");
    match decode_response(&payload).unwrap() {
        ShardResponse::Runs(runs) => runs,
        ShardResponse::Error(msg) => panic!("worker error: {msg}"),
    }
}

/// The single-process reference with the factory the wire protocol pins
/// for each SNG kind.
fn reference_runs(
    system: &OpticalScSystem,
    kind: SngKind,
    xs: &[f64],
    stream_length: usize,
    seed: u64,
) -> Vec<OpticalRun> {
    let ev = BatchEvaluator::with_threads(2);
    match kind {
        SngKind::Lfsr => ev.evaluate_many(
            system,
            xs,
            stream_length,
            |s| LfsrSng::new(16, s as u32).unwrap(),
            seed,
        ),
        SngKind::Counter => {
            ev.evaluate_many(system, xs, stream_length, |_| CounterSng::new(), seed)
        }
        SngKind::Xoshiro => ev.evaluate_many(system, xs, stream_length, XoshiroSng::new, seed),
        SngKind::Chaotic => {
            ev.evaluate_many(system, xs, stream_length, ChaoticLaserSng::seeded, seed)
        }
    }
    .unwrap()
}

#[test]
fn any_partition_merges_to_the_single_process_batch() {
    // 23 items: every shard count in {1, 2, 3, 7} splits it raggedly
    // except 1, and 23 > 2 lane blocks so blocks straddle shard cuts.
    let n = 23usize;
    let xs: Vec<f64> = (0..n).map(|i| i as f64 / (n - 1) as f64).collect();
    let stream_length = 200usize;
    for (label, system) in [("clean", clean_system()), ("noisy", noisy_system())] {
        for kind in SngKind::ALL {
            let seed = 0xD1CE ^ kind.name().len() as u64;
            let reference = reference_runs(&system, kind, &xs, stream_length, seed);
            for shards in [1usize, 2, 3, 7, n, n + 5] {
                let plan = ShardPlan::new(n, shards);
                let mut merged = Vec::with_capacity(n);
                for &(start, len) in plan.ranges() {
                    let req = ShardRequest {
                        params: *system.circuit().params(),
                        coeffs: system.polynomial().coeffs().to_vec(),
                        sng: kind,
                        seed,
                        stream_length: stream_length as u64,
                        job: ShardJob::Batch {
                            first_index: start as u64,
                            xs: xs[start..start + len].to_vec(),
                        },
                    };
                    merged.extend(serve_one(&req));
                }
                assert_eq!(merged, reference, "{label} {} shards={shards}", kind.name());
            }
        }
    }
}

#[test]
fn image_rows_partition_matches_whole_image_job() {
    // Row-sharded image evaluation must be invisible: any row partition
    // merges to the single-request whole-image job, whose derivation the
    // apps layer pins against `apply_optical_lanes`.
    let (width, height) = (13usize, 6usize); // 13 → ragged 8+4+1 lane blocks
    let pixels: Vec<f64> = (0..width * height)
        .map(|i| (i as f64 * 0.37) % 1.0)
        .collect();
    let system = clean_system();
    let base_req = |first_row: usize, rows: &[f64]| ShardRequest {
        params: *system.circuit().params(),
        coeffs: system.polynomial().coeffs().to_vec(),
        sng: SngKind::Xoshiro,
        seed: 99,
        stream_length: 128,
        job: ShardJob::ImageRows {
            width: width as u64,
            first_row: first_row as u64,
            pixels: rows.to_vec(),
        },
    };
    let whole = serve_one(&base_req(0, &pixels));
    assert_eq!(whole.len(), width * height);
    for shards in [2usize, 3, 7] {
        let plan = ShardPlan::new(height, shards);
        let mut merged = Vec::new();
        for &(start, len) in plan.ranges() {
            merged.extend(serve_one(&base_req(
                start,
                &pixels[start * width..(start + len) * width],
            )));
        }
        assert_eq!(merged, whole, "shards={shards}");
    }
}
