//! Property-based tests for the optical SC architecture.
//!
//! Deterministic property harness: each property runs over seeded random
//! cases drawn from the workspace RNG, so failures replay exactly.

use osc_core::adder::OpticalAdder;
use osc_core::batch::{mix_seed, BatchEvaluator};
use osc_core::design::mzi_first::{MziFirstDesign, MziFirstInputs};
use osc_core::params::CircuitParams;
use osc_core::snr::SnrModel;
use osc_core::system::OpticalScSystem;
use osc_core::transmission::TransmissionModel;
use osc_math::rng::Xoshiro256PlusPlus;
use osc_stochastic::bernstein::BernsteinPoly;
use osc_stochastic::sng::XoshiroSng;
use osc_units::{DbRatio, Milliwatts, Nanometers};

/// Runs `f` over `n` seeded cases.
fn cases(n: u64, mut f: impl FnMut(&mut Xoshiro256PlusPlus)) {
    for case in 0..n {
        let mut rng = Xoshiro256PlusPlus::new(0xC02E ^ (case << 8));
        f(&mut rng);
    }
}

/// The adder's control power depends only on the popcount, for any word
/// and order up to 6.
#[test]
fn adder_popcount_invariance() {
    cases(48, |rng| {
        let n = 2 + rng.below(5) as usize;
        let bits: Vec<bool> = (0..n).map(|_| rng.bernoulli(0.5)).collect();
        let params = CircuitParams::paper_fig7(n, Nanometers::new(0.3));
        let adder = OpticalAdder::new(&params).unwrap();
        let count = bits.iter().filter(|&&b| b).count();
        let from_word = adder.control_power(&bits).unwrap();
        let from_count = adder.control_power_for_count(count);
        assert!((from_word.as_mw() - from_count.as_mw()).abs() < 1e-9);
    });
}

/// Adder control levels are strictly decreasing in the ones count.
#[test]
fn adder_levels_strictly_decreasing() {
    for order in 1usize..8 {
        let params = CircuitParams::paper_fig7(order, Nanometers::new(0.3));
        let adder = OpticalAdder::new(&params).unwrap();
        let levels = adder.levels();
        for pair in levels.windows(2) {
            assert!(pair[0] > pair[1]);
        }
    }
}

/// The MZI-first wavelength plan obeys the closed-form spacing
/// `pump·OTE·IL%·(1−ER%)/n`.
#[test]
fn mzi_first_spacing_closed_form() {
    cases(48, |rng| {
        let il = rng.range_f64(3.0, 7.4);
        let er = rng.range_f64(2.0, 10.0);
        let inputs = MziFirstInputs::paper_fig6(DbRatio::from_db(il), DbRatio::from_db(er));
        if let Ok(d) = MziFirstDesign::solve(&inputs) {
            let il_lin = 10f64.powf(-il / 10.0);
            let er_lin = 10f64.powf(-er / 10.0);
            let expect = 600.0 * 0.01 * il_lin * (1.0 - er_lin) / 2.0;
            assert!(
                (d.wl_spacing.as_nm() - expect).abs() < 1e-9,
                "spacing {} vs closed form {expect}",
                d.wl_spacing.as_nm()
            );
        }
    });
}

/// Minimum probe power scales exactly linearly with the noise current
/// (Eq. 8 structure).
#[test]
fn min_probe_linear_in_noise() {
    cases(48, |rng| {
        let scale = rng.range_f64(0.2, 5.0);
        let mut base = CircuitParams::paper_fig5();
        let p1 = SnrModel::new(&base)
            .unwrap()
            .min_probe_power_for_ber(1e-6)
            .unwrap();
        base.noise_current_a *= scale;
        let p2 = SnrModel::new(&base)
            .unwrap()
            .min_probe_power_for_ber(1e-6)
            .unwrap();
        assert!((p2.as_mw() - scale * p1.as_mw()).abs() / p1.as_mw() < 1e-9);
    });
}

/// Received power is monotone in each coefficient bit: flipping any z-bit
/// from 0 to 1 never decreases the detector power.
#[test]
fn received_power_monotone_in_z() {
    cases(48, |rng| {
        let x = [rng.bernoulli(0.5), rng.bernoulli(0.5)];
        let mut z = [rng.bernoulli(0.5), rng.bernoulli(0.5), rng.bernoulli(0.5)];
        let flip = rng.below(3) as usize;
        if z[flip] {
            return; // property is about a 0 -> 1 flip
        }
        let model = TransmissionModel::new(&CircuitParams::paper_fig5()).unwrap();
        let before = model.received_power(&z, &x, Milliwatts::new(1.0)).unwrap();
        z[flip] = true;
        let after = model.received_power(&z, &x, Milliwatts::new(1.0)).unwrap();
        assert!(
            after.as_mw() >= before.as_mw() - 1e-9,
            "flipping z{flip} reduced power: {before} -> {after}"
        );
    });
}

/// Filter detuning interpolates linearly between the all-zeros and
/// all-ones extremes as the popcount grows.
#[test]
fn delta_filter_linear_in_count() {
    for order in 2usize..7 {
        let params = CircuitParams::paper_fig7(order, Nanometers::new(0.25));
        let model = TransmissionModel::new(&params).unwrap();
        let word = |count: usize| -> Vec<bool> { (0..order).map(|i| i < count).collect() };
        let d0 = model.delta_filter(&word(0)).unwrap().as_nm();
        let dn = model.delta_filter(&word(order)).unwrap().as_nm();
        for k in 1..order {
            let dk = model.delta_filter(&word(k)).unwrap().as_nm();
            let expect = d0 + (dn - d0) * k as f64 / order as f64;
            assert!((dk - expect).abs() < 1e-9, "count {k}");
        }
    }
}

/// The paper_fig7 constructor always yields a valid, feasible design for
/// sensible orders and spacings.
#[test]
fn fig7_params_valid() {
    cases(48, |rng| {
        let order = 1 + rng.below(16) as usize;
        let spacing = rng.range_f64(0.1, 1.0);
        let params = CircuitParams::paper_fig7(order, Nanometers::new(spacing));
        assert!(params.validate().is_ok());
        // Channels strictly increasing and below λ_ref.
        let ch = params.channels();
        for pair in ch.windows(2) {
            assert!(pair[1] > pair[0]);
        }
        assert!(*ch.last().unwrap() < params.lambda_ref);
    });
}

/// The word-transposed evaluate and its per-bit twin return identical
/// runs for random polynomials, inputs, lengths and seeds — the
/// end-to-end equivalence of the word-parallel rewrite.
#[test]
fn word_and_bitwise_evaluate_identical() {
    cases(12, |rng| {
        let coeffs: Vec<f64> = (0..3).map(|_| rng.next_f64()).collect();
        let system = OpticalScSystem::new(
            CircuitParams::paper_fig5(),
            BernsteinPoly::new(coeffs).unwrap(),
        )
        .unwrap();
        let x = rng.next_f64();
        let len = 1 + rng.below(3000) as usize;
        let seed = rng.next_u64();
        let mut sng_a = XoshiroSng::new(seed);
        let mut rng_a = Xoshiro256PlusPlus::new(seed ^ 1);
        let mut sng_b = XoshiroSng::new(seed);
        let mut rng_b = Xoshiro256PlusPlus::new(seed ^ 1);
        assert_eq!(
            system.evaluate(x, len, &mut sng_a, &mut rng_a).unwrap(),
            system
                .evaluate_bitwise(x, len, &mut sng_b, &mut rng_b)
                .unwrap(),
            "x={x}, len={len}"
        );
    });
}

/// Batched evaluation is invariant under the thread budget for random
/// batch shapes.
#[test]
fn batch_results_thread_count_invariant() {
    let system = OpticalScSystem::new(
        CircuitParams::paper_fig5(),
        BernsteinPoly::new(vec![0.25, 0.625, 0.75]).unwrap(),
    )
    .unwrap();
    cases(6, |rng| {
        let points = 1 + rng.below(12) as usize;
        let xs: Vec<f64> = (0..points).map(|_| rng.next_f64()).collect();
        let seed = rng.next_u64();
        let len = 256 + rng.below(512) as usize;
        let baseline = BatchEvaluator::with_threads(1)
            .evaluate_many(&system, &xs, len, XoshiroSng::new, seed)
            .unwrap();
        for threads in [2usize, 5] {
            let other = BatchEvaluator::with_threads(threads)
                .evaluate_many(&system, &xs, len, XoshiroSng::new, seed)
                .unwrap();
            assert_eq!(baseline, other, "threads={threads}");
        }
    });
}

/// Seed mixing is injective-ish in practice: no collisions over a dense
/// grid of (seed, index) pairs.
#[test]
fn mix_seed_collision_free_on_grid() {
    let mut seen = std::collections::HashSet::new();
    for seed in 0..64u64 {
        for index in 0..64u64 {
            assert!(
                seen.insert(mix_seed(seed, index)),
                "collision at seed={seed}, index={index}"
            );
        }
    }
}
