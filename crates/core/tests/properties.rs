//! Property-based tests for the optical SC architecture.

use osc_core::adder::OpticalAdder;
use osc_core::design::mzi_first::{MziFirstDesign, MziFirstInputs};
use osc_core::params::CircuitParams;
use osc_core::snr::SnrModel;
use osc_core::transmission::TransmissionModel;
use osc_units::{DbRatio, Milliwatts, Nanometers};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The adder's control power depends only on the popcount, for any
    /// word and order up to 6.
    #[test]
    fn adder_popcount_invariance(bits in proptest::collection::vec(any::<bool>(), 2..7)) {
        let n = bits.len();
        let params = CircuitParams::paper_fig7(n, Nanometers::new(0.3));
        let adder = OpticalAdder::new(&params).unwrap();
        let count = bits.iter().filter(|&&b| b).count();
        let from_word = adder.control_power(&bits).unwrap();
        let from_count = adder.control_power_for_count(count);
        prop_assert!((from_word.as_mw() - from_count.as_mw()).abs() < 1e-9);
    }

    /// Adder control levels are strictly decreasing in the ones count.
    #[test]
    fn adder_levels_strictly_decreasing(order in 1usize..8) {
        let params = CircuitParams::paper_fig7(order, Nanometers::new(0.3));
        let adder = OpticalAdder::new(&params).unwrap();
        let levels = adder.levels();
        for pair in levels.windows(2) {
            prop_assert!(pair[0] > pair[1]);
        }
    }

    /// The MZI-first wavelength plan obeys the closed-form spacing
    /// `pump·OTE·IL%·(1−ER%)/n`.
    #[test]
    fn mzi_first_spacing_closed_form(il in 3.0f64..7.4, er in 2.0f64..10.0) {
        let inputs = MziFirstInputs::paper_fig6(DbRatio::from_db(il), DbRatio::from_db(er));
        if let Ok(d) = MziFirstDesign::solve(&inputs) {
            let il_lin = 10f64.powf(-il / 10.0);
            let er_lin = 10f64.powf(-er / 10.0);
            let expect = 600.0 * 0.01 * il_lin * (1.0 - er_lin) / 2.0;
            prop_assert!(
                (d.wl_spacing.as_nm() - expect).abs() < 1e-9,
                "spacing {} vs closed form {expect}", d.wl_spacing.as_nm()
            );
        }
    }

    /// Minimum probe power scales exactly linearly with the noise
    /// current (Eq. 8 structure).
    #[test]
    fn min_probe_linear_in_noise(scale in 0.2f64..5.0) {
        let mut base = CircuitParams::paper_fig5();
        let p1 = SnrModel::new(&base).unwrap().min_probe_power_for_ber(1e-6).unwrap();
        base.noise_current_a *= scale;
        let p2 = SnrModel::new(&base).unwrap().min_probe_power_for_ber(1e-6).unwrap();
        prop_assert!((p2.as_mw() - scale * p1.as_mw()).abs() / p1.as_mw() < 1e-9);
    }

    /// Received power is monotone in each coefficient bit: flipping any
    /// z-bit from 0 to 1 never decreases the detector power.
    #[test]
    fn received_power_monotone_in_z(
        x0 in any::<bool>(), x1 in any::<bool>(),
        z0 in any::<bool>(), z1 in any::<bool>(), z2 in any::<bool>(),
        flip in 0usize..3,
    ) {
        let model = TransmissionModel::new(&CircuitParams::paper_fig5()).unwrap();
        let mut z = [z0, z1, z2];
        prop_assume!(!z[flip]);
        let before = model
            .received_power(&z, &[x0, x1], Milliwatts::new(1.0))
            .unwrap();
        z[flip] = true;
        let after = model
            .received_power(&z, &[x0, x1], Milliwatts::new(1.0))
            .unwrap();
        prop_assert!(
            after.as_mw() >= before.as_mw() - 1e-9,
            "flipping z{flip} reduced power: {before} -> {after}"
        );
    }

    /// Filter detuning interpolates linearly between the all-zeros and
    /// all-ones extremes as the popcount grows.
    #[test]
    fn delta_filter_linear_in_count(order in 2usize..7) {
        let params = CircuitParams::paper_fig7(order, Nanometers::new(0.25));
        let model = TransmissionModel::new(&params).unwrap();
        let word = |count: usize| -> Vec<bool> {
            (0..order).map(|i| i < count).collect()
        };
        let d0 = model.delta_filter(&word(0)).unwrap().as_nm();
        let dn = model.delta_filter(&word(order)).unwrap().as_nm();
        for k in 1..order {
            let dk = model.delta_filter(&word(k)).unwrap().as_nm();
            let expect = d0 + (dn - d0) * k as f64 / order as f64;
            prop_assert!((dk - expect).abs() < 1e-9, "count {k}");
        }
    }

    /// The paper_fig7 constructor always yields a valid, feasible design
    /// for sensible orders and spacings.
    #[test]
    fn fig7_params_valid(order in 1usize..17, spacing in 0.1f64..1.0) {
        let params = CircuitParams::paper_fig7(order, Nanometers::new(spacing));
        prop_assert!(params.validate().is_ok());
        // Channels strictly increasing and below λ_ref.
        let ch = params.channels();
        for pair in ch.windows(2) {
            prop_assert!(pair[1] > pair[0]);
        }
        prop_assert!(*ch.last().unwrap() < params.lambda_ref);
    }
}
