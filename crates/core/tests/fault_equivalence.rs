//! Fault-injection determinism: the fault machinery must be a pure,
//! seeded function of the spec and the stream's global index —
//! invisible at rate zero, bit-identical between the word-parallel
//! path and every dispatch tier and lane width, and independent of how
//! a batch is split across shards.
//!
//! The in-memory v3 protocol path is pinned here; the subprocess
//! coordinator and pool are exercised end to end by the `osc-bench`
//! integration suite, which owns the worker binary.

use osc_core::batch::shard::{
    decode_response_v2, encode_request_v2, read_frame, serve, write_frame, ShardJob, ShardPlan,
    ShardRequest, ShardResponseV2, SngKind,
};
use osc_core::batch::BatchEvaluator;
use osc_core::fault::{FaultSpec, StuckAt};
use osc_core::params::CircuitParams;
use osc_core::system::{EvalScratch, OpticalRun, OpticalScSystem};
use osc_math::rng::Xoshiro256PlusPlus;
use osc_stochastic::bernstein::BernsteinPoly;
use osc_stochastic::simd::{self, SimdTier};
use osc_stochastic::sng::{ChaoticLaserSng, CounterSng, LfsrSng, XoshiroSng};
use osc_units::Milliwatts;

fn fig5_poly() -> BernsteinPoly {
    BernsteinPoly::new(vec![0.25, 0.625, 0.75]).unwrap()
}

fn clean_system() -> OpticalScSystem {
    OpticalScSystem::new(CircuitParams::paper_fig5(), fig5_poly()).unwrap()
}

/// Starved probes force non-deterministic fold decisions, so the
/// uniform-draw kernel tier (whose RNG consumption order is part of
/// the determinism contract) runs on every cycle.
fn noisy_system() -> OpticalScSystem {
    let params = CircuitParams::paper_fig5().with_probe_power(Milliwatts::new(0.05));
    let system = OpticalScSystem::new(params, fig5_poly()).unwrap();
    assert!(!system.has_deterministic_decisions());
    system
}

/// An active spec exercising all three fault mechanisms.
fn active_spec() -> FaultSpec {
    let mut spec = FaultSpec::with_seed(0xFA17);
    spec.flip_probability = 0.03;
    spec.shift_probability = 0.002;
    spec.stuck = Some(StuckAt {
        mask: 1 << 7,
        value: 1 << 7,
    });
    spec
}

fn batch_runs(
    system: &OpticalScSystem,
    kind: SngKind,
    xs: &[f64],
    stream_length: usize,
    seed: u64,
    faults: Option<&FaultSpec>,
) -> Vec<OpticalRun> {
    let ev = BatchEvaluator::with_threads(2);
    match kind {
        SngKind::Lfsr => ev.evaluate_many_faulted(
            system,
            xs,
            stream_length,
            |s| LfsrSng::new(16, s as u32).unwrap(),
            seed,
            faults,
        ),
        SngKind::Counter => ev.evaluate_many_faulted(
            system,
            xs,
            stream_length,
            |_| CounterSng::new(),
            seed,
            faults,
        ),
        SngKind::Xoshiro => {
            ev.evaluate_many_faulted(system, xs, stream_length, XoshiroSng::new, seed, faults)
        }
        SngKind::Chaotic => ev.evaluate_many_faulted(
            system,
            xs,
            stream_length,
            ChaoticLaserSng::seeded,
            seed,
            faults,
        ),
    }
    .unwrap()
}

#[test]
fn rate_zero_is_bit_identical_to_clean_for_all_sngs_and_regimes() {
    // A present-but-inert spec (both rates 0, no stuck mask) must be
    // indistinguishable from no spec at all: the fault hooks may not
    // consume RNG state, reorder draws or touch a single bit.
    let inert = FaultSpec::with_seed(0xDEAD);
    assert!(!inert.is_active());
    let xs: Vec<f64> = (0..13).map(|i| i as f64 / 12.0).collect();
    for (label, system) in [("clean", clean_system()), ("noisy", noisy_system())] {
        for kind in SngKind::ALL {
            for &len in &[63usize, 257, 1024] {
                let clean = batch_runs(&system, kind, &xs, len, 7, None);
                let zeroed = batch_runs(&system, kind, &xs, len, 7, Some(&inert));
                assert_eq!(clean, zeroed, "{label} {} len={len}", kind.name());
            }
        }
    }
}

#[test]
fn active_faults_change_results_and_are_reproducible() {
    let xs: Vec<f64> = (0..9).map(|i| i as f64 / 8.0).collect();
    let system = clean_system();
    let spec = active_spec();
    let clean = batch_runs(&system, SngKind::Xoshiro, &xs, 512, 7, None);
    let faulted = batch_runs(&system, SngKind::Xoshiro, &xs, 512, 7, Some(&spec));
    assert_ne!(clean, faulted, "an active spec must perturb the output");
    let again = batch_runs(&system, SngKind::Xoshiro, &xs, 512, 7, Some(&spec));
    assert_eq!(faulted, again, "the fault universe is seeded, not random");
    // A different fault seed is a different universe over the same
    // circuit universe.
    let mut reseeded = spec;
    reseeded.flip_seed ^= 1;
    let other = batch_runs(&system, SngKind::Xoshiro, &xs, 512, 7, Some(&reseeded));
    assert_ne!(faulted, other);
}

/// Per-lane faulted fused runs — the scalar reference the lane-blocked
/// kernel must reproduce bit for bit.
fn per_lane_reference<const L: usize>(
    system: &OpticalScSystem,
    xs: &[f64; L],
    len: usize,
    specs: &[FaultSpec; L],
) -> Vec<OpticalRun> {
    let mut scratch = EvalScratch::new();
    (0..L)
        .map(|l| {
            let mut sng = XoshiroSng::new(40 + l as u64);
            let mut rng = Xoshiro256PlusPlus::new(90 + l as u64);
            system
                .evaluate_fused_faulted(
                    xs[l],
                    len,
                    &mut sng,
                    &mut rng,
                    Some(&specs[l]),
                    &mut scratch,
                )
                .unwrap()
        })
        .collect()
}

fn lane_block_runs<const L: usize>(
    system: &OpticalScSystem,
    xs: &[f64; L],
    len: usize,
    specs: &[FaultSpec; L],
) -> [OpticalRun; L] {
    let mut sngs: [XoshiroSng; L] = std::array::from_fn(|l| XoshiroSng::new(40 + l as u64));
    let mut rngs: [Xoshiro256PlusPlus; L] =
        std::array::from_fn(|l| Xoshiro256PlusPlus::new(90 + l as u64));
    let mut scratch = EvalScratch::new();
    system
        .evaluate_fused_lanes_faulted(xs, len, &mut sngs, &mut rngs, Some(specs), &mut scratch)
        .unwrap()
}

#[test]
fn lane_blocked_faulted_equals_per_lane_faulted() {
    // The word-parallel faulted lane kernel against L standalone
    // faulted fused passes, with a distinct spec per lane — clean and
    // noisy, at lengths covering ragged tails and the pair cutoff.
    let base = active_spec();
    for (label, system) in [("clean", clean_system()), ("noisy", noisy_system())] {
        for &len in &[63usize, 257, 1024, 8257] {
            {
                const L: usize = 4;
                let xs: [f64; L] = std::array::from_fn(|l| (l + 1) as f64 / (L + 1) as f64);
                let specs: [FaultSpec; L] = std::array::from_fn(|l| base.rebased(l as u64));
                let blocked = lane_block_runs::<L>(&system, &xs, len, &specs);
                let reference = per_lane_reference::<L>(&system, &xs, len, &specs);
                assert_eq!(blocked.to_vec(), reference, "{label} L=4 len={len}");
            }
            {
                const L: usize = 8;
                let xs: [f64; L] = std::array::from_fn(|l| (l + 1) as f64 / (L + 1) as f64);
                let specs: [FaultSpec; L] = std::array::from_fn(|l| base.rebased(l as u64));
                let blocked = lane_block_runs::<L>(&system, &xs, len, &specs);
                let reference = per_lane_reference::<L>(&system, &xs, len, &specs);
                assert_eq!(blocked.to_vec(), reference, "{label} L=8 len={len}");
            }
        }
    }
}

#[test]
fn faulted_lanes_agree_across_dispatch_tiers() {
    // The faulted 8-lane workload under forced-scalar, forced-AVX2 and
    // the machine's detected tier must produce identical runs. (Safe
    // under parallel tests: every tier is bit-identical by contract,
    // so racing tests only vary which implementation runs.)
    let base = active_spec();
    const L: usize = 8;
    let xs: [f64; L] = std::array::from_fn(|l| (l + 1) as f64 / (L + 1) as f64);
    let specs: [FaultSpec; L] = std::array::from_fn(|l| base.rebased(l as u64));
    for (label, system) in [("clean", clean_system()), ("noisy", noisy_system())] {
        for &len in &[257usize, 4097] {
            let run_under = |tier: SimdTier| {
                simd::set_tier_override(Some(tier));
                let runs = lane_block_runs::<L>(&system, &xs, len, &specs);
                simd::set_tier_override(None);
                runs
            };
            let scalar = run_under(SimdTier::Scalar);
            for tier in [SimdTier::Avx2, simd::detected_tier()] {
                assert_eq!(scalar, run_under(tier), "{label} len={len} {tier:?}");
            }
        }
    }
}

#[test]
fn batch_splits_rebase_faults_by_global_index() {
    // Splitting a faulted batch at any point and evaluating the pieces
    // with `evaluate_range_faulted` must reproduce the whole-batch
    // bytes: the fault universe of item i depends only on its global
    // index, never on which range (or process) evaluates it.
    let system = clean_system();
    let spec = active_spec();
    let xs: Vec<f64> = (0..11).map(|i| i as f64 / 10.0).collect();
    let ev = BatchEvaluator::with_threads(2);
    let whole = ev
        .evaluate_many_faulted(&system, &xs, 256, XoshiroSng::new, 7, Some(&spec))
        .unwrap();
    for split in [1usize, 4, 8, 10] {
        let mut merged = ev
            .evaluate_range_faulted(
                &system,
                &xs[..split],
                256,
                XoshiroSng::new,
                7,
                0,
                Some(&spec),
            )
            .unwrap();
        merged.extend(
            ev.evaluate_range_faulted(
                &system,
                &xs[split..],
                256,
                XoshiroSng::new,
                7,
                split as u64,
                Some(&spec),
            )
            .unwrap(),
        );
        assert_eq!(merged, whole, "split at {split}");
    }
}

/// Runs one faulted request through the in-memory worker loop as a v3
/// frame.
fn serve_one_v3(req: &ShardRequest) -> Vec<OpticalRun> {
    let mut input = Vec::new();
    write_frame(&mut input, &encode_request_v2(req, 1, None)).unwrap();
    let mut output = Vec::new();
    serve(&input[..], &mut output).unwrap();
    let payload = read_frame(&mut &output[..]).unwrap().expect("one response");
    match decode_response_v2(&payload).unwrap() {
        ShardResponseV2::Runs { runs, .. } => runs,
        other => panic!("worker error: {other:?}"),
    }
}

#[test]
fn in_memory_sharded_faults_are_identical_across_shard_counts() {
    // Any ShardPlan partition of a faulted batch, served shard by shard
    // through the v3 protocol and merged in index order, must equal the
    // unsharded faulted reference — the acceptance shard counts plus
    // degenerate ones.
    let spec = active_spec();
    let xs: Vec<f64> = (0..23).map(|i| i as f64 / 22.0).collect();
    let n = xs.len();
    for (label, system) in [("clean", clean_system()), ("noisy", noisy_system())] {
        let reference = batch_runs(&system, SngKind::Xoshiro, &xs, 192, 7, Some(&spec));
        for shards in [1usize, 2, 3, 7, n, n + 5] {
            let plan = ShardPlan::new(n, shards);
            let mut merged = Vec::with_capacity(n);
            for &(start, len) in plan.ranges() {
                let req = ShardRequest {
                    params: *system.params(),
                    coeffs: system.polynomial().coeffs().to_vec(),
                    sng: SngKind::Xoshiro,
                    seed: 7,
                    stream_length: 192,
                    faults: Some(spec),
                    job: ShardJob::Batch {
                        first_index: start as u64,
                        xs: xs[start..start + len].to_vec(),
                    },
                };
                merged.extend(serve_one_v3(&req));
            }
            assert_eq!(merged, reference, "{label} shards={shards}");
        }
    }
}

#[test]
fn in_memory_sharded_image_faults_are_identical_across_shard_counts() {
    // The image job rebases the spec by row and then by column; the
    // result must not depend on how rows are split across shards.
    let spec = active_spec();
    let (width, height) = (9usize, 8);
    let pixels: Vec<f64> = (0..width * height)
        .map(|i| i as f64 / (width * height) as f64)
        .collect();
    let system = clean_system();
    let make_req = |first_row: usize, rows: &[f64]| ShardRequest {
        params: *system.params(),
        coeffs: system.polynomial().coeffs().to_vec(),
        sng: SngKind::Xoshiro,
        seed: 5,
        stream_length: 128,
        faults: Some(spec),
        job: ShardJob::ImageRows {
            width: width as u64,
            first_row: first_row as u64,
            pixels: rows.to_vec(),
        },
    };
    let whole = serve_one_v3(&make_req(0, &pixels));
    for shards in [2usize, 3, 7] {
        let plan = ShardPlan::new(height, shards);
        let mut merged = Vec::with_capacity(width * height);
        for &(start, len) in plan.ranges() {
            merged.extend(serve_one_v3(&make_req(
                start,
                &pixels[start * width..(start + len) * width],
            )));
        }
        assert_eq!(merged, whole, "image shards={shards}");
    }
}

#[test]
fn flip_density_tracks_the_requested_rate() {
    // Flips applied to an all-zero stream leave exactly the flipped
    // bits set, so the ones-count is a Binomial(n, p) draw from the
    // seeded fault universe: check it lands within ±5σ for a spread of
    // rates and streams, and that disjoint streams flip independently
    // (different universes).
    for &p in &[0.01f64, 0.05, 0.2] {
        let spec = FaultSpec::flips(p, 0xF00D);
        let bits = 1 << 16;
        let words = bits / 64;
        let mut tmp = Vec::new();
        let mut counts = Vec::new();
        for stream in 0..4u64 {
            let mut buf = vec![0u64; words];
            spec.apply_to_words(stream, &mut buf, 0, 1, bits, &mut tmp);
            counts.push(buf.iter().map(|w| w.count_ones() as u64).sum::<u64>());
        }
        let sigma = (bits as f64 * p * (1.0 - p)).sqrt();
        for (stream, &ones) in counts.iter().enumerate() {
            let dev = (ones as f64 - bits as f64 * p).abs();
            assert!(
                dev < 5.0 * sigma,
                "rate {p} stream {stream}: {ones} ones, deviation {dev:.1} vs σ={sigma:.1}"
            );
        }
        assert!(
            counts.windows(2).any(|w| w[0] != w[1]),
            "distinct streams must draw from distinct fault universes"
        );
    }
}
