//! Three-way draw-identity of the evaluate paths.
//!
//! [`OpticalScSystem::evaluate_fused`] (streaming, zero-materialization),
//! [`OpticalScSystem::evaluate`] (materializing word kernel) and
//! [`OpticalScSystem::evaluate_bitwise`] (per-bit reference) must return
//! the **same** [`OpticalRun`] from the same starting SNG/RNG states —
//! same comparator draws, same receiver-noise draws, same counts. These
//! tests sweep every simulable circuit order (1 through `MAX_SIM_ORDER`),
//! all four stochastic number generators, and ragged / word-aligned /
//! multi-word stream lengths, with one shared [`EvalScratch`] reused
//! across every fused run to exercise scratch reuse between differently
//! shaped systems.

use osc_core::params::CircuitParams;
use osc_core::system::{EvalScratch, OpticalScSystem};
use osc_math::rng::Xoshiro256PlusPlus;
use osc_stochastic::bernstein::BernsteinPoly;
use osc_stochastic::sng::{
    ChaoticLaserSng, CounterSng, LfsrSng, StochasticNumberGenerator, XoshiroSng,
};
use osc_units::{Milliwatts, Nanometers};

/// Stream lengths named by the fused-path acceptance criteria: one bit
/// short of a word, exactly one word, one bit over, a prime multi-word
/// length, and a non-multiple-of-64 "round" length.
const LENGTHS: [usize; 5] = [63, 64, 65, 257, 1000];

/// A polynomial of the given degree with varied, non-symmetric
/// coefficients in `[0, 1]`.
fn poly_for(degree: usize) -> BernsteinPoly {
    let coeffs: Vec<f64> = (0..=degree)
        .map(|i| ((i * 7 + 3) % 11) as f64 / 11.0)
        .collect();
    BernsteinPoly::new(coeffs).expect("coefficients in range")
}

/// A simulable system of the given order (Fig. 5 exactly at order 2, the
/// Fig. 7 dense-WDM plan elsewhere).
fn system_for(order: usize) -> OpticalScSystem {
    let params = if order == 2 {
        CircuitParams::paper_fig5()
    } else {
        CircuitParams::paper_fig7(order, Nanometers::new(0.2))
    };
    OpticalScSystem::new(params, poly_for(order)).expect("simulable order builds")
}

/// Runs the three paths from identical starting states and asserts exact
/// equality of the runs — twice in a row, so diverging post-run SNG/RNG
/// states would also be caught.
fn assert_three_way<S, F>(
    system: &OpticalScSystem,
    scratch: &mut EvalScratch,
    make_sng: F,
    x: f64,
    len: usize,
    tag: &str,
) where
    S: StochasticNumberGenerator,
    F: Fn() -> S,
{
    let mut sng_fused = make_sng();
    let mut sng_mat = make_sng();
    let mut sng_bit = make_sng();
    let mut rng_fused = Xoshiro256PlusPlus::new(0xC0FFEE ^ len as u64);
    let mut rng_mat = rng_fused.clone();
    let mut rng_bit = rng_fused.clone();
    for round in 0..2 {
        let fused = system
            .evaluate_fused(x, len, &mut sng_fused, &mut rng_fused, scratch)
            .unwrap();
        let mat = system.evaluate(x, len, &mut sng_mat, &mut rng_mat).unwrap();
        let bit = system
            .evaluate_bitwise(x, len, &mut sng_bit, &mut rng_bit)
            .unwrap();
        assert_eq!(fused, mat, "{tag}: fused vs materializing, round {round}");
        assert_eq!(mat, bit, "{tag}: materializing vs bitwise, round {round}");
    }
}

/// The full sweep for one system (possibly noisy), all four SNGs at every
/// acceptance length.
fn sweep_all_sngs(system: &OpticalScSystem, scratch: &mut EvalScratch, order: usize, x: f64) {
    for &len in &LENGTHS {
        let seed = (order * 131 + len) as u64;
        assert_three_way(
            system,
            scratch,
            || XoshiroSng::new(seed),
            x,
            len,
            &format!("xoshiro order={order} len={len}"),
        );
        assert_three_way(
            system,
            scratch,
            || LfsrSng::new(16, 0xACE1 ^ seed as u32).unwrap(),
            x,
            len,
            &format!("lfsr order={order} len={len}"),
        );
        assert_three_way(
            system,
            scratch,
            CounterSng::new,
            x,
            len,
            &format!("counter order={order} len={len}"),
        );
        assert_three_way(
            system,
            scratch,
            || ChaoticLaserSng::seeded(seed),
            x,
            len,
            &format!("chaotic order={order} len={len}"),
        );
    }
}

#[test]
fn fused_equals_materialized_equals_bitwise_across_orders() {
    // One scratch across the entire sweep: orders of different shapes
    // must not leak state through the reused buffers.
    let mut scratch = EvalScratch::new();
    for order in 1..=OpticalScSystem::MAX_SIM_ORDER {
        let system = system_for(order);
        let x = (order as f64 * 0.077 + 0.11) % 1.0;
        sweep_all_sngs(&system, &mut scratch, order, x);
    }
}

#[test]
fn fused_equals_twins_under_visible_noise() {
    // Starved probes push the folded decision probabilities strictly
    // inside (0, 1), so the uniform-draw kernel tier (and its exact RNG
    // consumption order) is exercised across all four SNGs.
    let params = CircuitParams::paper_fig5().with_probe_power(Milliwatts::new(0.05));
    let system = OpticalScSystem::new(params, poly_for(2)).unwrap();
    assert!(
        !system.has_deterministic_decisions(),
        "noisy config should need draws"
    );
    let mut scratch = EvalScratch::new();
    sweep_all_sngs(&system, &mut scratch, 2, 0.42);
}

#[test]
fn fused_equals_twins_on_paired_stream_lengths() {
    // Streams past the pairing cutoff run as two interleaved chains from
    // GF(2)-jumped states; the three-way identity must survive that, on
    // word-aligned and ragged long lengths, for jump-capable and
    // fallback (LFSR) sources, in clean and noisy regimes.
    let mut scratch = EvalScratch::new();
    for (label, system) in [
        ("clean", system_for(2)),
        ("noisy", {
            let params = CircuitParams::paper_fig5().with_probe_power(Milliwatts::new(0.05));
            OpticalScSystem::new(params, poly_for(2)).unwrap()
        }),
        ("order3", system_for(3)),
    ] {
        for &len in &[8192usize, 8257] {
            assert_three_way(
                &system,
                &mut scratch,
                || XoshiroSng::new(0xBEEF),
                0.37,
                len,
                &format!("{label} xoshiro len={len}"),
            );
            assert_three_way(
                &system,
                &mut scratch,
                || ChaoticLaserSng::seeded(0xBEEF),
                0.37,
                len,
                &format!("{label} chaotic len={len}"),
            );
            assert_three_way(
                &system,
                &mut scratch,
                CounterSng::new,
                0.37,
                len,
                &format!("{label} counter len={len}"),
            );
            assert_three_way(
                &system,
                &mut scratch,
                || LfsrSng::new(16, 0xACE1).unwrap(),
                0.37,
                len,
                &format!("{label} lfsr len={len}"),
            );
        }
    }
}

#[test]
fn fused_rejects_invalid_x_like_the_twins() {
    let system = system_for(2);
    let mut scratch = EvalScratch::new();
    let mut sng = XoshiroSng::new(1);
    let mut rng = Xoshiro256PlusPlus::new(1);
    assert!(system
        .evaluate_fused(1.5, 64, &mut sng, &mut rng, &mut scratch)
        .is_err());
    assert!(system
        .evaluate_fused(f64::NAN, 64, &mut sng, &mut rng, &mut scratch)
        .is_err());
}
