//! Dense linear algebra for small systems.
//!
//! The workspace needs exactly two operations: solving the (tiny) normal
//! equations of least-squares Bernstein fits, and multiplying the basis
//! conversion matrices between power and Bernstein polynomial forms. A
//! row-major [`Matrix`] with Gaussian elimination covers both; sizes never
//! exceed ~20×20, so no pivoting exotica is needed beyond partial pivoting.

use std::fmt;

/// Error from linear solves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinAlgError {
    /// Dimensions of the operands do not match.
    DimensionMismatch,
    /// The matrix is singular to working precision.
    Singular,
}

impl fmt::Display for LinAlgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinAlgError::DimensionMismatch => write!(f, "dimension mismatch"),
            LinAlgError::Singular => write!(f, "matrix is singular to working precision"),
        }
    }
}

impl std::error::Error for LinAlgError {}

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a closure over `(row, col)`.
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Matrix–vector product.
    ///
    /// # Errors
    ///
    /// [`LinAlgError::DimensionMismatch`] if `v.len() != cols`.
    pub fn mul_vec(&self, v: &[f64]) -> Result<Vec<f64>, LinAlgError> {
        if v.len() != self.cols {
            return Err(LinAlgError::DimensionMismatch);
        }
        Ok((0..self.rows)
            .map(|i| (0..self.cols).map(|j| self[(i, j)] * v[j]).sum())
            .collect())
    }

    /// Matrix–matrix product.
    ///
    /// # Errors
    ///
    /// [`LinAlgError::DimensionMismatch`] on inner-dimension mismatch.
    pub fn mul(&self, other: &Matrix) -> Result<Matrix, LinAlgError> {
        if self.cols != other.rows {
            return Err(LinAlgError::DimensionMismatch);
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Solves `A x = b` by Gaussian elimination with partial pivoting.
    ///
    /// # Errors
    ///
    /// [`LinAlgError::DimensionMismatch`] for non-square `A` or wrong `b`
    /// length; [`LinAlgError::Singular`] when a pivot underflows.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinAlgError> {
        if self.rows != self.cols || b.len() != self.rows {
            return Err(LinAlgError::DimensionMismatch);
        }
        let n = self.rows;
        let mut a = self.data.clone();
        let mut x = b.to_vec();
        for col in 0..n {
            // Partial pivot.
            let mut pivot = col;
            for row in col + 1..n {
                if a[row * n + col].abs() > a[pivot * n + col].abs() {
                    pivot = row;
                }
            }
            if a[pivot * n + col].abs() < 1e-300 {
                return Err(LinAlgError::Singular);
            }
            if pivot != col {
                for j in 0..n {
                    a.swap(col * n + j, pivot * n + j);
                }
                x.swap(col, pivot);
            }
            let diag = a[col * n + col];
            for row in col + 1..n {
                let factor = a[row * n + col] / diag;
                if factor == 0.0 {
                    continue;
                }
                for j in col..n {
                    a[row * n + j] -= factor * a[col * n + j];
                }
                x[row] -= factor * x[col];
            }
        }
        // Back substitution.
        for col in (0..n).rev() {
            let mut acc = x[col];
            for j in col + 1..n {
                acc -= a[col * n + j] * x[j];
            }
            x[col] = acc / a[col * n + col];
        }
        Ok(x)
    }

    /// Least-squares solution of the overdetermined system `A x ≈ b` via
    /// the normal equations `AᵀA x = Aᵀb` (adequate for the small,
    /// well-conditioned fits in this workspace).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Matrix::solve`].
    pub fn least_squares(&self, b: &[f64]) -> Result<Vec<f64>, LinAlgError> {
        if b.len() != self.rows {
            return Err(LinAlgError::DimensionMismatch);
        }
        let at = self.transpose();
        let ata = at.mul(self)?;
        let atb = at.mul_vec(b)?;
        ata.solve(&atb)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_2x2() {
        let a = Matrix::from_fn(2, 2, |i, j| [[2.0, 1.0], [1.0, 3.0]][i][j]);
        let x = a.solve(&[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve_needs_pivoting() {
        // Zero on the diagonal forces a row swap.
        let a = Matrix::from_fn(2, 2, |i, j| [[0.0, 1.0], [1.0, 0.0]][i][j]);
        let x = a.solve(&[2.0, 3.0]).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn singular_detected() {
        let a = Matrix::from_fn(2, 2, |i, j| [[1.0, 2.0], [2.0, 4.0]][i][j]);
        assert_eq!(a.solve(&[1.0, 2.0]).unwrap_err(), LinAlgError::Singular);
    }

    #[test]
    fn solve_random_5x5_round_trip() {
        let mut rng = crate::rng::Xoshiro256PlusPlus::new(3);
        let a = Matrix::from_fn(5, 5, |i, j| rng.next_f64() + if i == j { 5.0 } else { 0.0 });
        let x_true: Vec<f64> = (0..5).map(|i| i as f64 - 2.0).collect();
        let b = a.mul_vec(&x_true).unwrap();
        let x = a.solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-10);
        }
    }

    #[test]
    fn identity_is_neutral() {
        let i = Matrix::identity(3);
        let v = vec![1.0, 2.0, 3.0];
        assert_eq!(i.mul_vec(&v).unwrap(), v);
        let m = Matrix::from_fn(3, 3, |r, c| (r * 3 + c) as f64);
        assert_eq!(i.mul(&m).unwrap(), m);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_fn(2, 3, |i, j| (i * 3 + j) as f64);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn least_squares_line_fit() {
        // Fit y = 2x + 1 through noisy-free samples: exact recovery.
        let xs = [0.0, 1.0, 2.0, 3.0];
        let a = Matrix::from_fn(4, 2, |i, j| if j == 0 { 1.0 } else { xs[i] });
        let b: Vec<f64> = xs.iter().map(|x| 2.0 * x + 1.0).collect();
        let coef = a.least_squares(&b).unwrap();
        assert!((coef[0] - 1.0).abs() < 1e-10);
        assert!((coef[1] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn dimension_mismatches() {
        let a = Matrix::zeros(2, 3);
        assert_eq!(
            a.mul_vec(&[1.0]).unwrap_err(),
            LinAlgError::DimensionMismatch
        );
        assert_eq!(
            a.solve(&[1.0, 2.0]).unwrap_err(),
            LinAlgError::DimensionMismatch
        );
    }
}
