//! Numerical quadrature.
//!
//! Used for pulse-energy integrals in the transient simulator (a 26 ps
//! Gaussian pump pulse carries `∫P(t)dt` joules) and for averaging
//! transmission over laser linewidths.

/// Composite Simpson integration of `f` over `[a, b]` with `n` panels
/// (`n` is rounded up to the next even number).
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// ```
/// let v = osc_math::integrate::simpson(|x: f64| x.sin(), 0.0, std::f64::consts::PI, 64);
/// assert!((v - 2.0).abs() < 1e-6);
/// ```
pub fn simpson<F: FnMut(f64) -> f64>(mut f: F, a: f64, b: f64, n: usize) -> f64 {
    assert!(n > 0, "simpson needs at least one panel");
    let n = if n.is_multiple_of(2) { n } else { n + 1 };
    let h = (b - a) / n as f64;
    let mut acc = f(a) + f(b);
    for i in 1..n {
        let x = a + h * i as f64;
        acc += if i % 2 == 1 { 4.0 } else { 2.0 } * f(x);
    }
    acc * h / 3.0
}

/// Trapezoid rule over tabulated samples `(x_i, y_i)`; the abscissae need
/// not be uniform but must be sorted ascending.
///
/// Returns 0 for fewer than two samples.
pub fn trapezoid_samples(points: &[(f64, f64)]) -> f64 {
    if points.len() < 2 {
        return 0.0;
    }
    points
        .windows(2)
        .map(|w| 0.5 * (w[1].0 - w[0].0) * (w[1].1 + w[0].1))
        .sum()
}

/// Adaptive Simpson integration to absolute tolerance `tol`.
///
/// Recursion depth is bounded; the method falls back to the best estimate
/// when the bound is hit (smooth integrands in this workspace never do).
pub fn adaptive_simpson<F: FnMut(f64) -> f64>(f: &mut F, a: f64, b: f64, tol: f64) -> f64 {
    #[allow(clippy::too_many_arguments)] // recursion state is clearest spelled out
    fn recurse<F: FnMut(f64) -> f64>(
        f: &mut F,
        a: f64,
        fa: f64,
        b: f64,
        fb: f64,
        whole: f64,
        tol: f64,
        depth: usize,
    ) -> f64 {
        let m = 0.5 * (a + b);
        let fm = f(m);
        let lm = 0.5 * (a + m);
        let rm = 0.5 * (m + b);
        let flm = f(lm);
        let frm = f(rm);
        let left = (m - a) / 6.0 * (fa + 4.0 * flm + fm);
        let right = (b - m) / 6.0 * (fm + 4.0 * frm + fb);
        let split = left + right;
        if depth == 0 || (split - whole).abs() <= 15.0 * tol {
            split + (split - whole) / 15.0
        } else {
            recurse(f, a, fa, m, fm, left, tol / 2.0, depth - 1)
                + recurse(f, m, fm, b, fb, right, tol / 2.0, depth - 1)
        }
    }
    let fa = f(a);
    let fb = f(b);
    let m = 0.5 * (a + b);
    let fm = f(m);
    let whole = (b - a) / 6.0 * (fa + 4.0 * fm + fb);
    recurse(f, a, fa, b, fb, whole, tol, 40)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simpson_polynomial_exact() {
        // Simpson is exact for cubics.
        let v = simpson(|x| x * x * x - x, 0.0, 2.0, 2);
        assert!((v - (4.0 - 2.0)).abs() < 1e-12);
    }

    #[test]
    fn simpson_rounds_odd_panels_up() {
        let v = simpson(|x| x, 0.0, 1.0, 3);
        assert!((v - 0.5).abs() < 1e-12);
    }

    #[test]
    fn simpson_gaussian_pulse_energy() {
        // A Gaussian power pulse of peak 1 and sigma s carries s*sqrt(2*pi).
        let sigma = 26e-12 / (2.0 * (2.0 * (2.0_f64).ln()).sqrt()); // FWHM 26 ps
        let energy = simpson(
            |t: f64| (-(t * t) / (2.0 * sigma * sigma)).exp(),
            -2e-10,
            2e-10,
            4000,
        );
        let expect = sigma * (2.0 * std::f64::consts::PI).sqrt();
        assert!((energy - expect).abs() / expect < 1e-6);
    }

    #[test]
    fn trapezoid_on_samples() {
        let pts = [(0.0, 0.0), (1.0, 1.0), (3.0, 1.0)];
        assert!((trapezoid_samples(&pts) - 2.5).abs() < 1e-12);
        assert_eq!(trapezoid_samples(&pts[..1]), 0.0);
    }

    #[test]
    fn adaptive_simpson_oscillatory() {
        let v = adaptive_simpson(&mut |x: f64| (10.0 * x).sin(), 0.0, 1.0, 1e-10);
        let expect = (1.0 - (10.0_f64).cos()) / 10.0;
        assert!((v - expect).abs() < 1e-8);
    }

    #[test]
    fn adaptive_simpson_matches_fixed() {
        let a = adaptive_simpson(&mut |x: f64| x.exp(), 0.0, 1.0, 1e-12);
        let b = simpson(|x: f64| x.exp(), 0.0, 1.0, 2048);
        assert!((a - b).abs() < 1e-9);
        assert!((a - (std::f64::consts::E - 1.0)).abs() < 1e-10);
    }
}
