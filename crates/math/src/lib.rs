//! # osc-math
//!
//! Numerics substrate for the optical stochastic computing reproduction.
//!
//! The Rust standard library intentionally ships no special functions, root
//! finders or optimizers, and the reproduction must stay dependency-light,
//! so this crate provides the small, well-tested numerical toolbox the rest
//! of the workspace builds on:
//!
//! - [`special`]: error functions (`erf`, `erfc`, inverse `erfc`), the
//!   Gaussian Q-function used by the paper's BER model (Eq. 9), and exact
//!   binomial coefficients for Bernstein bases.
//! - [`roots`]: bracketing (bisection, Brent) and derivative-based (Newton)
//!   scalar root finders.
//! - [`optimize`]: golden-section line search, grid-with-refinement sweeps
//!   and a compact Nelder–Mead simplex used for device calibration.
//! - [`interp`]: linear interpolation over tabulated curves.
//! - [`stats`]: streaming statistics, histograms and quantiles.
//! - [`integrate`]: composite Simpson quadrature.
//! - [`rng`]: deterministic `SplitMix64` / `Xoshiro256++` generators with
//!   uniform, Bernoulli and Gaussian sampling.
//!
//! # Example
//!
//! Solve the paper's BER target for the required signal-to-noise ratio:
//!
//! ```
//! use osc_math::special::inv_erfc;
//!
//! // BER = 0.5 * erfc(snr / (2 * sqrt(2)))  =>  snr = 2*sqrt(2)*inv_erfc(2*BER)
//! let snr = 2.0 * 2.0_f64.sqrt() * inv_erfc(2.0 * 1e-6);
//! assert!((snr - 9.507).abs() < 0.01);
//! ```

pub mod integrate;
pub mod interp;
pub mod linalg;
pub mod optimize;
pub mod rng;
pub mod roots;
pub mod special;
pub mod stats;

/// Relative or absolute closeness check used across the workspace's tests
/// and iterative algorithms.
///
/// Returns `true` when `a` and `b` differ by less than `tol` either
/// absolutely or relative to the larger magnitude.
///
/// ```
/// assert!(osc_math::approx_eq(1.0, 1.0 + 1e-12, 1e-9));
/// assert!(!osc_math::approx_eq(1.0, 1.1, 1e-3));
/// ```
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    let diff = (a - b).abs();
    if diff <= tol {
        return true;
    }
    let scale = a.abs().max(b.abs());
    diff <= tol * scale
}

/// Clamps `x` into `[lo, hi]`.
///
/// Unlike [`f64::clamp`], this never panics: if the bounds are inverted the
/// midpoint of the two is returned, which is the safest behaviour inside
/// optimizer inner loops fed by calibrated (possibly degenerate) intervals.
///
/// ```
/// assert_eq!(osc_math::clamp(5.0, 0.0, 1.0), 1.0);
/// assert_eq!(osc_math::clamp(0.5, 0.0, 1.0), 0.5);
/// ```
pub fn clamp(x: f64, lo: f64, hi: f64) -> f64 {
    if lo > hi {
        return 0.5 * (lo + hi);
    }
    x.max(lo).min(hi)
}

/// Linearly spaced grid of `n` points covering `[start, end]` inclusive.
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// ```
/// let g = osc_math::linspace(0.0, 1.0, 5);
/// assert_eq!(g, vec![0.0, 0.25, 0.5, 0.75, 1.0]);
/// ```
pub fn linspace(start: f64, end: f64, n: usize) -> Vec<f64> {
    assert!(n > 0, "linspace requires at least one point");
    if n == 1 {
        return vec![start];
    }
    let step = (end - start) / (n - 1) as f64;
    (0..n).map(|i| start + step * i as f64).collect()
}

/// Logarithmically spaced grid of `n` points covering `[start, end]`
/// inclusive; both bounds must be strictly positive.
///
/// # Panics
///
/// Panics if `n == 0` or either bound is non-positive.
///
/// ```
/// let g = osc_math::logspace(1e-6, 1e-2, 3);
/// assert!((g[1] - 1e-4).abs() < 1e-12);
/// ```
pub fn logspace(start: f64, end: f64, n: usize) -> Vec<f64> {
    assert!(
        start > 0.0 && end > 0.0,
        "logspace requires positive bounds"
    );
    linspace(start.ln(), end.ln(), n)
        .into_iter()
        .map(f64::exp)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_absolute_and_relative() {
        assert!(approx_eq(0.0, 1e-12, 1e-9));
        assert!(approx_eq(1e9, 1e9 + 1.0, 1e-6));
        assert!(!approx_eq(1.0, 2.0, 1e-6));
    }

    #[test]
    fn clamp_handles_inverted_bounds() {
        assert_eq!(clamp(3.0, 2.0, 1.0), 1.5);
    }

    #[test]
    fn linspace_endpoints_exact() {
        let g = linspace(-2.0, 7.0, 10);
        assert_eq!(g.len(), 10);
        assert_eq!(g[0], -2.0);
        assert!((g[9] - 7.0).abs() < 1e-12);
    }

    #[test]
    fn linspace_single_point() {
        assert_eq!(linspace(3.0, 9.0, 1), vec![3.0]);
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn linspace_zero_points_panics() {
        let _ = linspace(0.0, 1.0, 0);
    }

    #[test]
    fn logspace_is_geometric() {
        let g = logspace(1.0, 100.0, 3);
        assert!(approx_eq(g[1], 10.0, 1e-12));
    }
}
