//! Streaming statistics, histograms and quantiles.
//!
//! The stochastic computing experiments accumulate error statistics over
//! millions of simulated bits; [`RunningStats`] (Welford's algorithm) keeps
//! that numerically stable without storing the samples.

/// Numerically stable streaming mean/variance accumulator (Welford).
///
/// ```
/// use osc_math::stats::RunningStats;
/// let mut s = RunningStats::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     s.push(x);
/// }
/// assert_eq!(s.mean(), 2.5);
/// assert!((s.variance() - 5.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population variance (divides by n).
    pub fn population_variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let total = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / total as f64;
        let m2 =
            self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / total as f64;
        self.n = total;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Mean of a slice (0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Mean squared error between two equal-length slices.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn mse(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "mse requires equal lengths");
    if a.is_empty() {
        return 0.0;
    }
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>() / a.len() as f64
}

/// Mean absolute error between two equal-length slices.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn mae(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "mae requires equal lengths");
    if a.is_empty() {
        return 0.0;
    }
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f64>() / a.len() as f64
}

/// Linear-interpolated quantile (`q` in `[0,1]`) of an unsorted slice.
///
/// # Panics
///
/// Panics if `xs` is empty or `q` is outside `[0, 1]`.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile order must be in [0,1]");
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let t = pos - lo as f64;
        sorted[lo] * (1.0 - t) + sorted[hi] * t
    }
}

/// Fixed-width histogram over `[lo, hi)` with saturating edge bins.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo < hi, "histogram range must be non-empty");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        }
    }

    /// Adds an observation; values outside the range land in the edge bins.
    pub fn push(&mut self, x: f64) {
        let bins = self.counts.len();
        let t = (x - self.lo) / (self.hi - self.lo);
        let idx = ((t * bins as f64).floor() as i64).clamp(0, bins as i64 - 1) as usize;
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Raw bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Center of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn bin_center(&self, i: usize) -> f64 {
        assert!(i < self.counts.len());
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + (i as f64 + 0.5) * w
    }

    /// Fraction of mass in bin `i` (0 when empty).
    pub fn fraction(&self, i: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.counts[i] as f64 / self.total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_stats_basic() {
        let mut s = RunningStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.population_variance() - 4.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn running_stats_empty_is_safe() {
        let s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn running_stats_merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 3.0 + 1.0).collect();
        let mut whole = RunningStats::new();
        for &x in &data {
            whole.push(x);
        }
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &x in &data[..37] {
            a.push(x);
        }
        for &x in &data[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-12);
        assert!((a.variance() - whole.variance()).abs() < 1e-10);
    }

    #[test]
    fn running_stats_merge_with_empty() {
        let mut a = RunningStats::new();
        a.push(1.0);
        let before = a;
        a.merge(&RunningStats::new());
        assert_eq!(a, before);
        let mut e = RunningStats::new();
        e.merge(&a);
        assert_eq!(e, a);
    }

    #[test]
    fn mse_and_mae() {
        let a = [1.0, 2.0, 3.0];
        let b = [1.0, 4.0, 0.0];
        assert!((mse(&a, &b) - (0.0 + 4.0 + 9.0) / 3.0).abs() < 1e-12);
        assert!((mae(&a, &b) - (0.0 + 2.0 + 3.0) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_median_and_extremes() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(quantile(&xs, 0.5), 3.0);
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 5.0);
        assert!((quantile(&xs, 0.25) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_binning() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        for x in [0.1, 0.3, 0.35, 0.9, -5.0, 5.0] {
            h.push(x);
        }
        assert_eq!(h.counts(), &[2, 2, 0, 2]);
        assert_eq!(h.total(), 6);
        assert!((h.bin_center(0) - 0.125).abs() < 1e-12);
        assert!((h.fraction(1) - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn histogram_bad_range_panics() {
        let _ = Histogram::new(1.0, 1.0, 4);
    }
}
