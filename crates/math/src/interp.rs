//! Interpolation over tabulated curves.
//!
//! Measured device curves (e.g. literature modulator loss vs. speed) and
//! precomputed sweeps are stored as sorted `(x, y)` tables and queried
//! through [`LinearInterpolator`].

use std::fmt;

/// Error constructing an interpolator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// Fewer than two samples were supplied.
    TooFewPoints,
    /// The abscissae are not strictly increasing.
    NotStrictlyIncreasing {
        /// Index of the first offending sample.
        index: usize,
    },
    /// A coordinate was NaN or infinite.
    NonFinite,
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::TooFewPoints => write!(f, "need at least two samples"),
            InterpError::NotStrictlyIncreasing { index } => {
                write!(f, "abscissae not strictly increasing at index {index}")
            }
            InterpError::NonFinite => write!(f, "non-finite sample coordinate"),
        }
    }
}

impl std::error::Error for InterpError {}

/// Piecewise-linear interpolator over a strictly increasing grid.
///
/// Queries outside the grid are clamped to the end values (flat
/// extrapolation), which is the conservative choice for device curves.
///
/// ```
/// use osc_math::interp::LinearInterpolator;
/// let f = LinearInterpolator::new(vec![0.0, 1.0, 2.0], vec![0.0, 10.0, 0.0]).unwrap();
/// assert_eq!(f.eval(0.5), 5.0);
/// assert_eq!(f.eval(-3.0), 0.0); // clamped
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LinearInterpolator {
    xs: Vec<f64>,
    ys: Vec<f64>,
}

impl LinearInterpolator {
    /// Builds an interpolator from parallel coordinate vectors.
    ///
    /// # Errors
    ///
    /// Returns [`InterpError`] if fewer than two points are given, the
    /// abscissae are not strictly increasing, or any coordinate is
    /// non-finite.
    pub fn new(xs: Vec<f64>, ys: Vec<f64>) -> Result<Self, InterpError> {
        if xs.len() < 2 || xs.len() != ys.len() {
            return Err(InterpError::TooFewPoints);
        }
        if xs.iter().chain(ys.iter()).any(|v| !v.is_finite()) {
            return Err(InterpError::NonFinite);
        }
        for i in 1..xs.len() {
            if xs[i] <= xs[i - 1] {
                return Err(InterpError::NotStrictlyIncreasing { index: i });
            }
        }
        Ok(LinearInterpolator { xs, ys })
    }

    /// Builds an interpolator from `(x, y)` pairs, sorting them first and
    /// rejecting duplicate abscissae.
    ///
    /// # Errors
    ///
    /// Same conditions as [`LinearInterpolator::new`].
    pub fn from_pairs(mut pairs: Vec<(f64, f64)>) -> Result<Self, InterpError> {
        if pairs.iter().any(|(x, y)| !x.is_finite() || !y.is_finite()) {
            return Err(InterpError::NonFinite);
        }
        pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let (xs, ys) = pairs.into_iter().unzip();
        Self::new(xs, ys)
    }

    /// Number of samples in the table.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Whether the table is empty (never true for a constructed value).
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Domain covered by the table.
    pub fn domain(&self) -> (f64, f64) {
        (self.xs[0], *self.xs.last().unwrap())
    }

    /// Evaluates the interpolant at `x` with flat extrapolation.
    pub fn eval(&self, x: f64) -> f64 {
        let n = self.xs.len();
        if x <= self.xs[0] {
            return self.ys[0];
        }
        if x >= self.xs[n - 1] {
            return self.ys[n - 1];
        }
        // Binary search for the enclosing segment.
        let mut lo = 0usize;
        let mut hi = n - 1;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if self.xs[mid] <= x {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let t = (x - self.xs[lo]) / (self.xs[hi] - self.xs[lo]);
        self.ys[lo] + t * (self.ys[hi] - self.ys[lo])
    }

    /// Samples the interpolant on `n` uniform points across its domain.
    pub fn resample(&self, n: usize) -> Vec<(f64, f64)> {
        let (lo, hi) = self.domain();
        crate::linspace(lo, hi, n)
            .into_iter()
            .map(|x| (x, self.eval(x)))
            .collect()
    }

    /// Finds the abscissa of the minimum tabulated value (not interpolated).
    pub fn argmin(&self) -> f64 {
        let mut best = 0usize;
        for i in 1..self.ys.len() {
            if self.ys[i] < self.ys[best] {
                best = i;
            }
        }
        self.xs[best]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> LinearInterpolator {
        LinearInterpolator::new(vec![0.0, 1.0, 3.0], vec![0.0, 2.0, -2.0]).unwrap()
    }

    #[test]
    fn interpolates_within_segments() {
        let f = ramp();
        assert_eq!(f.eval(0.5), 1.0);
        assert_eq!(f.eval(2.0), 0.0);
    }

    #[test]
    fn hits_knots_exactly() {
        let f = ramp();
        assert_eq!(f.eval(0.0), 0.0);
        assert_eq!(f.eval(1.0), 2.0);
        assert_eq!(f.eval(3.0), -2.0);
    }

    #[test]
    fn clamps_outside_domain() {
        let f = ramp();
        assert_eq!(f.eval(-5.0), 0.0);
        assert_eq!(f.eval(99.0), -2.0);
    }

    #[test]
    fn from_pairs_sorts() {
        let f = LinearInterpolator::from_pairs(vec![(2.0, 4.0), (0.0, 0.0), (1.0, 1.0)]).unwrap();
        assert_eq!(f.eval(1.5), 2.5);
    }

    #[test]
    fn rejects_duplicates() {
        let err = LinearInterpolator::new(vec![0.0, 0.0, 1.0], vec![1.0, 2.0, 3.0]).unwrap_err();
        assert_eq!(err, InterpError::NotStrictlyIncreasing { index: 1 });
    }

    #[test]
    fn rejects_nan() {
        assert_eq!(
            LinearInterpolator::new(vec![0.0, f64::NAN], vec![0.0, 1.0]).unwrap_err(),
            InterpError::NonFinite
        );
    }

    #[test]
    fn rejects_single_point() {
        assert_eq!(
            LinearInterpolator::new(vec![0.0], vec![0.0]).unwrap_err(),
            InterpError::TooFewPoints
        );
    }

    #[test]
    fn resample_covers_domain() {
        let pts = ramp().resample(5);
        assert_eq!(pts.len(), 5);
        assert_eq!(pts[0].0, 0.0);
        assert_eq!(pts[4].0, 3.0);
    }

    #[test]
    fn argmin_of_v_shape() {
        let f =
            LinearInterpolator::new(vec![0.0, 1.0, 2.0, 3.0], vec![5.0, 1.0, 0.5, 4.0]).unwrap();
        assert_eq!(f.argmin(), 2.0);
    }
}
