//! Deterministic pseudo-random number generation.
//!
//! Every stochastic experiment in the workspace must be reproducible from a
//! seed, so the internal generators live here rather than behind the `rand`
//! facade: [`SplitMix64`] for seeding/stream-splitting and
//! [`Xoshiro256PlusPlus`] as the workhorse generator, plus uniform,
//! Bernoulli and Gaussian sampling helpers.

/// SplitMix64: tiny, fast generator mainly used to expand seeds.
///
/// ```
/// use osc_math::rng::SplitMix64;
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The raw 64-bit state word. Together with [`SplitMix64::new`]
    /// (which installs a seed as the state verbatim) this round-trips the
    /// generator, so batch engines can lift lane states into vector
    /// registers and write them back after a drain.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// The state after exactly `steps` calls to
    /// [`SplitMix64::next_u64`] — the state walks an arithmetic sequence,
    /// so jumping is a single multiply.
    pub fn jumped(&self, steps: u64) -> Self {
        SplitMix64 {
            state: self
                .state
                .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(steps)),
        }
    }
}

/// Xoshiro256++: high-quality 256-bit state generator.
///
/// Deterministic, seedable, `Copy`-cheap; used wherever the workspace draws
/// stochastic bit-streams or Gaussian receiver noise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    /// Seeds the generator by expanding `seed` through SplitMix64 (the
    /// reference-recommended procedure; avoids all-zero states).
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256PlusPlus {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform double in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform double in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, n)` via Lemire rejection (unbiased).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(n as u128);
            let lo = m as u64;
            if lo < n {
                let threshold = n.wrapping_neg() % n;
                if lo < threshold {
                    continue;
                }
            }
            return (m >> 64) as u64;
        }
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0,1]`).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Standard Gaussian via the Marsaglia polar method.
    pub fn gaussian(&mut self) -> f64 {
        loop {
            let u = 2.0 * self.next_f64() - 1.0;
            let v = 2.0 * self.next_f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }

    /// Gaussian with the given mean and standard deviation.
    pub fn gaussian_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.gaussian()
    }

    /// Fills `out` with uniform doubles in `[0, 1)`, in draw order — the
    /// batched form of [`Xoshiro256PlusPlus::next_f64`] for hot loops that
    /// consume noise one block at a time.
    pub fn fill_f64(&mut self, out: &mut [f64]) {
        for x in out {
            *x = self.next_f64();
        }
    }

    /// Fills `out` with standard Gaussian draws, in draw order — the
    /// batched form of [`Xoshiro256PlusPlus::gaussian`]. Batching keeps the
    /// draw sequence identical to repeated scalar calls, so seeded
    /// experiments reproduce exactly whichever form the caller uses.
    pub fn fill_gaussian(&mut self, out: &mut [f64]) {
        for x in out {
            *x = self.gaussian();
        }
    }

    /// Derives an independent child generator (for per-thread streams).
    pub fn split(&mut self) -> Self {
        Xoshiro256PlusPlus::new(self.next_u64() ^ 0xA5A5_5A5A_DEAD_BEEF)
    }

    /// The state this generator will hold after exactly `steps` calls to
    /// [`Xoshiro256PlusPlus::next_u64`], computed in O(256²) bit-ops
    /// instead of O(steps).
    ///
    /// The xoshiro256++ state transition is linear over GF(2) (the `++`
    /// scrambler only shapes the *output*), so `steps` applications
    /// collapse into one 256×256 bit-matrix multiply. Matrices are built
    /// by square-and-multiply and cached per step count, which makes
    /// jumping over a whole stochastic stream (so that consecutive
    /// streams can be generated as independent, instruction-level
    /// parallel chains) cost ~1 µs rather than one RNG draw per bit.
    pub fn jumped(&self, steps: usize) -> Self {
        if steps == 0 {
            return self.clone();
        }
        let matrix = jump::matrix_for(steps);
        let mut out = [0u64; 4];
        for (r, row) in matrix.iter().enumerate() {
            let acc = (row[0] & self.s[0])
                ^ (row[1] & self.s[1])
                ^ (row[2] & self.s[2])
                ^ (row[3] & self.s[3]);
            out[r / 64] |= u64::from(acc.count_ones() & 1) << (r % 64);
        }
        Xoshiro256PlusPlus { s: out }
    }

    /// The raw 256-bit state, `s[0]..s[3]` — the plumbing the SIMD lane
    /// engines use to hoist several generators into vector registers
    /// (state word `i` of `L` generators forms one SIMD vector). Pair
    /// with [`Xoshiro256PlusPlus::from_state_words`] to round-trip.
    pub fn state_words(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from raw state words, e.g. after a SIMD lane
    /// engine advanced them. The words must come from a valid generator
    /// (in particular, not all zero — the all-zero state is a fixed
    /// point that only `state_words` on a broken generator could yield).
    pub fn from_state_words(s: [u64; 4]) -> Self {
        debug_assert!(s.iter().any(|&w| w != 0), "all-zero xoshiro state");
        Xoshiro256PlusPlus { s }
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

/// GF(2) jump matrices for [`Xoshiro256PlusPlus::jumped`].
mod jump {
    use std::collections::HashMap;
    use std::sync::{Arc, Mutex, OnceLock};

    /// One 256-bit row per output state bit: row `r` dotted (AND + parity)
    /// with the input state gives bit `r` of the advanced state.
    pub(super) type Matrix = [[u64; 4]; 256];

    /// Column-major form used while building (column `c` = image of basis
    /// state `e_c`), since multiply-from-columns is a sparse XOR.
    type Cols = Vec<[u64; 4]>;

    fn get_bit(v: &[u64; 4], i: usize) -> bool {
        v[i / 64] >> (i % 64) & 1 == 1
    }

    /// One `next_u64` state transition (the linear part of xoshiro256++).
    fn step_state(s: &[u64; 4]) -> [u64; 4] {
        let (s0, s1, s2, s3) = (s[0], s[1], s[2], s[3]);
        let t = s1 << 17;
        let s2b = s2 ^ s0;
        let s3b = s3 ^ s1;
        let s1b = s1 ^ s2b;
        let s0b = s0 ^ s3b;
        let s2c = s2b ^ t;
        let s3c = s3b.rotate_left(45);
        [s0b, s1b, s2c, s3c]
    }

    /// `m · v` with `m` column-major: XOR of the columns selected by `v`.
    fn apply_cols(m: &Cols, v: &[u64; 4]) -> [u64; 4] {
        let mut out = [0u64; 4];
        for (c, col) in m.iter().enumerate() {
            if get_bit(v, c) {
                out[0] ^= col[0];
                out[1] ^= col[1];
                out[2] ^= col[2];
                out[3] ^= col[3];
            }
        }
        out
    }

    fn identity() -> Cols {
        (0..256)
            .map(|c| {
                let mut v = [0u64; 4];
                v[c / 64] = 1 << (c % 64);
                v
            })
            .collect()
    }

    fn multiply(a: &Cols, b: &Cols) -> Cols {
        // (a·b) column c = a · (b's column c).
        b.iter().map(|col| apply_cols(a, col)).collect()
    }

    /// Transposes columns into the row form the hot `jumped` loop wants.
    fn to_rows(cols: &Cols) -> Box<Matrix> {
        let mut rows = Box::new([[0u64; 4]; 256]);
        for (c, col) in cols.iter().enumerate() {
            for (r, row) in rows.iter_mut().enumerate() {
                if get_bit(col, r) {
                    row[c / 64] |= 1 << (c % 64);
                }
            }
        }
        rows
    }

    /// Cached `M^steps` in row form. Built once per distinct step count
    /// (square-and-multiply, ~1 ms) and shared process-wide.
    pub(super) fn matrix_for(steps: usize) -> Arc<Matrix> {
        static CACHE: OnceLock<Mutex<HashMap<usize, Arc<Matrix>>>> = OnceLock::new();
        let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        if let Some(m) = cache.lock().expect("jump cache lock").get(&steps) {
            return Arc::clone(m);
        }
        // Single-step matrix, column-major.
        let single: Cols = identity().iter().map(step_state).collect();
        let mut acc: Option<Cols> = None;
        let mut power = single;
        let mut n = steps;
        while n > 0 {
            if n & 1 == 1 {
                acc = Some(match acc {
                    None => power.clone(),
                    Some(a) => multiply(&power, &a),
                });
            }
            n >>= 1;
            if n > 0 {
                power = multiply(&power, &power);
            }
        }
        let rows: Arc<Matrix> = Arc::from(to_rows(&acc.expect("steps > 0")));
        cache
            .lock()
            .expect("jump cache lock")
            .insert(steps, Arc::clone(&rows));
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::RunningStats;

    #[test]
    fn splitmix_reference_vector() {
        // Reference values for seed 1234567 from the public-domain C code.
        let mut g = SplitMix64::new(1234567);
        let a = g.next_u64();
        let b = g.next_u64();
        assert_ne!(a, b);
        // Determinism across fresh instances.
        let mut g2 = SplitMix64::new(1234567);
        assert_eq!(g2.next_u64(), a);
        assert_eq!(g2.next_u64(), b);
    }

    #[test]
    fn xoshiro_deterministic() {
        let mut a = Xoshiro256PlusPlus::new(99);
        let mut b = Xoshiro256PlusPlus::new(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Xoshiro256PlusPlus::new(1);
        let mut b = Xoshiro256PlusPlus::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut g = Xoshiro256PlusPlus::new(7);
        for _ in 0..10_000 {
            let x = g.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_mean_and_variance() {
        let mut g = Xoshiro256PlusPlus::new(1234);
        let mut s = RunningStats::new();
        for _ in 0..200_000 {
            s.push(g.next_f64());
        }
        assert!((s.mean() - 0.5).abs() < 0.005);
        assert!((s.variance() - 1.0 / 12.0).abs() < 0.002);
    }

    #[test]
    fn below_is_unbiased_small_n() {
        let mut g = Xoshiro256PlusPlus::new(42);
        let mut counts = [0u64; 5];
        let draws = 250_000;
        for _ in 0..draws {
            counts[g.below(5) as usize] += 1;
        }
        for &c in &counts {
            let f = c as f64 / draws as f64;
            assert!((f - 0.2).abs() < 0.01, "bucket fraction {f}");
        }
    }

    #[test]
    #[should_panic(expected = "meaningless")]
    fn below_zero_panics() {
        let _ = Xoshiro256PlusPlus::new(1).below(0);
    }

    #[test]
    fn bernoulli_frequency() {
        let mut g = Xoshiro256PlusPlus::new(5);
        let p = 0.3;
        let hits = (0..100_000).filter(|_| g.bernoulli(p)).count();
        assert!((hits as f64 / 1e5 - p).abs() < 0.01);
    }

    #[test]
    fn bernoulli_clamps() {
        let mut g = Xoshiro256PlusPlus::new(5);
        assert!(!g.bernoulli(-1.0));
        assert!(g.bernoulli(2.0));
    }

    #[test]
    fn batched_fills_match_scalar_draws() {
        let mut scalar = Xoshiro256PlusPlus::new(2718);
        let mut batched = scalar.clone();
        let expect_u: Vec<f64> = (0..100).map(|_| scalar.next_f64()).collect();
        let expect_g: Vec<f64> = (0..100).map(|_| scalar.gaussian()).collect();
        let mut got_u = vec![0.0; 100];
        let mut got_g = vec![0.0; 100];
        batched.fill_f64(&mut got_u);
        batched.fill_gaussian(&mut got_g);
        assert_eq!(got_u, expect_u);
        assert_eq!(got_g, expect_g);
    }

    #[test]
    fn gaussian_moments() {
        let mut g = Xoshiro256PlusPlus::new(321);
        let mut s = RunningStats::new();
        for _ in 0..200_000 {
            s.push(g.gaussian());
        }
        assert!(s.mean().abs() < 0.01);
        assert!((s.std_dev() - 1.0).abs() < 0.01);
    }

    #[test]
    fn gaussian_with_scaling() {
        let mut g = Xoshiro256PlusPlus::new(11);
        let mut s = RunningStats::new();
        for _ in 0..100_000 {
            s.push(g.gaussian_with(3.0, 0.5));
        }
        assert!((s.mean() - 3.0).abs() < 0.01);
        assert!((s.std_dev() - 0.5).abs() < 0.01);
    }

    #[test]
    fn jumped_matches_sequential_draws() {
        // M^steps must reproduce exactly `steps` state transitions, for
        // powers of two, composites and tiny counts alike.
        for &steps in &[1usize, 2, 3, 63, 64, 65, 257, 512, 1000] {
            let start = Xoshiro256PlusPlus::new(0xFEED ^ steps as u64);
            let jumped = start.jumped(steps);
            let mut walked = start.clone();
            for _ in 0..steps {
                walked.next_u64();
            }
            assert_eq!(jumped, walked, "steps {steps}");
            // And the draw sequence continues identically.
            assert_eq!(jumped.clone().next_u64(), walked.next_u64());
        }
    }

    #[test]
    fn state_words_round_trip() {
        let mut g = Xoshiro256PlusPlus::new(314);
        let _ = g.next_u64();
        let mut rebuilt = Xoshiro256PlusPlus::from_state_words(g.state_words());
        for _ in 0..16 {
            assert_eq!(rebuilt.next_u64(), g.next_u64());
        }
    }

    #[test]
    fn jumped_zero_is_identity() {
        let g = Xoshiro256PlusPlus::new(5);
        assert_eq!(g.jumped(0), g);
    }

    #[test]
    fn split_streams_are_uncorrelated() {
        let mut parent = Xoshiro256PlusPlus::new(2024);
        let mut child = parent.split();
        // Correlation of 10k pairs should be near zero.
        let n = 10_000;
        let (mut sx, mut sy, mut sxy, mut sxx, mut syy) = (0.0, 0.0, 0.0, 0.0, 0.0);
        for _ in 0..n {
            let x = parent.next_f64();
            let y = child.next_f64();
            sx += x;
            sy += y;
            sxy += x * y;
            sxx += x * x;
            syy += y * y;
        }
        let nf = n as f64;
        let cov = sxy / nf - (sx / nf) * (sy / nf);
        let vx = sxx / nf - (sx / nf).powi(2);
        let vy = syy / nf - (sy / nf).powi(2);
        let corr = cov / (vx * vy).sqrt();
        assert!(corr.abs() < 0.05, "corr={corr}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut g = Xoshiro256PlusPlus::new(77);
        let mut v: Vec<u32> = (0..50).collect();
        g.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
