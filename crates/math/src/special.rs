//! Special functions: error function family, Gaussian tail probabilities,
//! and binomial coefficients.
//!
//! The BER model of the paper (Eq. 9) is `BER = 0.5 * erfc(SNR / (2*sqrt(2)))`
//! for on/off-keyed probe signals; inverting it for a target BER is the core
//! of the minimum-laser-power design methods, so [`erfc`] and [`inv_erfc`]
//! are the most heavily exercised routines in the workspace.

/// The constant `2/sqrt(pi)`, the derivative of `erf` at zero.
pub const TWO_OVER_SQRT_PI: f64 = std::f64::consts::FRAC_2_SQRT_PI;

/// Chebyshev coefficients for the complementary error function fit used by
/// [`erfc`]; accurate to roughly 1e-10 relative error over the full range.
const ERFC_COF: [f64; 28] = [
    -1.3026537197817094,
    6.419_697_923_564_902e-1,
    1.9476473204185836e-2,
    -9.561_514_786_808_63e-3,
    -9.46595344482036e-4,
    3.66839497852761e-4,
    4.2523324806907e-5,
    -2.0278578112534e-5,
    -1.624290004647e-6,
    1.303655835580e-6,
    1.5626441722e-8,
    -8.5238095915e-8,
    6.529054439e-9,
    5.059343495e-9,
    -9.91364156e-10,
    -2.27365122e-10,
    9.6467911e-11,
    2.394038e-12,
    -6.886027e-12,
    8.94487e-13,
    3.13092e-13,
    -1.12708e-13,
    3.81e-16,
    7.106e-15,
    -1.523e-15,
    -9.4e-17,
    1.21e-16,
    -2.8e-17,
];

/// Complementary error function `erfc(x) = 1 - erf(x)`.
///
/// Implemented with a Chebyshev fit on a transformed argument (the classic
/// `erfcc` routine), giving ~1e-10 relative accuracy — far tighter than any
/// device tolerance in the photonic models.
///
/// ```
/// assert!((osc_math::special::erfc(0.0) - 1.0).abs() < 1e-12);
/// assert!(osc_math::special::erfc(10.0) < 1e-40);
/// ```
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 2.0 / (2.0 + z);
    let ty = 4.0 * t - 2.0;
    let mut d = 0.0_f64;
    let mut dd = 0.0_f64;
    for j in (1..ERFC_COF.len()).rev() {
        let tmp = d;
        d = ty * d - dd + ERFC_COF[j];
        dd = tmp;
    }
    let ans = t * (-z * z + 0.5 * (ERFC_COF[0] + ty * d) - dd).exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Error function `erf(x)`.
///
/// ```
/// assert!((osc_math::special::erf(1.0) - 0.8427007929497149).abs() < 1e-9);
/// ```
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

/// Inverse complementary error function: returns `x` such that
/// `erfc(x) == p` for `p` in `(0, 2)`.
///
/// Uses a rational initial guess followed by two Halley refinement steps;
/// the result round-trips through [`erfc`] to ~1e-12 relative accuracy for
/// the BER range the paper uses (1e-2 down to 1e-9).
///
/// # Panics
///
/// Panics if `p` is outside the open interval `(0, 2)`.
///
/// ```
/// use osc_math::special::{erfc, inv_erfc};
/// let x = inv_erfc(2e-6);
/// assert!((erfc(x) - 2e-6).abs() / 2e-6 < 1e-9);
/// ```
pub fn inv_erfc(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 2.0,
        "inv_erfc argument must lie in (0, 2), got {p}"
    );
    let pp = if p < 1.0 { p } else { 2.0 - p };
    let t = (-2.0 * (pp / 2.0).ln()).sqrt();
    let mut x = -std::f64::consts::FRAC_1_SQRT_2
        * ((2.30753 + t * 0.27061) / (1.0 + t * (0.99229 + t * 0.04481)) - t);
    for _ in 0..2 {
        let err = erfc(x) - pp;
        x += err / (TWO_OVER_SQRT_PI * (-x * x).exp() - x * err);
    }
    if p < 1.0 {
        x
    } else {
        -x
    }
}

/// Inverse error function: returns `x` such that `erf(x) == y` for
/// `y` in `(-1, 1)`.
///
/// ```
/// use osc_math::special::{erf, inv_erf};
/// assert!((erf(inv_erf(0.5)) - 0.5).abs() < 1e-12);
/// ```
pub fn inv_erf(y: f64) -> f64 {
    inv_erfc(1.0 - y)
}

/// Gaussian tail probability `Q(x) = P[N(0,1) > x] = 0.5 * erfc(x/sqrt(2))`.
///
/// ```
/// assert!((osc_math::special::gaussian_q(0.0) - 0.5).abs() < 1e-12);
/// ```
pub fn gaussian_q(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

/// Inverse Gaussian tail probability: `x` such that `Q(x) == p`.
///
/// # Panics
///
/// Panics if `p` is outside `(0, 1)`.
pub fn inv_gaussian_q(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "inv_gaussian_q needs p in (0,1)");
    std::f64::consts::SQRT_2 * inv_erfc(2.0 * p)
}

/// Standard normal cumulative distribution function.
pub fn normal_cdf(x: f64) -> f64 {
    1.0 - gaussian_q(x)
}

/// Standard normal probability density function.
pub fn normal_pdf(x: f64) -> f64 {
    (-(x * x) / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Exact binomial coefficient C(n, k) as `u128`.
///
/// Exact for every Bernstein degree the reproduction can reasonably use
/// (overflow-free well past n = 120 for central coefficients up to u128
/// limits; computed with interleaved division so intermediates stay exact).
///
/// # Panics
///
/// Panics on internal overflow (n larger than ~128 with central k).
///
/// ```
/// assert_eq!(osc_math::special::binomial(6, 3), 20);
/// assert_eq!(osc_math::special::binomial(16, 8), 12870);
/// ```
pub fn binomial(n: u32, k: u32) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k as u128 {
        acc = acc
            .checked_mul(n as u128 - i)
            .expect("binomial coefficient overflowed u128");
        acc /= i + 1;
    }
    acc
}

/// Binomial coefficient as `f64`, for use inside polynomial evaluation
/// where the result immediately multiplies other floats.
pub fn binomial_f64(n: u32, k: u32) -> f64 {
    binomial(n, k) as f64
}

/// Natural log of the factorial, via Stirling series for large arguments
/// and exact accumulation for small ones. Used for binomial tail bounds in
/// stream-length analysis.
pub fn ln_factorial(n: u64) -> f64 {
    if n < 2 {
        return 0.0;
    }
    if n < 64 {
        return (2..=n).map(|i| (i as f64).ln()).sum();
    }
    let x = n as f64;
    // Stirling series with three correction terms.
    x * x.ln() - x + 0.5 * (2.0 * std::f64::consts::PI * x).ln() + 1.0 / (12.0 * x)
        - 1.0 / (360.0 * x.powi(3))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference erf values from Abramowitz & Stegun, Table 7.1.
    const ERF_TABLE: [(f64, f64); 8] = [
        (0.0, 0.0),
        (0.1, 0.1124629160),
        (0.5, 0.5204998778),
        (1.0, 0.8427007929),
        (1.5, 0.9661051465),
        (2.0, 0.9953222650),
        (3.0, 0.9999779095),
        (4.0, 0.9999999846),
    ];

    #[test]
    fn erf_matches_reference_table() {
        for &(x, want) in &ERF_TABLE {
            let got = erf(x);
            assert!((got - want).abs() < 5e-10, "erf({x}) = {got}, want {want}");
        }
    }

    #[test]
    fn erf_is_odd() {
        for &(x, _) in &ERF_TABLE {
            assert!((erf(-x) + erf(x)).abs() < 1e-12);
        }
    }

    #[test]
    fn erfc_complements_erf() {
        for x in [-3.0, -1.0, 0.0, 0.3, 1.7, 4.2] {
            assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn erfc_deep_tail_positive_and_tiny() {
        let v = erfc(6.0);
        assert!(v > 0.0 && v < 1e-15);
        // Known value: erfc(6) = 2.1519736712498913e-17
        assert!((v - 2.1519736712498913e-17).abs() / 2.1519736712498913e-17 < 1e-6);
    }

    #[test]
    fn inv_erfc_round_trips_across_ber_range() {
        for p in [2e-2, 2e-4, 2e-6, 2e-8, 0.5, 1.0, 1.5] {
            let x = inv_erfc(p);
            let back = erfc(x);
            assert!(
                (back - p).abs() / p < 1e-9,
                "round trip failed for p={p}: x={x}, erfc(x)={back}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "must lie in (0, 2)")]
    fn inv_erfc_rejects_out_of_range() {
        let _ = inv_erfc(2.5);
    }

    #[test]
    fn gaussian_q_known_values() {
        // Q(1.2815515655) ~= 0.10
        assert!((gaussian_q(1.2815515655) - 0.10).abs() < 1e-9);
        // Q(3.0902323062) ~= 1e-3
        assert!((gaussian_q(3.0902323062) - 1e-3).abs() < 1e-11);
    }

    #[test]
    fn inv_gaussian_q_round_trip() {
        for p in [0.4, 0.1, 1e-3, 1e-6] {
            assert!((gaussian_q(inv_gaussian_q(p)) - p).abs() / p < 1e-9);
        }
    }

    #[test]
    fn normal_cdf_symmetry() {
        for x in [0.0, 0.5, 1.0, 2.5] {
            assert!((normal_cdf(x) + normal_cdf(-x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn normal_pdf_peak() {
        assert!((normal_pdf(0.0) - 0.3989422804014327).abs() < 1e-12);
    }

    #[test]
    fn binomial_small_cases() {
        assert_eq!(binomial(0, 0), 1);
        assert_eq!(binomial(5, 0), 1);
        assert_eq!(binomial(5, 5), 1);
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(5, 6), 0);
    }

    #[test]
    fn binomial_row_sums_to_power_of_two() {
        for n in [4u32, 10, 20, 30] {
            let sum: u128 = (0..=n).map(|k| binomial(n, k)).sum();
            assert_eq!(sum, 1u128 << n);
        }
    }

    #[test]
    fn binomial_pascal_identity() {
        for n in 1..25u32 {
            for k in 1..n {
                assert_eq!(binomial(n, k), binomial(n - 1, k - 1) + binomial(n - 1, k));
            }
        }
    }

    #[test]
    fn ln_factorial_matches_exact_small() {
        let exact_10 = (3628800.0_f64).ln();
        assert!((ln_factorial(10) - exact_10).abs() < 1e-10);
    }

    #[test]
    fn ln_factorial_stirling_continuity() {
        // The switch between exact and Stirling at n=64 must be seamless.
        let a = ln_factorial(63) + (64.0_f64).ln();
        let b = ln_factorial(64);
        assert!((a - b).abs() < 1e-8);
    }

    #[test]
    fn snr_for_ber_target_matches_paper_scale() {
        // Eq. (9): BER = 0.5*erfc(SNR/(2 sqrt 2)). For BER 1e-6 the required
        // SNR is ~9.51; for 1e-2 it is ~4.65 (the source of the paper's
        // "50% power reduction" claim in Fig. 6(b)).
        let snr6 = 2.0 * std::f64::consts::SQRT_2 * inv_erfc(2e-6);
        let snr2 = 2.0 * std::f64::consts::SQRT_2 * inv_erfc(2e-2);
        assert!((snr6 - 9.507).abs() < 0.01, "snr6={snr6}");
        assert!((snr2 - 4.652).abs() < 0.01, "snr2={snr2}");
        assert!((snr2 / snr6 - 0.489).abs() < 0.01);
    }
}
