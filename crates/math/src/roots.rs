//! Scalar root finding: bisection, Newton–Raphson and Brent's method.
//!
//! The design methods of the paper repeatedly invert monotone physical maps
//! (e.g. "which pump power parks the filter on λ0?", "which probe power hits
//! the BER target?"); these solvers are the machinery behind those
//! inversions.

use std::fmt;

/// Error produced by the root finders.
#[derive(Debug, Clone, PartialEq)]
pub enum FindRootError {
    /// The supplied interval does not bracket a sign change.
    NotBracketed {
        /// f evaluated at the left end.
        f_lo: f64,
        /// f evaluated at the right end.
        f_hi: f64,
    },
    /// The iteration budget was exhausted before convergence.
    NoConvergence {
        /// Best estimate when the budget ran out.
        best: f64,
        /// Residual |f(best)|.
        residual: f64,
    },
    /// A non-finite value was encountered.
    NonFinite,
}

impl fmt::Display for FindRootError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FindRootError::NotBracketed { f_lo, f_hi } => write!(
                f,
                "interval does not bracket a root (f(lo)={f_lo}, f(hi)={f_hi})"
            ),
            FindRootError::NoConvergence { best, residual } => write!(
                f,
                "root finder failed to converge (best={best}, residual={residual})"
            ),
            FindRootError::NonFinite => write!(f, "non-finite value during root finding"),
        }
    }
}

impl std::error::Error for FindRootError {}

/// Default tolerance used by the convenience wrappers.
pub const DEFAULT_TOL: f64 = 1e-12;
/// Default iteration budget.
pub const DEFAULT_MAX_ITER: usize = 200;

/// Bisection on `[lo, hi]`; requires `f(lo)` and `f(hi)` to have opposite
/// signs.
///
/// Robust and guaranteed to converge linearly; used when monotonicity is
/// known but smoothness is not (e.g. piecewise device look-ups).
///
/// # Errors
///
/// [`FindRootError::NotBracketed`] if there is no sign change,
/// [`FindRootError::NonFinite`] on NaN/inf evaluations.
///
/// ```
/// let r = osc_math::roots::bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-12, 200).unwrap();
/// assert!((r - 2.0_f64.sqrt()).abs() < 1e-10);
/// ```
pub fn bisect<F: FnMut(f64) -> f64>(
    mut f: F,
    mut lo: f64,
    mut hi: f64,
    tol: f64,
    max_iter: usize,
) -> Result<f64, FindRootError> {
    let mut f_lo = f(lo);
    let f_hi = f(hi);
    if !f_lo.is_finite() || !f_hi.is_finite() {
        return Err(FindRootError::NonFinite);
    }
    if f_lo == 0.0 {
        return Ok(lo);
    }
    if f_hi == 0.0 {
        return Ok(hi);
    }
    if f_lo.signum() == f_hi.signum() {
        return Err(FindRootError::NotBracketed { f_lo, f_hi });
    }
    for _ in 0..max_iter {
        let mid = 0.5 * (lo + hi);
        let f_mid = f(mid);
        if !f_mid.is_finite() {
            return Err(FindRootError::NonFinite);
        }
        if f_mid == 0.0 || (hi - lo).abs() < tol * (1.0 + mid.abs()) {
            return Ok(mid);
        }
        if f_mid.signum() == f_lo.signum() {
            lo = mid;
            f_lo = f_mid;
        } else {
            hi = mid;
        }
    }
    let best = 0.5 * (lo + hi);
    Err(FindRootError::NoConvergence {
        best,
        residual: f(best).abs(),
    })
}

/// Newton–Raphson with analytic derivative; falls back on halving the step
/// when an iterate leaves `[lo, hi]`.
///
/// # Errors
///
/// [`FindRootError::NoConvergence`] when the budget is exhausted,
/// [`FindRootError::NonFinite`] on NaN/inf evaluations.
///
/// ```
/// let r = osc_math::roots::newton(
///     |x| (x * x - 2.0, 2.0 * x),
///     1.0,
///     0.0,
///     2.0,
///     1e-14,
///     100,
/// )
/// .unwrap();
/// assert!((r - 2.0_f64.sqrt()).abs() < 1e-12);
/// ```
pub fn newton<F: FnMut(f64) -> (f64, f64)>(
    mut f_df: F,
    x0: f64,
    lo: f64,
    hi: f64,
    tol: f64,
    max_iter: usize,
) -> Result<f64, FindRootError> {
    let mut x = x0;
    for _ in 0..max_iter {
        let (fx, dfx) = f_df(x);
        if !fx.is_finite() || !dfx.is_finite() {
            return Err(FindRootError::NonFinite);
        }
        if fx.abs() < tol {
            return Ok(x);
        }
        let mut step = if dfx.abs() > f64::MIN_POSITIVE {
            fx / dfx
        } else {
            // Degenerate derivative: nudge by the interval scale.
            (hi - lo) * 0.01 * fx.signum()
        };
        let mut next = x - step;
        // Keep the iterate inside the trust interval by damping.
        let mut damping = 0;
        while (next < lo || next > hi) && damping < 60 {
            step *= 0.5;
            next = x - step;
            damping += 1;
        }
        if (next - x).abs() < tol * (1.0 + x.abs()) {
            return Ok(next);
        }
        x = next;
    }
    let residual = f_df(x).0.abs();
    Err(FindRootError::NoConvergence { best: x, residual })
}

/// Brent's method: inverse-quadratic interpolation guarded by bisection.
///
/// The workhorse solver — superlinear on smooth transmission curves yet as
/// robust as bisection. Requires a bracketing interval.
///
/// # Errors
///
/// Same conditions as [`bisect`].
///
/// ```
/// let r = osc_math::roots::brent(|x| x.cos() - x, 0.0, 1.0, 1e-14, 100).unwrap();
/// assert!((r - 0.7390851332151607).abs() < 1e-12);
/// ```
pub fn brent<F: FnMut(f64) -> f64>(
    mut f: F,
    a0: f64,
    b0: f64,
    tol: f64,
    max_iter: usize,
) -> Result<f64, FindRootError> {
    let mut a = a0;
    let mut b = b0;
    let mut fa = f(a);
    let mut fb = f(b);
    if !fa.is_finite() || !fb.is_finite() {
        return Err(FindRootError::NonFinite);
    }
    if fa == 0.0 {
        return Ok(a);
    }
    if fb == 0.0 {
        return Ok(b);
    }
    if fa.signum() == fb.signum() {
        return Err(FindRootError::NotBracketed { f_lo: fa, f_hi: fb });
    }
    let mut c = a;
    let mut fc = fa;
    let mut d = b - a;
    let mut e = d;
    for _ in 0..max_iter {
        if fb.abs() > fc.abs() {
            // Ensure b is the best estimate.
            a = b;
            b = c;
            c = a;
            fa = fb;
            fb = fc;
            fc = fa;
        }
        let tol1 = 2.0 * f64::EPSILON * b.abs() + 0.5 * tol;
        let xm = 0.5 * (c - b);
        if xm.abs() <= tol1 || fb == 0.0 {
            return Ok(b);
        }
        if e.abs() >= tol1 && fa.abs() > fb.abs() {
            // Attempt inverse quadratic interpolation / secant.
            let s = fb / fa;
            let (mut p, mut q);
            if a == c {
                p = 2.0 * xm * s;
                q = 1.0 - s;
            } else {
                let q0 = fa / fc;
                let r = fb / fc;
                p = s * (2.0 * xm * q0 * (q0 - r) - (b - a) * (r - 1.0));
                q = (q0 - 1.0) * (r - 1.0) * (s - 1.0);
            }
            if p > 0.0 {
                q = -q;
            }
            p = p.abs();
            let min1 = 3.0 * xm * q - (tol1 * q).abs();
            let min2 = (e * q).abs();
            if 2.0 * p < min1.min(min2) {
                e = d;
                d = p / q;
            } else {
                d = xm;
                e = d;
            }
        } else {
            d = xm;
            e = d;
        }
        a = b;
        fa = fb;
        if d.abs() > tol1 {
            b += d;
        } else {
            b += tol1.copysign(xm);
        }
        fb = f(b);
        if !fb.is_finite() {
            return Err(FindRootError::NonFinite);
        }
        if fb.signum() == fc.signum() {
            c = a;
            fc = fa;
            d = b - a;
            e = d;
        }
    }
    Err(FindRootError::NoConvergence {
        best: b,
        residual: fb.abs(),
    })
}

/// Expands an interval geometrically around `[lo, hi]` until it brackets a
/// sign change of `f`, up to `max_expansions` doublings.
///
/// Returns the bracketing interval, or `None` if expansion failed.
pub fn expand_bracket<F: FnMut(f64) -> f64>(
    mut f: F,
    mut lo: f64,
    mut hi: f64,
    max_expansions: usize,
) -> Option<(f64, f64)> {
    let mut f_lo = f(lo);
    let mut f_hi = f(hi);
    for _ in 0..max_expansions {
        if f_lo.is_finite() && f_hi.is_finite() && f_lo.signum() != f_hi.signum() {
            return Some((lo, hi));
        }
        let width = hi - lo;
        if f_lo.abs() < f_hi.abs() {
            lo -= width;
            f_lo = f(lo);
        } else {
            hi += width;
            f_hi = f(hi);
        }
    }
    if f_lo.is_finite() && f_hi.is_finite() && f_lo.signum() != f_hi.signum() {
        Some((lo, hi))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisect_finds_sqrt2() {
        let r = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-13, 300).unwrap();
        assert!((r - std::f64::consts::SQRT_2).abs() < 1e-10);
    }

    #[test]
    fn bisect_detects_missing_bracket() {
        let err = bisect(|x| x * x + 1.0, -1.0, 1.0, 1e-12, 100).unwrap_err();
        assert!(matches!(err, FindRootError::NotBracketed { .. }));
    }

    #[test]
    fn bisect_exact_endpoint() {
        assert_eq!(bisect(|x| x, 0.0, 1.0, 1e-12, 10).unwrap(), 0.0);
    }

    #[test]
    fn newton_converges_quadratically() {
        let r = newton(|x| (x.exp() - 3.0, x.exp()), 1.0, 0.0, 3.0, 1e-14, 50).unwrap();
        assert!((r - 3.0_f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn newton_respects_bounds() {
        // Start far away; the damping keeps iterates inside [0, 10].
        let r = newton(
            |x| (x * x * x - 8.0, 3.0 * x * x),
            9.5,
            0.0,
            10.0,
            1e-13,
            100,
        )
        .unwrap();
        assert!((r - 2.0).abs() < 1e-10);
    }

    #[test]
    fn brent_on_transcendental() {
        let r = brent(|x| x.cos() - x, 0.0, 1.0, 1e-15, 100).unwrap();
        assert!((r - 0.7390851332151607).abs() < 1e-12);
    }

    #[test]
    fn brent_matches_bisect_on_polynomial() {
        let f = |x: f64| x.powi(3) - 2.0 * x - 5.0; // classic Wallis cubic
        let rb = brent(f, 2.0, 3.0, 1e-14, 100).unwrap();
        let ri = bisect(f, 2.0, 3.0, 1e-13, 300).unwrap();
        assert!((rb - ri).abs() < 1e-9);
        assert!((rb - 2.0945514815423265).abs() < 1e-12);
    }

    #[test]
    fn brent_not_bracketed() {
        assert!(matches!(
            brent(|x| x * x + 0.5, -1.0, 1.0, 1e-12, 100),
            Err(FindRootError::NotBracketed { .. })
        ));
    }

    #[test]
    fn expand_bracket_grows_interval() {
        let (lo, hi) = expand_bracket(|x| x - 10.0, 0.0, 1.0, 20).unwrap();
        assert!(lo <= 10.0 && hi >= 10.0);
        let r = brent(|x| x - 10.0, lo, hi, 1e-13, 100).unwrap();
        assert!((r - 10.0).abs() < 1e-10);
    }

    #[test]
    fn expand_bracket_gives_up() {
        assert!(expand_bracket(|x| x * x + 1.0, -1.0, 1.0, 8).is_none());
    }

    #[test]
    fn error_display_is_informative() {
        let e = FindRootError::NotBracketed {
            f_lo: 1.0,
            f_hi: 2.0,
        };
        assert!(e.to_string().contains("does not bracket"));
    }
}
