//! Scalar and low-dimensional minimizers used by the design-space
//! exploration and device calibration code.
//!
//! Three tools cover every optimization in the workspace:
//!
//! - [`golden_section_min`] for smooth 1-D problems (the optimal wavelength
//!   spacing of Fig. 7(a));
//! - [`grid_min`] / [`grid_then_golden`] for robust global scans of noisy or
//!   multi-modal objectives;
//! - [`NelderMead`] for the 3–6 parameter device calibration fits.

/// Result of a scalar minimization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Minimum {
    /// Argument of the minimum.
    pub x: f64,
    /// Objective value at the minimum.
    pub value: f64,
}

/// Golden-section search for the minimum of a unimodal `f` on `[lo, hi]`.
///
/// Converges to an interval of width `tol * (1 + |x|)`; the returned
/// [`Minimum`] carries the midpoint of the final interval.
///
/// ```
/// let m = osc_math::optimize::golden_section_min(|x| (x - 2.5) * (x - 2.5), 0.0, 5.0, 1e-10, 200);
/// assert!((m.x - 2.5).abs() < 1e-8);
/// ```
pub fn golden_section_min<F: FnMut(f64) -> f64>(
    mut f: F,
    mut lo: f64,
    mut hi: f64,
    tol: f64,
    max_iter: usize,
) -> Minimum {
    const INV_PHI: f64 = 0.618_033_988_749_894_8;
    if lo > hi {
        std::mem::swap(&mut lo, &mut hi);
    }
    let mut x1 = hi - INV_PHI * (hi - lo);
    let mut x2 = lo + INV_PHI * (hi - lo);
    let mut f1 = f(x1);
    let mut f2 = f(x2);
    for _ in 0..max_iter {
        if (hi - lo).abs() < tol * (1.0 + lo.abs().max(hi.abs())) {
            break;
        }
        if f1 < f2 {
            hi = x2;
            x2 = x1;
            f2 = f1;
            x1 = hi - INV_PHI * (hi - lo);
            f1 = f(x1);
        } else {
            lo = x1;
            x1 = x2;
            f1 = f2;
            x2 = lo + INV_PHI * (hi - lo);
            f2 = f(x2);
        }
    }
    let x = 0.5 * (lo + hi);
    Minimum { x, value: f(x) }
}

/// Evaluates `f` on an `n`-point uniform grid over `[lo, hi]` and returns
/// the best sample. Non-finite objective values are skipped.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn grid_min<F: FnMut(f64) -> f64>(mut f: F, lo: f64, hi: f64, n: usize) -> Minimum {
    assert!(n >= 2, "grid_min needs at least two samples");
    let mut best = Minimum {
        x: lo,
        value: f64::INFINITY,
    };
    for i in 0..n {
        let x = lo + (hi - lo) * i as f64 / (n - 1) as f64;
        let v = f(x);
        if v.is_finite() && v < best.value {
            best = Minimum { x, value: v };
        }
    }
    best
}

/// Coarse grid scan followed by golden-section refinement around the best
/// cell — the standard pattern for objectives with one dominant basin plus
/// possible plateaus (e.g. total laser energy vs wavelength spacing).
pub fn grid_then_golden<F: FnMut(f64) -> f64>(
    mut f: F,
    lo: f64,
    hi: f64,
    grid_points: usize,
    tol: f64,
) -> Minimum {
    let coarse = grid_min(&mut f, lo, hi, grid_points);
    let cell = (hi - lo) / (grid_points - 1) as f64;
    let refine_lo = (coarse.x - cell).max(lo);
    let refine_hi = (coarse.x + cell).min(hi);
    let fine = golden_section_min(&mut f, refine_lo, refine_hi, tol, 200);
    if fine.value <= coarse.value {
        fine
    } else {
        coarse
    }
}

/// Configuration for the Nelder–Mead simplex minimizer.
#[derive(Debug, Clone, Copy)]
pub struct NelderMead {
    /// Maximum number of objective evaluations.
    pub max_evals: usize,
    /// Convergence threshold on the simplex function-value spread.
    pub f_tol: f64,
    /// Convergence threshold on the simplex diameter.
    pub x_tol: f64,
}

impl Default for NelderMead {
    fn default() -> Self {
        NelderMead {
            max_evals: 4000,
            f_tol: 1e-12,
            x_tol: 1e-10,
        }
    }
}

/// Result of a multi-dimensional minimization.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiMinimum {
    /// Argument of the minimum.
    pub x: Vec<f64>,
    /// Objective value at the minimum.
    pub value: f64,
    /// Number of objective evaluations consumed.
    pub evals: usize,
}

impl NelderMead {
    /// Creates a minimizer with the default budget.
    pub fn new() -> Self {
        Self::default()
    }

    /// Minimizes `f` starting from `x0` with initial simplex scale `scale`
    /// per coordinate.
    ///
    /// # Panics
    ///
    /// Panics if `x0` is empty or `scale.len() != x0.len()`.
    pub fn minimize<F: FnMut(&[f64]) -> f64>(
        &self,
        mut f: F,
        x0: &[f64],
        scale: &[f64],
    ) -> MultiMinimum {
        assert!(!x0.is_empty(), "need at least one dimension");
        assert_eq!(x0.len(), scale.len(), "scale must match dimension");
        let n = x0.len();
        let mut evals = 0usize;
        let mut eval = |p: &[f64], evals: &mut usize| -> f64 {
            *evals += 1;
            let v = f(p);
            if v.is_finite() {
                v
            } else {
                f64::MAX
            }
        };

        // Build initial simplex: x0 plus one vertex per coordinate offset.
        let mut simplex: Vec<Vec<f64>> = Vec::with_capacity(n + 1);
        simplex.push(x0.to_vec());
        for i in 0..n {
            let mut v = x0.to_vec();
            v[i] += if scale[i] != 0.0 { scale[i] } else { 1e-3 };
            simplex.push(v);
        }
        let mut fv: Vec<f64> = simplex.iter().map(|p| eval(p, &mut evals)).collect();

        while evals < self.max_evals {
            // Order vertices by objective value.
            let mut idx: Vec<usize> = (0..=n).collect();
            idx.sort_by(|&a, &b| fv[a].partial_cmp(&fv[b]).unwrap());
            let best = idx[0];
            let worst = idx[n];
            let second_worst = idx[n - 1];

            let spread = (fv[worst] - fv[best]).abs();
            let diameter = simplex
                .iter()
                .map(|p| {
                    p.iter()
                        .zip(&simplex[best])
                        .map(|(a, b)| (a - b).abs())
                        .fold(0.0_f64, f64::max)
                })
                .fold(0.0_f64, f64::max);
            if spread < self.f_tol && diameter < self.x_tol {
                break;
            }

            // Centroid of all but the worst vertex.
            let mut centroid = vec![0.0; n];
            for (k, p) in simplex.iter().enumerate() {
                if k == worst {
                    continue;
                }
                for (c, &x) in centroid.iter_mut().zip(p) {
                    *c += x / n as f64;
                }
            }

            let lerp = |a: &[f64], b: &[f64], t: f64| -> Vec<f64> {
                a.iter().zip(b).map(|(&x, &y)| x + t * (y - x)).collect()
            };

            // Reflection.
            let reflected = lerp(&centroid, &simplex[worst], -1.0);
            let f_ref = eval(&reflected, &mut evals);
            if f_ref < fv[best] {
                // Expansion.
                let expanded = lerp(&centroid, &simplex[worst], -2.0);
                let f_exp = eval(&expanded, &mut evals);
                if f_exp < f_ref {
                    simplex[worst] = expanded;
                    fv[worst] = f_exp;
                } else {
                    simplex[worst] = reflected;
                    fv[worst] = f_ref;
                }
            } else if f_ref < fv[second_worst] {
                simplex[worst] = reflected;
                fv[worst] = f_ref;
            } else {
                // Contraction.
                let contracted = lerp(&centroid, &simplex[worst], 0.5);
                let f_con = eval(&contracted, &mut evals);
                if f_con < fv[worst] {
                    simplex[worst] = contracted;
                    fv[worst] = f_con;
                } else {
                    // Shrink toward the best vertex.
                    let best_point = simplex[best].clone();
                    for k in 0..=n {
                        if k == best {
                            continue;
                        }
                        simplex[k] = lerp(&best_point, &simplex[k], 0.5);
                        fv[k] = eval(&simplex[k], &mut evals);
                    }
                }
            }
        }

        let (arg_best, &value) = fv
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .expect("simplex is non-empty");
        MultiMinimum {
            x: simplex[arg_best].clone(),
            value,
            evals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_section_quadratic() {
        let m = golden_section_min(|x| (x - 1.75) * (x - 1.75) + 3.0, -10.0, 10.0, 1e-12, 300);
        assert!((m.x - 1.75).abs() < 1e-7);
        assert!((m.value - 3.0).abs() < 1e-12);
    }

    #[test]
    fn golden_section_swapped_bounds() {
        let m = golden_section_min(|x| x * x, 4.0, -4.0, 1e-10, 200);
        assert!(m.x.abs() < 1e-6);
    }

    #[test]
    fn grid_min_finds_best_sample() {
        let m = grid_min(|x| (x - 0.3).abs(), 0.0, 1.0, 11);
        assert!((m.x - 0.3).abs() <= 0.05 + 1e-12);
    }

    #[test]
    fn grid_min_skips_nan_cells() {
        let m = grid_min(
            |x| {
                if x < 0.5 {
                    f64::NAN
                } else {
                    (x - 0.8) * (x - 0.8)
                }
            },
            0.0,
            1.0,
            21,
        );
        assert!((m.x - 0.8).abs() < 0.051);
    }

    #[test]
    fn grid_then_golden_refines() {
        let m = grid_then_golden(|x| (x - 0.1653).powi(2), 0.0, 1.0, 11, 1e-12);
        assert!((m.x - 0.1653).abs() < 1e-7);
    }

    #[test]
    fn nelder_mead_rosenbrock() {
        let nm = NelderMead {
            max_evals: 20_000,
            ..NelderMead::default()
        };
        let res = nm.minimize(
            |p| {
                let (x, y) = (p[0], p[1]);
                (1.0 - x).powi(2) + 100.0 * (y - x * x).powi(2)
            },
            &[-1.2, 1.0],
            &[0.5, 0.5],
        );
        assert!((res.x[0] - 1.0).abs() < 1e-4, "x={:?}", res.x);
        assert!((res.x[1] - 1.0).abs() < 1e-4);
        assert!(res.value < 1e-7);
    }

    #[test]
    fn nelder_mead_sphere_3d() {
        let res = NelderMead::new().minimize(
            |p| p.iter().map(|v| v * v).sum(),
            &[1.0, -2.0, 0.5],
            &[0.3, 0.3, 0.3],
        );
        for v in &res.x {
            assert!(v.abs() < 1e-4);
        }
    }

    #[test]
    fn nelder_mead_handles_nan_regions() {
        // Objective undefined (NaN) for x<0; minimum at x=0.25.
        let res = NelderMead::new().minimize(
            |p| {
                if p[0] < 0.0 {
                    f64::NAN
                } else {
                    (p[0] - 0.25).powi(2)
                }
            },
            &[1.0],
            &[0.2],
        );
        assert!((res.x[0] - 0.25).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "scale must match dimension")]
    fn nelder_mead_dimension_mismatch() {
        let _ = NelderMead::new().minimize(|p| p[0], &[0.0, 0.0], &[1.0]);
    }
}
