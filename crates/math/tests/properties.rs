//! Property-based tests for the numerics substrate.
//!
//! Deterministic property harness: each property runs over a fixed number
//! of seeded random cases drawn from the crate's own RNG (the build has no
//! third-party property-testing framework, and seeded cases make failures
//! replayable by construction).

use osc_math::optimize::{golden_section_min, NelderMead};
use osc_math::rng::Xoshiro256PlusPlus;
use osc_math::roots::{bisect, brent};
use osc_math::special::{erfc, inv_erfc};
use osc_math::stats::RunningStats;

/// Runs `f` over `n` seeded cases.
fn cases(n: u64, mut f: impl FnMut(&mut Xoshiro256PlusPlus)) {
    for case in 0..n {
        let mut rng = Xoshiro256PlusPlus::new(0x4D41_5448 ^ case);
        f(&mut rng);
    }
}

/// erfc is strictly decreasing and bounded in (0, 2).
#[test]
fn erfc_monotone_and_bounded() {
    cases(128, |rng| {
        let a = rng.range_f64(-5.0, 5.0);
        let d = rng.range_f64(1e-6, 2.0);
        let lo = erfc(a + d);
        let hi = erfc(a);
        assert!(lo < hi, "erfc not decreasing at {a}");
        assert!(lo > 0.0 && hi < 2.0);
    });
}

/// inv_erfc round-trips across twelve decades.
#[test]
fn inv_erfc_round_trip() {
    cases(128, |rng| {
        let log_p = rng.range_f64(-12.0, -0.31);
        let p = 10f64.powf(log_p);
        let x = inv_erfc(p);
        let back = erfc(x);
        assert!((back - p).abs() / p < 1e-6, "p={p:e}, back={back:e}");
    });
}

/// Brent and bisection agree on random monotone cubics.
#[test]
fn brent_matches_bisect() {
    cases(128, |rng| {
        let c0 = rng.range_f64(-3.0, 3.0);
        let f = |x: f64| x * x * x + 2.0 * x - c0; // strictly increasing
        let rb = brent(f, -10.0, 10.0, 1e-12, 200).unwrap();
        let ri = bisect(f, -10.0, 10.0, 1e-12, 300).unwrap();
        assert!((rb - ri).abs() < 1e-6);
        assert!(f(rb).abs() < 1e-8);
    });
}

/// Golden section finds the vertex of any parabola inside the bracket.
#[test]
fn golden_section_parabola() {
    cases(128, |rng| {
        let center = rng.range_f64(-5.0, 5.0);
        let scale = rng.range_f64(0.1, 10.0);
        let m = golden_section_min(
            |x| scale * (x - center) * (x - center),
            -10.0,
            10.0,
            1e-10,
            300,
        );
        assert!(
            (m.x - center).abs() < 1e-5,
            "found {} expected {center}",
            m.x
        );
    });
}

/// Nelder–Mead never returns a point worse than its start.
#[test]
fn nelder_mead_never_worsens() {
    cases(128, |rng| {
        let x0 = rng.range_f64(-3.0, 3.0);
        let y0 = rng.range_f64(-3.0, 3.0);
        let f = |p: &[f64]| (p[0] - 1.0).powi(2) + 3.0 * (p[1] + 2.0).powi(2);
        let start = f(&[x0, y0]);
        let res = NelderMead::new().minimize(f, &[x0, y0], &[0.3, 0.3]);
        assert!(res.value <= start + 1e-12);
    });
}

/// Merging running stats equals sequential accumulation.
#[test]
fn stats_merge_associative() {
    cases(128, |rng| {
        let len = 2 + rng.below(62) as usize;
        let data: Vec<f64> = (0..len).map(|_| rng.range_f64(-100.0, 100.0)).collect();
        let split = (1 + rng.below(62) as usize).min(data.len() - 1);
        let mut whole = RunningStats::new();
        for &x in &data {
            whole.push(x);
        }
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &x in &data[..split] {
            a.push(x);
        }
        for &x in &data[split..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-7);
    });
}

/// Linspace is monotone with exact endpoints.
#[test]
fn linspace_monotone() {
    cases(128, |rng| {
        let a = rng.range_f64(-100.0, 100.0);
        let w = rng.range_f64(0.1, 100.0);
        let n = 2 + rng.below(48) as usize;
        let g = osc_math::linspace(a, a + w, n);
        assert_eq!(g.len(), n);
        assert!((g[0] - a).abs() < 1e-12);
        assert!((g[n - 1] - (a + w)).abs() < 1e-9);
        for pair in g.windows(2) {
            assert!(pair[1] > pair[0]);
        }
    });
}

/// Binomial symmetry C(n,k) = C(n,n-k).
#[test]
fn binomial_symmetry() {
    cases(128, |rng| {
        let n = rng.below(40) as u32;
        let k = rng.below(u64::from(n) + 1) as u32;
        assert_eq!(
            osc_math::special::binomial(n, k),
            osc_math::special::binomial(n, n - k)
        );
    });
}
