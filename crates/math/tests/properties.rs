//! Property-based tests for the numerics substrate.

use osc_math::optimize::{golden_section_min, NelderMead};
use osc_math::roots::{bisect, brent};
use osc_math::special::{erfc, inv_erfc};
use osc_math::stats::RunningStats;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// erfc is strictly decreasing and bounded in (0, 2).
    #[test]
    fn erfc_monotone_and_bounded(a in -5.0f64..5.0, d in 1e-6f64..2.0) {
        let lo = erfc(a + d);
        let hi = erfc(a);
        prop_assert!(lo < hi, "erfc not decreasing at {a}");
        prop_assert!(lo > 0.0 && hi < 2.0);
    }

    /// inv_erfc round-trips across twelve decades.
    #[test]
    fn inv_erfc_round_trip(log_p in -12.0f64..-0.31) {
        let p = 10f64.powf(log_p);
        let x = inv_erfc(p);
        let back = erfc(x);
        prop_assert!((back - p).abs() / p < 1e-6, "p={p:e}, back={back:e}");
    }

    /// Brent and bisection agree on random monotone cubics.
    #[test]
    fn brent_matches_bisect(c0 in -3.0f64..3.0) {
        let f = |x: f64| x * x * x + 2.0 * x - c0; // strictly increasing
        let rb = brent(f, -10.0, 10.0, 1e-12, 200).unwrap();
        let ri = bisect(f, -10.0, 10.0, 1e-12, 300).unwrap();
        prop_assert!((rb - ri).abs() < 1e-6);
        prop_assert!(f(rb).abs() < 1e-8);
    }

    /// Golden section finds the vertex of any parabola inside the bracket.
    #[test]
    fn golden_section_parabola(center in -5.0f64..5.0, scale in 0.1f64..10.0) {
        let m = golden_section_min(
            |x| scale * (x - center) * (x - center),
            -10.0,
            10.0,
            1e-10,
            300,
        );
        prop_assert!((m.x - center).abs() < 1e-5, "found {} expected {center}", m.x);
    }

    /// Nelder–Mead never returns a point worse than its start.
    #[test]
    fn nelder_mead_never_worsens(x0 in -3.0f64..3.0, y0 in -3.0f64..3.0) {
        let f = |p: &[f64]| (p[0] - 1.0).powi(2) + 3.0 * (p[1] + 2.0).powi(2);
        let start = f(&[x0, y0]);
        let res = NelderMead::new().minimize(f, &[x0, y0], &[0.3, 0.3]);
        prop_assert!(res.value <= start + 1e-12);
    }

    /// Merging running stats equals sequential accumulation.
    #[test]
    fn stats_merge_associative(data in proptest::collection::vec(-100.0f64..100.0, 2..64), split in 1usize..63) {
        let split = split.min(data.len() - 1);
        let mut whole = RunningStats::new();
        for &x in &data { whole.push(x); }
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &x in &data[..split] { a.push(x); }
        for &x in &data[split..] { b.push(x); }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-9);
        prop_assert!((a.variance() - whole.variance()).abs() < 1e-7);
    }

    /// Linspace is monotone with exact endpoints.
    #[test]
    fn linspace_monotone(a in -100.0f64..100.0, w in 0.1f64..100.0, n in 2usize..50) {
        let g = osc_math::linspace(a, a + w, n);
        prop_assert_eq!(g.len(), n);
        prop_assert!((g[0] - a).abs() < 1e-12);
        prop_assert!((g[n - 1] - (a + w)).abs() < 1e-9);
        for pair in g.windows(2) {
            prop_assert!(pair[1] > pair[0]);
        }
    }

    /// Binomial symmetry C(n,k) = C(n,n-k).
    #[test]
    fn binomial_symmetry(n in 0u32..40, k in 0u32..40) {
        prop_assume!(k <= n);
        prop_assert_eq!(
            osc_math::special::binomial(n, k),
            osc_math::special::binomial(n, n - k)
        );
    }
}
