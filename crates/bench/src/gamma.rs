//! EXP-G: the Section V.C gamma-correction workload and the 10× speedup
//! claim (1 GHz optical circuit vs. the 100 MHz CMOS ReSC of \[9\]).

use osc_apps::backend::{
    throughput_evals_per_second, ElectronicBackend, ExactBackend, OpticalBackend,
};
use osc_apps::gamma_app::{paper_gamma_polynomial, run_gamma, GammaRunReport};
use osc_apps::image::Image;
use osc_core::params::CircuitParams;
use osc_units::Nanometers;

/// EXP-G report.
#[derive(Debug, Clone, PartialEq)]
pub struct GammaReport {
    /// Per-backend quality/throughput reports.
    pub runs: Vec<GammaRunReport>,
    /// Optical-over-electronic speedup at equal stream length.
    pub speedup: f64,
}

/// Runs gamma correction on a small synthetic image with the exact,
/// electronic and optical backends.
///
/// The optical backend uses a 6th-order circuit at the energy-optimal
/// wavelength spacing.
///
/// # Panics
///
/// Panics if any backend fails on the shipped configuration (library
/// invariant).
pub fn run() -> GammaReport {
    let poly = paper_gamma_polynomial().expect("gamma fit");
    let image = Image::blobs(24, 24);
    let stream = 2048usize;

    let mut exact = ExactBackend::new(poly.clone());
    let mut electronic = ElectronicBackend::new(poly.clone(), stream, 11);
    let params = CircuitParams::paper_fig7(6, Nanometers::new(0.165));
    let mut optical =
        OpticalBackend::new(params, poly, stream, 13).expect("6th-order circuit builds");

    let runs = vec![
        run_gamma(&image, &mut exact).expect("exact run"),
        run_gamma(&image, &mut electronic).expect("electronic run"),
        run_gamma(&image, &mut optical).expect("optical run"),
    ];
    let speedup = throughput_evals_per_second(&optical) / throughput_evals_per_second(&electronic);
    GammaReport { runs, speedup }
}

/// Prints EXP-G.
pub fn print(report: &GammaReport) {
    println!("EXP-G  gamma correction (6th-order Bernstein, γ = 0.45)");
    let rows: Vec<Vec<String>> = report
        .runs
        .iter()
        .map(|r| {
            vec![
                r.backend.clone(),
                format!("{:.1}", r.psnr_db),
                format!("{:.4}", r.mae),
                format!("{:.3e}", r.evals_per_second),
            ]
        })
        .collect();
    crate::print_table(&["backend", "PSNR dB", "MAE", "pixels/s"], &rows);
    println!(
        "{}",
        crate::compare_line("optical vs CMOS speedup", 10.0, report.speedup, "x")
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_is_ten() {
        let r = run();
        assert!((r.speedup - 10.0).abs() < 1e-9);
    }

    #[test]
    fn stochastic_backends_track_exact() {
        let r = run();
        assert_eq!(r.runs.len(), 3);
        // Exact fit quality bound: PSNR > 25 dB against the true map.
        assert!(r.runs[0].psnr_db > 25.0);
        // Stochastic backends land within a few dB of the exact fit.
        assert!(r.runs[1].psnr_db > 20.0, "electronic {}", r.runs[1].psnr_db);
        assert!(r.runs[2].psnr_db > 18.0, "optical {}", r.runs[2].psnr_db);
    }
}
