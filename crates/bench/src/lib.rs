//! # osc-bench
//!
//! Experiment harness regenerating **every figure** of the DATE 2019
//! paper's evaluation (Section V), plus the in-text design-point numbers.
//!
//! Each module runs one experiment and returns a serializable report;
//! [`print`]-style helpers render the same rows/series the paper plots.
//! The `experiments` binary exposes them as subcommands:
//!
//! ```text
//! cargo run -p osc-bench --bin experiments -- all
//! cargo run -p osc-bench --bin experiments -- fig7a
//! ```
//!
//! | module | paper artifact |
//! |---|---|
//! | [`exp0`] | Section V.A in-text design point |
//! | [`fig1b`] | Fig. 1(b) ReSC example (background) |
//! | [`fig5`] | Fig. 5(a)–(c) transmission and power levels |
//! | [`fig6`] | Fig. 6(a)–(c) minimum probe power studies |
//! | [`fig7`] | Fig. 7(a)–(b) laser energy per computed bit |
//! | [`gamma`] | Section V.C gamma-correction speedup |

pub mod exp0;
pub mod extensions;
pub mod fig1b;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod gamma;
pub mod kernels;
pub mod microbench;
pub mod soak;
pub mod sweep;

/// Renders a labelled `paper vs measured` comparison line.
pub fn compare_line(label: &str, paper: f64, measured: f64, unit: &str) -> String {
    let rel = if paper != 0.0 {
        format!("{:+.1}%", (measured / paper - 1.0) * 100.0)
    } else {
        "n/a".to_string()
    };
    format!(
        "  {label:<44} paper {paper:>10.4} {unit:<6} measured {measured:>10.4} {unit:<6} ({rel})"
    )
}

/// Simple fixed-width table printer for experiment outputs.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let joined: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect();
        println!("  {}", joined.join("  "));
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compare_line_formats() {
        let s = compare_line("pump power", 591.8, 591.86, "mW");
        assert!(s.contains("591.8"));
        assert!(s.contains("+0.0%"));
        let s0 = compare_line("zero", 0.0, 1.0, "x");
        assert!(s0.contains("n/a"));
    }
}
