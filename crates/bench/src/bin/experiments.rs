//! Regenerates every figure of the paper's evaluation section.
//!
//! ```text
//! experiments <subcommand>
//!
//!   exp0    Section V.A design point (pump power, ER, transmissions)
//!   fig1b   Fig. 1(b) ReSC background example
//!   fig5a   Fig. 5(a) spectra, z=(0,1,0), x=(1,1)
//!   fig5b   Fig. 5(b) spectra, z=(1,1,0), x=(0,0)
//!   fig5c   Fig. 5(c) received power, all input combinations
//!   fig6a   Fig. 6(a) min probe power vs MZI IL/ER
//!   fig6b   Fig. 6(b) min probe power vs target BER
//!   fig6c   Fig. 6(c) literature device comparison
//!   fig7a   Fig. 7(a) energy vs wavelength spacing
//!   fig7b   Fig. 7(b) energy vs polynomial order
//!   gamma   Section V.C gamma-correction speedup
//!   all     run everything in order
//!
//! Add `--json <dir>` to also dump machine-readable reports.
//! ```

use osc_bench::{exp0, extensions, fig1b, fig5, fig6, fig7, gamma};

fn dump_json<T: std::fmt::Debug>(path: Option<&str>, name: &str, value: &T) {
    if let Some(dir) = path {
        let file = format!("{dir}/{name}.txt");
        let s = format!("{value:#?}\n");
        if let Err(e) = std::fs::write(&file, s) {
            eprintln!("warning: could not write {file}: {e}");
        } else {
            println!("  [report written to {file}]");
        }
    }
}

fn run_one(cmd: &str, json: Option<&str>) -> bool {
    match cmd {
        "exp0" => {
            let r = exp0::run();
            exp0::print(&r);
            dump_json(json, "exp0", &r);
        }
        "fig1b" => {
            let r = fig1b::run();
            fig1b::print(&r);
            dump_json(json, "fig1b", &r);
        }
        "fig5a" => {
            let r = fig5::run_fig5a();
            fig5::print_spectra("EXP-5A", &r);
            dump_json(json, "fig5a", &r);
        }
        "fig5b" => {
            let r = fig5::run_fig5b();
            fig5::print_spectra("EXP-5B", &r);
            dump_json(json, "fig5b", &r);
        }
        "fig5c" => {
            let r = fig5::run_fig5c();
            fig5::print_fig5c(&r);
            dump_json(json, "fig5c", &r);
        }
        "fig6a" => {
            let r = fig6::run_fig6a();
            fig6::print_fig6a(&r);
            dump_json(json, "fig6a", &r);
        }
        "fig6b" => {
            let r = fig6::run_fig6b();
            fig6::print_fig6b(&r);
            dump_json(json, "fig6b", &r);
        }
        "fig6c" => {
            let r = fig6::run_fig6c();
            fig6::print_fig6c(&r);
            dump_json(json, "fig6c", &r);
        }
        "fig7a" => {
            let r = fig7::run_fig7a();
            fig7::print_fig7a(&r);
            dump_json(json, "fig7a", &r);
        }
        "fig7b" => {
            let r = fig7::run_fig7b();
            fig7::print_fig7b(&r);
            dump_json(json, "fig7b", &r);
        }
        "gamma" => {
            let r = gamma::run();
            gamma::print(&r);
            dump_json(json, "gamma", &r);
        }
        "ext" => {
            let r = extensions::run();
            extensions::print(&r);
            dump_json(json, "ext", &r);
        }
        _ => return false,
    }
    true
}

const ALL: [&str; 12] = [
    "exp0", "fig1b", "fig5a", "fig5b", "fig5c", "fig6a", "fig6b", "fig6c", "fig7a", "fig7b",
    "gamma", "ext",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json: Option<String> = None;
    let mut cmds: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--json" {
            json = it.next();
            if json.is_none() {
                eprintln!("--json requires a directory argument");
                std::process::exit(2);
            }
        } else {
            cmds.push(a);
        }
    }
    if cmds.is_empty() {
        eprintln!("usage: experiments [--json DIR] <{}|all>", ALL.join("|"));
        std::process::exit(2);
    }
    for cmd in cmds {
        if cmd == "all" {
            for c in ALL {
                run_one(c, json.as_deref());
                println!();
            }
        } else if !run_one(&cmd, json.as_deref()) {
            eprintln!(
                "unknown experiment `{cmd}`; available: {} or all",
                ALL.join(", ")
            );
            std::process::exit(2);
        }
    }
}
