//! Fault-injection accuracy sweep — the paper's robustness story,
//! measured.
//!
//! ```text
//! fault_sweep [--stream BITS] [--seeds N] [--xs N] [--out PATH]
//!             [--check-monotone]
//! ```
//!
//! Drives the order-6 gamma circuit (the Section V.C workload) through
//! the fault-injected fused kernel and emits two CSV curves
//! (`curve,fault_rate,stream_length,mae`):
//!
//! - `rate`: accuracy vs fault rate — mean absolute error against the
//!   exact gamma function over a grid of inputs × seeds, at a fixed
//!   stream length, for bit-flip rates from 0 (the clean baseline) up
//!   to 0.2. Stochastic computing degrades gracefully: each flip moves
//!   one bit, so the measured density drifts toward 0.5 as
//!   `p' = p(1-r) + (1-p)r` and the error grows smoothly with the
//!   rate instead of falling off a cliff.
//! - `length`: accuracy vs stream length at rates 0 and 0.01 — the
//!   averaging-down of both sampling noise and injected faults as the
//!   streams get longer.
//!
//! `--check-monotone` exits non-zero unless the `rate` curve is
//! non-decreasing (within a small tolerance for sampling noise) — the
//! CI hook that pins "more faults, more error, never chaos".
//!
//! Every evaluation derives its fault universe by rebasing one base
//! [`FaultSpec`] per grid index, so the sweep is bit-reproducible
//! run-to-run and independent of iteration order.

use osc_core::fault::FaultSpec;
use osc_core::params::CircuitParams;
use osc_core::system::{EvalScratch, OpticalScSystem};
use osc_math::rng::Xoshiro256PlusPlus;
use osc_stochastic::gamma::{gamma_exact, DISPLAY_GAMMA};
use osc_stochastic::sng::XoshiroSng;
use osc_units::Nanometers;

/// Bit-flip rates of the `rate` curve, clean baseline first.
const RATES: &[f64] = &[0.0, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2];

/// Stream lengths of the `length` curve.
const LENGTHS: &[usize] = &[256, 512, 1024, 2048, 4096, 8192];

/// The fault rate the `length` curve's faulty leg runs at.
const LENGTH_CURVE_RATE: f64 = 0.01;

/// Base seed every grid point's fault universe is rebased from.
const FAULT_SEED: u64 = 0xFA07;

/// Absolute slack the monotonicity check allows between consecutive
/// rate points — covers the sampling noise of a finite MAE estimate
/// without masking a real inversion (the rate-to-rate error growth is
/// an order of magnitude larger on the default grid).
const MONOTONE_TOLERANCE: f64 = 5e-4;

fn fail(msg: &str) -> ! {
    eprintln!("fault_sweep: {msg}");
    std::process::exit(1);
}

/// One CSV row.
struct Point {
    curve: &'static str,
    fault_rate: f64,
    stream_length: usize,
    mae: f64,
}

/// Mean absolute error of the fault-injected circuit against exact
/// gamma over `xs` inputs × `seeds` seeds at one (rate, stream) point.
fn sweep_point(system: &OpticalScSystem, rate: f64, stream: usize, xs: usize, seeds: usize) -> f64 {
    let base = FaultSpec::flips(rate, FAULT_SEED);
    let mut scratch = EvalScratch::new();
    let mut total = 0.0;
    let mut count = 0usize;
    for i in 0..xs {
        // Strictly interior grid: the fitted polynomial's domain.
        let x = (i + 1) as f64 / (xs + 1) as f64;
        let exact = gamma_exact(x, DISPLAY_GAMMA);
        for s in 0..seeds {
            let item = (i * seeds + s) as u64;
            let spec = base.rebased(item);
            let fault = if rate > 0.0 { Some(&spec) } else { None };
            let mut sng = XoshiroSng::new(0xBEEF + item);
            let mut rng = Xoshiro256PlusPlus::new(0xCAFE + item);
            let run = system
                .evaluate_fused_faulted(x, stream, &mut sng, &mut rng, fault, &mut scratch)
                .unwrap_or_else(|e| fail(&format!("evaluation at x={x} rate={rate}: {e}")));
            total += (run.estimate - exact).abs();
            count += 1;
        }
    }
    total / count as f64
}

fn main() {
    let mut stream = 2048usize;
    let mut seeds = 8usize;
    let mut xs = 33usize;
    let mut out_path: Option<String> = None;
    let mut check_monotone = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| {
            args.next()
                .unwrap_or_else(|| fail(&format!("{what} needs a value")))
        };
        match arg.as_str() {
            "--stream" => {
                stream = value("--stream")
                    .parse()
                    .unwrap_or_else(|_| fail("--stream needs an integer"))
            }
            "--seeds" => {
                seeds = value("--seeds")
                    .parse()
                    .unwrap_or_else(|_| fail("--seeds needs an integer"))
            }
            "--xs" => {
                xs = value("--xs")
                    .parse()
                    .unwrap_or_else(|_| fail("--xs needs an integer"))
            }
            "--out" => out_path = Some(value("--out")),
            "--check-monotone" => check_monotone = true,
            other => fail(&format!(
                "unknown argument {other}\nusage: fault_sweep [--stream BITS] [--seeds N] \
                 [--xs N] [--out PATH] [--check-monotone]"
            )),
        }
    }
    if seeds == 0 || xs == 0 {
        fail("--seeds and --xs must be positive");
    }

    let poly = osc_apps::gamma_app::paper_gamma_polynomial()
        .unwrap_or_else(|e| fail(&format!("gamma fit: {e}")));
    let system = OpticalScSystem::new(CircuitParams::paper_fig7(6, Nanometers::new(0.165)), poly)
        .unwrap_or_else(|e| fail(&format!("circuit build: {e}")));

    let mut points = Vec::new();
    for &rate in RATES {
        points.push(Point {
            curve: "rate",
            fault_rate: rate,
            stream_length: stream,
            mae: sweep_point(&system, rate, stream, xs, seeds),
        });
    }
    for &length in LENGTHS {
        for rate in [0.0, LENGTH_CURVE_RATE] {
            points.push(Point {
                curve: "length",
                fault_rate: rate,
                stream_length: length,
                mae: sweep_point(&system, rate, length, xs, seeds),
            });
        }
    }

    let mut csv = String::from("curve,fault_rate,stream_length,mae\n");
    for p in &points {
        csv.push_str(&format!(
            "{},{},{},{:.6}\n",
            p.curve, p.fault_rate, p.stream_length, p.mae
        ));
    }
    match &out_path {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &csv) {
                fail(&format!("writing {path}: {e}"));
            }
            println!("[fault_sweep] wrote {} points to {path}", points.len());
        }
        None => print!("{csv}"),
    }

    if check_monotone {
        let rate_curve: Vec<&Point> = points.iter().filter(|p| p.curve == "rate").collect();
        for pair in rate_curve.windows(2) {
            if pair[1].mae < pair[0].mae - MONOTONE_TOLERANCE {
                fail(&format!(
                    "rate curve not monotone: mae {:.6} at rate {} > mae {:.6} at rate {}",
                    pair[0].mae, pair[0].fault_rate, pair[1].mae, pair[1].fault_rate
                ));
            }
        }
        println!(
            "[fault_sweep] rate curve is monotone over {} points (tolerance {MONOTONE_TOLERANCE})",
            rate_curve.len()
        );
    }
}
