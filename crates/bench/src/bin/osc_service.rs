//! The TCP front door: serves the worker pool to many concurrent
//! clients — the CI `service-soak` entry point.
//!
//! ```text
//! osc_service [--port P] [--addr HOST] [--workers N] [--depth D]
//!             [--queue-cap Q] [--read-timeout-ms MS] [--backend NAME]
//! ```
//!
//! Binds a [`Service`] on `HOST:P` (`--port 0`, the default, picks an
//! ephemeral port), spawns an `N`-worker [`PoolDispatcher`] behind it
//! (depth-`D` pipelining per worker, `Q` queued requests of
//! backpressure), and prints one parseable readiness line to stdout:
//!
//! ```text
//! [osc_service] listening on 127.0.0.1:7411 (3 workers, depth 2, queue cap 64)
//! ```
//!
//! Clients speak the v2/v3 framed wire protocol (see the `shard`
//! module's *Service framing* doc section); `gamma_pool --service` is
//! the matching load generator. The transmission backend travels
//! per-request in the canonical circuit bytes, so one service instance
//! serves every backend at once; `--backend NAME` (`mrr-mzi` or
//! `nanocavity`) merely validates the name and echoes it in the
//! readiness line, so a deployment's logs state which physics its
//! clients are expected to drive. By the determinism contract any
//! replica of this binary answers any request byte-identically, so
//! instances are interchangeable behind a dumb load balancer.
//!
//! Shutdown drains gracefully — in-flight requests finish, then the
//! listener closes and the process exits 0 — on SIGTERM or on a
//! `shutdown` line on stdin (stdin EOF is ignored, so `osc_service
//! < /dev/null &` with a later `kill -TERM` is the whole CI
//! lifecycle).

use osc_core::backend::BackendKind;
use osc_core::batch::shard::locate_worker;
use osc_core::batch::shard::pool::PoolConfig;
use osc_core::batch::shard::service::Service;
use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

fn fail(msg: &str) -> ! {
    eprintln!("osc_service: {msg}");
    std::process::exit(1);
}

/// Set by the SIGTERM handler and the stdin watcher; polled by main.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
extern "C" fn on_sigterm(_signum: core::ffi::c_int) {
    // Only async-signal-safe work here: flag the store, let main drain.
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Installs the SIGTERM handler via the libc `signal` symbol — std
/// links libc on unix, so no crate dependency is needed.
#[cfg(unix)]
fn install_sigterm() {
    const SIGTERM: core::ffi::c_int = 15;
    unsafe extern "C" {
        fn signal(signum: core::ffi::c_int, handler: extern "C" fn(core::ffi::c_int)) -> usize;
    }
    unsafe {
        signal(SIGTERM, on_sigterm);
    }
}

#[cfg(not(unix))]
fn install_sigterm() {}

fn main() {
    let mut addr = "127.0.0.1".to_string();
    let mut port = 0u16;
    let mut workers = 3usize;
    let mut depth: Option<usize> = None;
    let mut queue_cap: Option<usize> = None;
    let mut read_timeout: Option<u64> = None;
    let mut backend = BackendKind::MrrMzi;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| {
            args.next()
                .unwrap_or_else(|| fail(&format!("{what} needs a value")))
        };
        match arg.as_str() {
            "--addr" => addr = value("--addr"),
            "--port" => {
                port = value("--port")
                    .parse()
                    .unwrap_or_else(|_| fail("--port needs an integer"))
            }
            "--workers" => {
                workers = value("--workers")
                    .parse()
                    .unwrap_or_else(|_| fail("--workers needs an integer"))
            }
            "--depth" => {
                depth = Some(
                    value("--depth")
                        .parse()
                        .unwrap_or_else(|_| fail("--depth needs an integer")),
                )
            }
            "--queue-cap" => {
                queue_cap = Some(
                    value("--queue-cap")
                        .parse()
                        .unwrap_or_else(|_| fail("--queue-cap needs an integer")),
                )
            }
            "--read-timeout-ms" => {
                read_timeout = Some(
                    value("--read-timeout-ms")
                        .parse()
                        .unwrap_or_else(|_| fail("--read-timeout-ms needs milliseconds")),
                )
            }
            "--backend" => {
                let name = value("--backend");
                backend = BackendKind::parse(&name).unwrap_or_else(|| {
                    fail(&format!(
                        "unknown backend {name} (expected mrr-mzi or nanocavity)"
                    ))
                })
            }
            other => fail(&format!(
                "unknown argument {other}\nusage: osc_service [--port P] [--addr HOST] \
                 [--workers N] [--depth D] [--queue-cap Q] [--read-timeout-ms MS] \
                 [--backend NAME]"
            )),
        }
    }
    if workers == 0 {
        fail("--workers must be at least 1 (the service always dispatches to a pool)");
    }

    let worker = locate_worker("shard_worker").unwrap_or_else(|| {
        fail("could not locate the shard_worker binary (build it, or set OSC_SHARD_WORKER)")
    });
    let mut config = PoolConfig::new(worker, workers);
    if let Some(d) = depth {
        config = config.with_pipeline_depth(d);
    }
    if let Some(q) = queue_cap {
        config = config.with_queue_cap(q);
    }
    if let Some(ms) = read_timeout {
        config = config.with_read_timeout(Duration::from_millis(ms));
    }
    let dispatcher = config
        .spawn_dispatcher()
        .unwrap_or_else(|e| fail(&format!("spawning the worker pool: {e}")));
    let depth_used = depth
        .unwrap_or(osc_core::batch::shard::pool::DEFAULT_PIPELINE_DEPTH)
        .max(1);
    let cap_used = queue_cap
        .unwrap_or(osc_core::batch::shard::pool::DEFAULT_QUEUE_CAP)
        .max(1);
    let service = Service::bind((addr.as_str(), port), dispatcher)
        .unwrap_or_else(|e| fail(&format!("binding {addr}:{port}: {e}")));
    println!(
        "[osc_service] listening on {} ({workers} workers, depth {depth_used}, queue cap {cap_used}, backend {backend})",
        service.local_addr()
    );
    // The readiness line must land before any client connects — CI
    // greps it for the ephemeral port.
    std::io::stdout().flush().ok();

    install_sigterm();
    // Stdin watcher: an explicit `shutdown` line also drains, so the
    // service is scriptable without signals. EOF does NOT drain —
    // backgrounding with stdin on /dev/null must keep serving.
    std::thread::Builder::new()
        .name("osc-service-stdin".into())
        .spawn(|| {
            let stdin = std::io::stdin();
            for line in stdin.lock().lines() {
                match line {
                    Ok(l) if l.trim() == "shutdown" => {
                        SHUTDOWN.store(true, Ordering::SeqCst);
                        break;
                    }
                    Ok(_) => continue,
                    Err(_) => break,
                }
            }
        })
        .ok();

    while !SHUTDOWN.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(50));
    }
    let served = service.drain();
    println!("[osc_service] drained after {served} requests");
}
