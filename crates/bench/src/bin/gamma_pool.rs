//! Persistent-pool soak demo — the CI `pool-soak` entry point.
//!
//! ```text
//! gamma_pool [--workers N] [--requests R] [--spawn-per-request]
//!            [--out PATH] [--stream BITS] [--size WxH]
//! ```
//!
//! Drives the shared [`osc_bench::soak`] schedule — `R` small
//! alternating gamma/contrast image requests — through one of three
//! serving modes, writes every output pixel's raw little-endian
//! IEEE-754 bytes to `--out`, and prints a one-line timing summary:
//!
//! - `--workers N` (default 3): a persistent `N`-worker
//!   [`PoolConfig`]-spawned pool, circuits cached worker-side — spawn +
//!   build paid once for the whole stream;
//! - `--workers 0`: the unsharded in-process row+lane pipeline;
//! - `--spawn-per-request`: a fresh `N`-shard `ShardCoordinator` run
//!   per request — the per-request-spawn baseline the pool amortizes.
//!
//! The determinism contract makes the output bytes **identical across
//! all modes and worker counts**, so CI `cmp`s them directly; the
//! timing lines are the amortization story. `gamma_sharded --requests`
//! drives the same schedule, so both binaries are interchangeable
//! entry points for local repros.

use osc_bench::soak::{self, SoakConfig, SoakMode};
use osc_core::batch::shard::pool::PoolConfig;
use osc_core::batch::shard::{locate_worker, ShardCoordinator};

fn fail(msg: &str) -> ! {
    eprintln!("gamma_pool: {msg}");
    std::process::exit(1);
}

fn main() {
    let mut workers = 3usize;
    let mut cfg = SoakConfig::default();
    let mut spawn_per_request = false;
    let mut out_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| {
            args.next()
                .unwrap_or_else(|| fail(&format!("{what} needs a value")))
        };
        match arg.as_str() {
            "--workers" => {
                workers = value("--workers")
                    .parse()
                    .unwrap_or_else(|_| fail("--workers needs an integer"))
            }
            "--requests" => {
                cfg.requests = value("--requests")
                    .parse()
                    .unwrap_or_else(|_| fail("--requests needs an integer"))
            }
            "--spawn-per-request" => spawn_per_request = true,
            "--out" => out_path = Some(value("--out")),
            "--stream" => {
                cfg.stream = value("--stream")
                    .parse()
                    .unwrap_or_else(|_| fail("--stream needs an integer"))
            }
            "--size" => {
                let v = value("--size");
                let (w, h) = v
                    .split_once('x')
                    .unwrap_or_else(|| fail("--size needs WxH"));
                cfg.width = w.parse().unwrap_or_else(|_| fail("--size needs WxH"));
                cfg.height = h.parse().unwrap_or_else(|_| fail("--size needs WxH"));
            }
            other => fail(&format!(
                "unknown argument {other}\nusage: gamma_pool [--workers N] [--requests R] \
                 [--spawn-per-request] [--out PATH] [--stream BITS] [--size WxH]"
            )),
        }
    }

    let worker = || {
        locate_worker("shard_worker").unwrap_or_else(|| {
            fail("could not locate the shard_worker binary (build it, or set OSC_SHARD_WORKER)")
        })
    };
    let (report, mode_name) = if workers == 0 {
        let report = soak::run(&cfg, SoakMode::InProcess)
            .unwrap_or_else(|e| fail(&format!("in-process soak: {e}")));
        (report, "in-process".to_string())
    } else if spawn_per_request {
        let coordinator = ShardCoordinator::new(worker(), workers);
        let report = soak::run(&cfg, SoakMode::Spawn(&coordinator))
            .unwrap_or_else(|e| fail(&format!("spawn-per-request soak: {e}")));
        (report, format!("spawn-per-request({workers})"))
    } else {
        let mut pool = PoolConfig::new(worker(), workers)
            .spawn()
            .unwrap_or_else(|e| fail(&format!("pool spawn: {e}")));
        let report = soak::run(&cfg, SoakMode::Pool(&mut pool))
            .unwrap_or_else(|e| fail(&format!("pooled soak: {e}")));
        (report, format!("pool({workers})"))
    };
    println!(
        "{}",
        soak::summary_line("gamma_pool", &cfg, &mode_name, &report)
    );

    if let Some(path) = out_path {
        if let Err(e) = std::fs::write(&path, &report.bytes) {
            fail(&format!("writing {path}: {e}"));
        }
        println!(
            "[gamma_pool] wrote {} pixel bytes to {path}",
            report.bytes.len()
        );
    }
}
