//! Persistent-pool soak demo — the CI `pool-soak` entry point.
//!
//! ```text
//! gamma_pool [--workers N] [--requests R] [--spawn-per-request]
//!            [--service ADDR] [--connections N] [--open-loop]
//!            [--out PATH] [--stream BITS] [--size WxH]
//!            [--backend NAME] [--fault-flip P] [--fault-shift P]
//!            [--fault-seed S]
//! ```
//!
//! Drives the shared [`osc_bench::soak`] schedule — `R` small
//! alternating gamma/contrast image requests — through one of three
//! serving modes, writes every output pixel's raw little-endian
//! IEEE-754 bytes to `--out`, and prints a one-line timing summary:
//!
//! - `--workers N` (default 3): a persistent `N`-worker
//!   [`PoolConfig`]-spawned pool, circuits cached worker-side — spawn +
//!   build paid once for the whole stream;
//! - `--workers 0`: the unsharded in-process row+lane pipeline;
//! - `--spawn-per-request`: a fresh `N`-shard `ShardCoordinator` run
//!   per request — the per-request-spawn baseline the pool amortizes;
//! - `--service ADDR`: the multi-client load generator against a
//!   running `osc_service` front door at `ADDR` — `--connections N`
//!   (default 3) concurrent TCP connections share the schedule, and
//!   `--open-loop` switches each connection from awaiting every
//!   response (closed-loop) to sending its whole burst up front, so
//!   the p50/p95/p99 latencies include queueing delay.
//!
//! The determinism contract makes the output bytes **identical across
//! all modes and worker counts**, so CI `cmp`s them directly; the
//! timing lines are the amortization story. `gamma_sharded --requests`
//! drives the same schedule, so both binaries are interchangeable
//! entry points for local repros.
//!
//! `--backend NAME` (`mrr-mzi`, the default, or `nanocavity`) selects
//! the transmission physics behind every request's circuit — the CI
//! backend-matrix leg runs the same schedule per backend and `cmp`s
//! bytes across modes exactly like the default leg.
//!
//! `--fault-flip` / `--fault-shift` / `--fault-seed` inject a seeded
//! fault process into every request (the CI `fault-soak` leg) — the
//! fault-universe determinism contract keeps faulty bytes identical
//! across modes and worker counts too.

use osc_bench::soak::{self, LoadConfig, SoakConfig, SoakMode};
use osc_core::backend::BackendKind;
use osc_core::batch::shard::pool::PoolConfig;
use osc_core::batch::shard::{locate_worker, ShardCoordinator};
use osc_core::fault::FaultSpec;

fn fail(msg: &str) -> ! {
    eprintln!("gamma_pool: {msg}");
    std::process::exit(1);
}

/// Builds the optional fault process from the `--fault-*` flags: both
/// rates zero means the clean pipeline.
fn build_fault(flip: f64, shift: f64, seed: u64) -> Option<FaultSpec> {
    if flip == 0.0 && shift == 0.0 {
        return None;
    }
    let mut spec = FaultSpec::with_seed(seed);
    spec.flip_probability = flip;
    spec.shift_probability = shift;
    if let Err(e) = spec.validate() {
        fail(&format!("invalid fault flags: {e}"));
    }
    Some(spec)
}

fn main() {
    let mut workers = 3usize;
    let mut cfg = SoakConfig::default();
    let mut spawn_per_request = false;
    let mut service_addr: Option<String> = None;
    let mut load = LoadConfig::default();
    let mut out_path: Option<String> = None;
    let mut fault_flip = 0.0f64;
    let mut fault_shift = 0.0f64;
    let mut fault_seed = 0xFA07u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| {
            args.next()
                .unwrap_or_else(|| fail(&format!("{what} needs a value")))
        };
        match arg.as_str() {
            "--workers" => {
                workers = value("--workers")
                    .parse()
                    .unwrap_or_else(|_| fail("--workers needs an integer"))
            }
            "--requests" => {
                cfg.requests = value("--requests")
                    .parse()
                    .unwrap_or_else(|_| fail("--requests needs an integer"))
            }
            "--spawn-per-request" => spawn_per_request = true,
            "--service" => service_addr = Some(value("--service")),
            "--connections" => {
                load.connections = value("--connections")
                    .parse()
                    .unwrap_or_else(|_| fail("--connections needs an integer"))
            }
            "--open-loop" => load.open_loop = true,
            "--out" => out_path = Some(value("--out")),
            "--stream" => {
                cfg.stream = value("--stream")
                    .parse()
                    .unwrap_or_else(|_| fail("--stream needs an integer"))
            }
            "--size" => {
                let v = value("--size");
                let (w, h) = v
                    .split_once('x')
                    .unwrap_or_else(|| fail("--size needs WxH"));
                cfg.width = w.parse().unwrap_or_else(|_| fail("--size needs WxH"));
                cfg.height = h.parse().unwrap_or_else(|_| fail("--size needs WxH"));
            }
            "--backend" => {
                let name = value("--backend");
                cfg.backend = BackendKind::parse(&name).unwrap_or_else(|| {
                    fail(&format!(
                        "unknown backend {name} (expected mrr-mzi or nanocavity)"
                    ))
                })
            }
            "--fault-flip" => {
                fault_flip = value("--fault-flip")
                    .parse()
                    .unwrap_or_else(|_| fail("--fault-flip needs a probability"))
            }
            "--fault-shift" => {
                fault_shift = value("--fault-shift")
                    .parse()
                    .unwrap_or_else(|_| fail("--fault-shift needs a probability"))
            }
            "--fault-seed" => {
                fault_seed = value("--fault-seed")
                    .parse()
                    .unwrap_or_else(|_| fail("--fault-seed needs an integer"))
            }
            other => fail(&format!(
                "unknown argument {other}\nusage: gamma_pool [--workers N] [--requests R] \
                 [--spawn-per-request] [--service ADDR] [--connections N] [--open-loop] \
                 [--out PATH] [--stream BITS] [--size WxH] [--backend NAME] \
                 [--fault-flip P] [--fault-shift P] [--fault-seed S]"
            )),
        }
    }
    cfg.fault = build_fault(fault_flip, fault_shift, fault_seed);

    let worker = || {
        locate_worker("shard_worker").unwrap_or_else(|| {
            fail("could not locate the shard_worker binary (build it, or set OSC_SHARD_WORKER)")
        })
    };
    let (report, mode_name) = if let Some(addr) = service_addr {
        let addr = addr
            .parse()
            .unwrap_or_else(|_| fail("--service needs HOST:PORT"));
        let report = soak::run_service(&cfg, addr, &load)
            .unwrap_or_else(|e| fail(&format!("service soak against {addr}: {e}")));
        let loop_name = if load.open_loop { "open" } else { "closed" };
        (
            report,
            format!(
                "service({addr}, {} conns, {loop_name}-loop)",
                load.connections
            ),
        )
    } else if workers == 0 {
        let report = soak::run(&cfg, SoakMode::InProcess)
            .unwrap_or_else(|e| fail(&format!("in-process soak: {e}")));
        (report, "in-process".to_string())
    } else if spawn_per_request {
        let coordinator = ShardCoordinator::new(worker(), workers);
        let report = soak::run(&cfg, SoakMode::Spawn(&coordinator))
            .unwrap_or_else(|e| fail(&format!("spawn-per-request soak: {e}")));
        (report, format!("spawn-per-request({workers})"))
    } else {
        let mut pool = PoolConfig::new(worker(), workers)
            .spawn()
            .unwrap_or_else(|e| fail(&format!("pool spawn: {e}")));
        let report = soak::run(&cfg, SoakMode::Pool(&mut pool))
            .unwrap_or_else(|e| fail(&format!("pooled soak: {e}")));
        (report, format!("pool({workers})"))
    };
    println!(
        "{}",
        soak::summary_line("gamma_pool", &cfg, &mode_name, &report)
    );

    if let Some(path) = out_path {
        if let Err(e) = std::fs::write(&path, &report.bytes) {
            fail(&format!("writing {path}: {e}"));
        }
        println!(
            "[gamma_pool] wrote {} pixel bytes to {path}",
            report.bytes.len()
        );
    }
}
