//! Process-sharded gamma correction demo — the CI determinism smoke.
//!
//! ```text
//! gamma_sharded [--shards N | --workers N] [--requests R]
//!               [--out PATH] [--stream BITS] [--size WxH]
//!               [--fault-flip P] [--fault-shift P] [--fault-seed S]
//! ```
//!
//! Default mode: runs the paper's Section V.C gamma-correction workload
//! (order-6 optical circuit) once over a synthetic image, sharded
//! across `N` `shard_worker` subprocesses (`--shards 0` runs the
//! in-process row+lane pipeline instead), and writes every output pixel
//! as its raw little-endian IEEE-754 bytes to `--out`. The sharding
//! determinism contract makes those bytes **identical for every shard
//! count**, so CI diffs `--shards 1` against `--shards 3` (and against
//! the in-process `--shards 0`) with a plain `cmp`.
//!
//! `--requests R` switches to the shared [`osc_bench::soak`] schedule —
//! `R` small alternating gamma/contrast requests, each on a **freshly
//! spawned** coordinator run (the per-request-spawn baseline) — writing
//! the same concatenated bytes the `gamma_pool` binary produces in its
//! modes, so the CI soak job and local repros share one entry point.
//! `--workers` is an alias for `--shards`. Both modes print a one-line
//! timing summary.
//!
//! `--fault-flip` / `--fault-shift` / `--fault-seed` inject a seeded
//! fault process into every evaluation (both modes) — the
//! fault-universe determinism contract keeps faulty bytes identical
//! across shard counts, so the CI `fault-soak` job `cmp`s them exactly
//! like clean bytes.

use osc_apps::backend::OpticalBackend;
use osc_apps::gamma_app::{self, paper_gamma_polynomial};
use osc_apps::image::Image;
use osc_bench::soak::{self, SoakConfig, SoakMode};
use osc_core::batch::shard::{locate_worker, ShardCoordinator};
use osc_core::batch::BatchEvaluator;
use osc_core::fault::FaultSpec;
use osc_core::params::CircuitParams;
use osc_stochastic::gamma::{gamma_exact, DISPLAY_GAMMA};
use osc_units::Nanometers;

fn fail(msg: &str) -> ! {
    eprintln!("gamma_sharded: {msg}");
    std::process::exit(1);
}

fn write_bytes(path: &str, bytes: &[u8]) {
    if let Err(e) = std::fs::write(path, bytes) {
        fail(&format!("writing {path}: {e}"));
    }
    println!(
        "[gamma_sharded] wrote {} pixel bytes to {path}",
        bytes.len()
    );
}

/// Builds the optional fault process from the `--fault-*` flags: both
/// rates zero means the clean pipeline.
fn build_fault(flip: f64, shift: f64, seed: u64) -> Option<FaultSpec> {
    if flip == 0.0 && shift == 0.0 {
        return None;
    }
    let mut spec = FaultSpec::with_seed(seed);
    spec.flip_probability = flip;
    spec.shift_probability = shift;
    if let Err(e) = spec.validate() {
        fail(&format!("invalid fault flags: {e}"));
    }
    Some(spec)
}

fn main() {
    let mut shards = 3usize;
    let mut requests: Option<usize> = None;
    let mut out_path: Option<String> = None;
    let mut stream: Option<usize> = None;
    let mut size: Option<(usize, usize)> = None;
    let mut fault_flip = 0.0f64;
    let mut fault_shift = 0.0f64;
    let mut fault_seed = 0xFA07u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| {
            args.next()
                .unwrap_or_else(|| fail(&format!("{what} needs a value")))
        };
        match arg.as_str() {
            "--shards" | "--workers" => {
                shards = value(&arg)
                    .parse()
                    .unwrap_or_else(|_| fail(&format!("{arg} needs an integer")))
            }
            "--requests" => {
                requests = Some(
                    value("--requests")
                        .parse()
                        .unwrap_or_else(|_| fail("--requests needs an integer")),
                )
            }
            "--out" => out_path = Some(value("--out")),
            "--stream" => {
                stream = Some(
                    value("--stream")
                        .parse()
                        .unwrap_or_else(|_| fail("--stream needs an integer")),
                )
            }
            "--size" => {
                let v = value("--size");
                let (w, h) = v
                    .split_once('x')
                    .unwrap_or_else(|| fail("--size needs WxH"));
                size = Some((
                    w.parse().unwrap_or_else(|_| fail("--size needs WxH")),
                    h.parse().unwrap_or_else(|_| fail("--size needs WxH")),
                ));
            }
            "--fault-flip" => {
                fault_flip = value("--fault-flip")
                    .parse()
                    .unwrap_or_else(|_| fail("--fault-flip needs a probability"))
            }
            "--fault-shift" => {
                fault_shift = value("--fault-shift")
                    .parse()
                    .unwrap_or_else(|_| fail("--fault-shift needs a probability"))
            }
            "--fault-seed" => {
                fault_seed = value("--fault-seed")
                    .parse()
                    .unwrap_or_else(|_| fail("--fault-seed needs an integer"))
            }
            other => fail(&format!(
                "unknown argument {other}\nusage: gamma_sharded [--shards N | --workers N] \
                 [--requests R] [--out PATH] [--stream BITS] [--size WxH] \
                 [--fault-flip P] [--fault-shift P] [--fault-seed S]"
            )),
        }
    }
    let fault = build_fault(fault_flip, fault_shift, fault_seed);

    // Soak mode: the shared schedule, a fresh coordinator spawn per
    // request (or the in-process pipeline with 0 workers) — byte-
    // comparable against every gamma_pool mode.
    if let Some(requests) = requests {
        // Unset size/stream default to the shared SoakConfig — the same
        // defaults gamma_pool uses — so the two binaries stay
        // byte-comparable without explicit flags.
        let defaults = SoakConfig::default();
        let (width, height) = size.unwrap_or((defaults.width, defaults.height));
        let cfg = SoakConfig {
            requests,
            width,
            height,
            stream: stream.unwrap_or(defaults.stream),
            fault,
            ..defaults
        };
        let (report, mode_name) = if shards == 0 {
            let report = soak::run(&cfg, SoakMode::InProcess)
                .unwrap_or_else(|e| fail(&format!("in-process soak: {e}")));
            (report, "in-process".to_string())
        } else {
            let worker = locate_worker("shard_worker").unwrap_or_else(|| {
                fail("could not locate the shard_worker binary (build it, or set OSC_SHARD_WORKER)")
            });
            let coordinator = ShardCoordinator::new(worker, shards);
            let report = soak::run(&cfg, SoakMode::Spawn(&coordinator))
                .unwrap_or_else(|e| fail(&format!("spawn-per-request soak: {e}")));
            (report, format!("spawn-per-request({shards})"))
        };
        println!(
            "{}",
            soak::summary_line("gamma_sharded", &cfg, &mode_name, &report)
        );
        if let Some(path) = out_path {
            write_bytes(&path, &report.bytes);
        }
        return;
    }

    // Legacy single-image defaults: the paper's 64×64 frame at 512 bits.
    let size = size.unwrap_or((64, 64));
    let stream = stream.unwrap_or(512);
    let image = Image::blobs(size.0, size.1);
    let poly = paper_gamma_polynomial().unwrap_or_else(|e| fail(&format!("gamma fit: {e}")));
    let params = CircuitParams::paper_fig7(6, Nanometers::new(0.165));
    let backend = OpticalBackend::new(params, poly, stream, 13)
        .unwrap_or_else(|e| fail(&format!("circuit build: {e}")));

    let started = std::time::Instant::now();
    let produced = if shards == 0 {
        gamma_app::apply_optical_lanes_faulted(
            &image,
            &backend,
            &BatchEvaluator::new(),
            fault.as_ref(),
        )
        .unwrap_or_else(|e| fail(&format!("in-process pipeline: {e}")))
    } else {
        let worker = locate_worker("shard_worker").unwrap_or_else(|| {
            fail("could not locate the shard_worker binary (build it, or set OSC_SHARD_WORKER)")
        });
        let coordinator = ShardCoordinator::new(worker, shards);
        gamma_app::apply_optical_sharded_faulted(&image, &backend, &coordinator, fault.as_ref())
            .unwrap_or_else(|e| fail(&format!("sharded pipeline: {e}")))
    };
    let elapsed = started.elapsed();

    let reference = image.map(|p| gamma_exact(p, DISPLAY_GAMMA));
    let psnr = produced.psnr_db(&reference).unwrap();
    let mae = produced.mae(&reference).unwrap();
    println!(
        "[gamma_sharded] {}x{} stream={stream} shards={shards}: psnr {psnr:.2} dB, mae {mae:.4}, \
         total {:.3} s",
        size.0,
        size.1,
        elapsed.as_secs_f64()
    );

    if let Some(path) = out_path {
        let mut bytes = Vec::with_capacity(produced.pixels().len() * 8);
        for &p in produced.pixels() {
            bytes.extend_from_slice(&p.to_bits().to_le_bytes());
        }
        write_bytes(&path, &bytes);
    }
}
