//! Process-sharded gamma correction demo — the CI determinism smoke.
//!
//! ```text
//! gamma_sharded [--shards N] [--out PATH] [--stream BITS] [--size WxH]
//! ```
//!
//! Runs the paper's Section V.C gamma-correction workload (order-6
//! optical circuit) over a synthetic image, sharded across `N`
//! `shard_worker` subprocesses (`--shards 0` runs the in-process
//! row+lane pipeline instead), and writes every output pixel as its raw
//! little-endian IEEE-754 bytes to `--out`. The sharding determinism
//! contract makes those bytes **identical for every shard count**, so
//! CI diffs `--shards 1` against `--shards 3` (and against the
//! in-process `--shards 0`) with a plain `cmp`.

use osc_apps::backend::OpticalBackend;
use osc_apps::gamma_app::{self, paper_gamma_polynomial};
use osc_apps::image::Image;
use osc_core::batch::shard::{locate_worker, ShardCoordinator};
use osc_core::batch::BatchEvaluator;
use osc_core::params::CircuitParams;
use osc_stochastic::gamma::{gamma_exact, DISPLAY_GAMMA};
use osc_units::Nanometers;

fn fail(msg: &str) -> ! {
    eprintln!("gamma_sharded: {msg}");
    std::process::exit(1);
}

fn main() {
    let mut shards = 3usize;
    let mut out_path: Option<String> = None;
    let mut stream = 512usize;
    let mut size = (64usize, 64usize);
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| {
            args.next()
                .unwrap_or_else(|| fail(&format!("{what} needs a value")))
        };
        match arg.as_str() {
            "--shards" => {
                shards = value("--shards")
                    .parse()
                    .unwrap_or_else(|_| fail("--shards needs an integer"))
            }
            "--out" => out_path = Some(value("--out")),
            "--stream" => {
                stream = value("--stream")
                    .parse()
                    .unwrap_or_else(|_| fail("--stream needs an integer"))
            }
            "--size" => {
                let v = value("--size");
                let (w, h) = v
                    .split_once('x')
                    .unwrap_or_else(|| fail("--size needs WxH"));
                size = (
                    w.parse().unwrap_or_else(|_| fail("--size needs WxH")),
                    h.parse().unwrap_or_else(|_| fail("--size needs WxH")),
                );
            }
            other => fail(&format!(
                "unknown argument {other}\nusage: gamma_sharded [--shards N] [--out PATH] [--stream BITS] [--size WxH]"
            )),
        }
    }

    let image = Image::blobs(size.0, size.1);
    let poly = paper_gamma_polynomial().unwrap_or_else(|e| fail(&format!("gamma fit: {e}")));
    let params = CircuitParams::paper_fig7(6, Nanometers::new(0.165));
    let backend = OpticalBackend::new(params, poly, stream, 13)
        .unwrap_or_else(|e| fail(&format!("circuit build: {e}")));

    let produced = if shards == 0 {
        gamma_app::apply_optical_lanes(&image, &backend, &BatchEvaluator::new())
            .unwrap_or_else(|e| fail(&format!("in-process pipeline: {e}")))
    } else {
        let worker = locate_worker("shard_worker").unwrap_or_else(|| {
            fail("could not locate the shard_worker binary (build it, or set OSC_SHARD_WORKER)")
        });
        let coordinator = ShardCoordinator::new(worker, shards);
        gamma_app::apply_optical_sharded(&image, &backend, &coordinator)
            .unwrap_or_else(|e| fail(&format!("sharded pipeline: {e}")))
    };

    let reference = image.map(|p| gamma_exact(p, DISPLAY_GAMMA));
    let psnr = produced.psnr_db(&reference).unwrap();
    let mae = produced.mae(&reference).unwrap();
    println!(
        "[gamma_sharded] {}x{} stream={stream} shards={shards}: psnr {psnr:.2} dB, mae {mae:.4}",
        size.0, size.1
    );

    if let Some(path) = out_path {
        let mut bytes = Vec::with_capacity(produced.pixels().len() * 8);
        for &p in produced.pixels() {
            bytes.extend_from_slice(&p.to_bits().to_le_bytes());
        }
        if let Err(e) = std::fs::write(&path, &bytes) {
            fail(&format!("writing {path}: {e}"));
        }
        println!(
            "[gamma_sharded] wrote {} pixel bytes to {path}",
            bytes.len()
        );
    }
}
