//! Shard worker: the subprocess half of `osc_core::batch::shard`.
//!
//! ```text
//! shard_worker            # serve the wire protocol over stdin/stdout
//! ```
//!
//! Speaks the framed binary protocol documented in
//! [`osc_core::batch::shard`] — both versions: one-shot v1 requests and
//! the v2 pool protocol (request IDs, cached-circuit references; the
//! last few built circuits persist across requests in an LRU cache, so
//! a pool's repeat requests skip the rebuild). Reads request frames
//! from stdin until EOF, answering each with one response frame on
//! stdout in the version it arrived in. Every expressible failure —
//! malformed frames, unknown protocol versions, invalid configurations,
//! evaluation errors, caught panics — is reported *as an error
//! response*, so a coordinator never sees this process abort on bad
//! input; a non-zero exit happens only when the transport itself dies
//! (truncated frame, oversized length prefix, vanished pipe).
//!
//! The in-process thread count follows `OSC_THREADS` (the coordinator
//! exports it when pinned via `ShardCoordinator::with_worker_threads`
//! or `PoolConfig::with_worker_threads`).

use std::io::{BufReader, BufWriter};

fn main() {
    if std::env::args().nth(1).is_some() {
        eprintln!("usage: shard_worker   (speaks the osc shard protocol over stdin/stdout)");
        std::process::exit(2);
    }
    let stdin = BufReader::new(std::io::stdin().lock());
    let stdout = BufWriter::new(std::io::stdout().lock());
    if let Err(e) = osc_core::batch::shard::serve(stdin, stdout) {
        eprintln!("shard_worker: transport error: {e}");
        std::process::exit(1);
    }
}
