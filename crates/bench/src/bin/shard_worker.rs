//! Shard worker: the subprocess half of `osc_core::batch::shard`.
//!
//! ```text
//! shard_worker            # serve the wire protocol over stdin/stdout
//! ```
//!
//! Speaks the framed binary protocol documented in
//! [`osc_core::batch::shard`]: reads request frames from stdin until
//! EOF, answering each with one response frame on stdout. Every
//! expressible failure — malformed frames, invalid configurations,
//! evaluation errors, caught panics — is reported *as an error
//! response*, so a coordinator never sees this process abort on bad
//! input; a non-zero exit happens only when the transport itself dies.
//!
//! The in-process thread count follows `OSC_THREADS` (the coordinator
//! exports it when pinned via `ShardCoordinator::with_worker_threads`).

use std::io::{BufReader, BufWriter};

fn main() {
    if std::env::args().nth(1).is_some() {
        eprintln!("usage: shard_worker   (speaks the osc shard protocol over stdin/stdout)");
        std::process::exit(2);
    }
    let stdin = BufReader::new(std::io::stdin().lock());
    let stdout = BufWriter::new(std::io::stdout().lock());
    if let Err(e) = osc_core::batch::shard::serve(stdin, stdout) {
        eprintln!("shard_worker: transport error: {e}");
        std::process::exit(1);
    }
}
