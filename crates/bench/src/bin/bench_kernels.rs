//! Emits `BENCH_kernels.json`: the word-parallel kernel speedup report.
//!
//! ```text
//! bench_kernels [--out PATH] [--budget-ms N]
//! ```
//!
//! Defaults: `BENCH_kernels.json` in the current directory, 300 ms per
//! measurement. CI runs this with a small budget as a smoke check; local
//! runs with the default budget produce the numbers quoted in docs.

use osc_bench::kernels;

fn main() {
    let mut out_path = String::from("BENCH_kernels.json");
    let mut budget_ms = 300u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => {
                out_path = args.next().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                })
            }
            "--budget-ms" => {
                budget_ms = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--budget-ms needs an integer");
                    std::process::exit(2);
                })
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: bench_kernels [--out PATH] [--budget-ms N]");
                std::process::exit(2);
            }
        }
    }
    let report = kernels::run(budget_ms);
    kernels::print(&report);
    let json = kernels::to_json(&report);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("error: could not write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("[kernel report written to {out_path}]");
}
