//! Appends a run record to `BENCH_kernels.json`: the kernel speedup
//! trajectory.
//!
//! ```text
//! bench_kernels [--out PATH] [--budget-ms N] [--label NAME] [--check PATH]
//! ```
//!
//! Defaults: `BENCH_kernels.json` in the current directory, 300 ms per
//! measurement, label `local`. When the output file already exists its
//! run records are preserved and the new run is appended (a
//! pre-trajectory single-run file is migrated to the first record), so
//! the file carries the PR-over-PR perf history.
//!
//! `--check PATH` compares this run's speedups against the committed
//! trajectory in PATH (per workload, the lower median of the last
//! three same-tier records — robust to a single outlier record) and
//! exits non-zero if any workload regresses below 80% of that
//! reference — the CI regression gate. Workloads
//! with **no prior trajectory entry** (fresh benchmarks landing in the
//! same PR) are recorded but not gated on their first run, so adding a
//! benchmark can never fail the gate by construction; the failure
//! message lists every regressed workload and by how much it fell.

use osc_bench::kernels;

/// A fresh measurement must reach this fraction of the recorded speedup.
const CHECK_THRESHOLD: f64 = 0.8;

fn main() {
    let mut out_path = String::from("BENCH_kernels.json");
    let mut budget_ms = 300u64;
    let mut label = String::from("local");
    let mut check_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    let missing = |what: &str| -> String {
        eprintln!("{what}");
        std::process::exit(2);
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().unwrap_or_else(|| missing("--out needs a path")),
            "--label" => {
                label = args
                    .next()
                    .unwrap_or_else(|| missing("--label needs a name"))
            }
            "--check" => {
                check_path = Some(
                    args.next()
                        .unwrap_or_else(|| missing("--check needs a path")),
                )
            }
            "--budget-ms" => {
                budget_ms = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--budget-ms needs an integer");
                    std::process::exit(2);
                })
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: bench_kernels [--out PATH] [--budget-ms N] [--label NAME] [--check PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    // Make the SIMD dispatch visible in CI logs: the dispatch-matrix jobs
    // pin the tier via OSC_SIMD, and this line is how a log proves which
    // kernel path actually ran.
    println!(
        "[simd] dispatch tier: {} (detected: {})",
        osc_stochastic::simd::active_tier().name(),
        osc_stochastic::simd::detected_tier().name()
    );
    // Snapshot the regression reference BEFORE the fresh run is appended:
    // with `--check` and `--out` naming the same file, reading afterwards
    // would compare the new run against itself and always pass.
    let committed_reference = check_path.as_ref().map(|path| {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("error: could not read {path}: {e}");
            std::process::exit(1);
        })
    });
    // Speedups are tier-relative, so the run record is stamped with the
    // active tier and the gate compares only against a same-tier (or
    // legacy untagged) reference run.
    let tier = osc_stochastic::simd::active_tier().name();
    let report = kernels::run(budget_ms);
    kernels::print(&report);
    let record = kernels::render_run(&report, &label, tier);
    let existing = std::fs::read_to_string(&out_path).ok();
    let merged = kernels::append_run(existing.as_deref(), &record);
    if let Err(e) = std::fs::write(&out_path, &merged) {
        eprintln!("error: could not write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("[kernel run '{label}' ({tier}) appended to {out_path}]");

    if let Some(path) = check_path {
        let committed = committed_reference.expect("read when --check was parsed");
        let outcome = kernels::check_report(&report, &committed, CHECK_THRESHOLD, tier);
        // Fail loudly only when the committed trajectory records nothing
        // for this tier at all; a run where every recorded workload
        // happens to be unmeasured (e.g. after a rename) reports them as
        // skipped below.
        if outcome.passed.is_empty()
            && outcome.regressions.is_empty()
            && outcome.advisory.is_empty()
            && outcome.skipped.is_empty()
        {
            if kernels::last_run_speedups(&committed).is_empty() {
                // The file records nothing for ANY tier: almost
                // certainly the wrong path, not a fresh tier.
                eprintln!("error: no recorded speedups found in {path}");
                std::process::exit(1);
            }
            eprintln!(
                "warning: no recorded run for tier '{tier}' in {path} — nothing gated \
                 (the first run on a new tier is recorded, not judged)"
            );
        }
        for (name, measured, recorded) in &outcome.passed {
            println!(
                "[check] {name}: measured {measured:.2}x vs recorded {recorded:.2}x \
                 (floor {:.2}x) — ok",
                recorded * CHECK_THRESHOLD
            );
        }
        for name in &outcome.skipped {
            // Loud on stderr: a recorded workload that silently stops
            // being measured (e.g. the shard_worker binary missing, or a
            // rename) drops out of the regression gate entirely — that
            // must be visible in CI logs even though it does not fail
            // the gate (renames are legitimate).
            eprintln!(
                "warning: [check] {name}: recorded in the trajectory but NOT measured in this \
                 run — it is not being gated (missing prerequisite binary or renamed workload?)"
            );
        }
        for name in &outcome.new_workloads {
            println!("[check] {name}: new workload (no prior trajectory entry) — recorded, not gated on its first run");
        }
        for adv in &outcome.advisory {
            // Below-floor spawn-overhead workloads are surfaced but never
            // fail the gate: their single-core ratio is documented
            // scale-out overhead that swings with host load.
            println!(
                "[check] {}: measured {:.2}x vs recorded {:.2}x (floor {:.2}x) — \
                 ADVISORY ONLY (unamortized spawn-overhead workload, not gated)",
                adv.name, adv.measured, adv.recorded, adv.floor
            );
        }
        if !outcome.is_ok() {
            eprintln!(
                "error: kernel speedup regression below {CHECK_THRESHOLD} of the recorded trajectory:"
            );
            for reg in &outcome.regressions {
                eprintln!(
                    "  - {}: measured {:.2}x vs recorded {:.2}x (floor {:.2}x, down {:.0}%)",
                    reg.name,
                    reg.measured,
                    reg.recorded,
                    reg.floor,
                    reg.shortfall_percent()
                );
            }
            std::process::exit(1);
        }
    }
}
