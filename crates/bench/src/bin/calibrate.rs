//! Calibration diagnostics: re-runs the device fit and prints the derived
//! operating points next to the paper's values. Used to produce the
//! constants in `osc_core::params` and the records in EXPERIMENTS.md.
use osc_core::calibration::{self, Fig5Targets};
use osc_core::design::mzi_first::{MziFirstDesign, MziFirstInputs};
use osc_core::energy::{EnergyAssumptions, EnergyModel};
use osc_core::params::CircuitParams;
use osc_units::{DbRatio, Nanometers};

fn main() {
    let pred = calibration::predict(&CircuitParams::paper_fig5()).unwrap();
    println!("shipped defaults predict: {pred:#?}");
    println!("paper targets:            {:#?}", Fig5Targets::paper());

    let d = MziFirstDesign::solve(&MziFirstInputs::paper_fig6(
        DbRatio::from_db(6.5),
        DbRatio::from_db(7.5),
    ))
    .unwrap();
    println!("Xiao min probe = {} (paper: 0.26 mW)", d.min_probe_power);

    for n in [2usize, 4, 6] {
        let m = EnergyModel::new(n, EnergyAssumptions::default());
        match m.optimal_spacing(0.1, 1.0) {
            Ok(b) => println!(
                "n={n}: opt spacing {:.3} nm, total {:.2} pJ (pump {:.2} + probe {:.2})",
                b.wl_spacing.as_nm(),
                b.total().as_pj(),
                b.pump_energy.as_pj(),
                b.probe_energy.as_pj()
            ),
            Err(e) => println!("n={n}: {e}"),
        }
    }
    for n in [2usize, 4, 8, 12, 16] {
        let m = EnergyModel::new(n, EnergyAssumptions::default());
        let e1 = m.breakdown(Nanometers::new(1.0)).unwrap();
        let opt = m.optimal_spacing(0.1, 1.0).unwrap();
        println!(
            "n={n}: 1nm {:.1} pJ, optimal {:.1} pJ (s={:.3}), saving {:.1}%",
            e1.total().as_pj(),
            opt.total().as_pj(),
            opt.wl_spacing.as_nm(),
            (1.0 - opt.total().as_pj() / e1.total().as_pj()) * 100.0
        );
    }
}
