//! Pool-scale design-space search — the CI `design-sweep` entry point.
//!
//! ```text
//! design_sweep [--candidates N] [--workers N] [--spawn-per-request]
//!              [--service HOST:PORT] [--backend NAME] [--csv PATH]
//!              [--stream BITS[,BITS...]] [--probes K] [--seed S]
//!              [--cache N]
//! ```
//!
//! Enumerates at least `--candidates` (default 64) design candidates
//! over the Fig. 6 device ranges ([`osc_bench::sweep::axes_for`]),
//! solves each distinct design point, measures every candidate's
//! empirical accuracy through one of four serving modes, extracts the
//! accuracy × energy × area Pareto frontier and prints a one-line
//! timing summary:
//!
//! - `--workers N` (default 3): a persistent `N`-worker pool; all
//!   candidates stream through one pipelined
//!   [`WorkerPool::run_requests`] call, with the worker circuit cache
//!   sized to the sweep's working set (`--cache N` overrides; the
//!   `OSC_CIRCUIT_CACHE` env var reaches workers spawned without the
//!   knob);
//! - `--workers 0`: in-process, through the same SNG dispatch point
//!   the workers run;
//! - `--spawn-per-request`: a fresh single-shard coordinator per
//!   candidate — the per-request-spawn baseline the pool amortizes;
//! - `--service HOST:PORT`: one TCP connection to a running
//!   `osc_service` front door, one request per candidate.
//!
//! `--csv PATH` writes the canonical frontier CSV
//! ([`osc_core::design::sweep::frontier_csv`]). The determinism
//! contract makes the CSV **byte-identical across all four modes,
//! every worker count and every SIMD dispatch tier**, so CI `cmp`s the
//! files directly. `--backend NAME` (`mrr-mzi`, `nanocavity`; default
//! sweeps both) restricts the backend axis.
//!
//! [`WorkerPool::run_requests`]: osc_core::batch::shard::pool::WorkerPool::run_requests

use osc_bench::sweep::{axes_for, summary_line};
use osc_core::backend::BackendKind;
use osc_core::batch::shard::pool::PoolConfig;
use osc_core::batch::shard::service::ServiceClient;
use osc_core::batch::shard::{locate_worker, ShardCoordinator};
use osc_core::batch::BatchEvaluator;
use osc_core::design::sweep::{frontier_csv, pareto_frontier, DesignSweep, SweepMode};
use std::time::Instant;

fn fail(msg: &str) -> ! {
    eprintln!("design_sweep: {msg}");
    std::process::exit(1);
}

fn main() {
    let mut candidates = 64usize;
    let mut workers = 3usize;
    let mut spawn_per_request = false;
    let mut service_addr: Option<String> = None;
    let mut backend: Option<BackendKind> = None;
    let mut csv_path: Option<String> = None;
    let mut streams: Vec<usize> = Vec::new();
    let mut probes = 3usize;
    let mut seed = 0xDE51_6E0Au64;
    let mut cache: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| {
            args.next()
                .unwrap_or_else(|| fail(&format!("{what} needs a value")))
        };
        match arg.as_str() {
            "--candidates" => {
                candidates = value("--candidates")
                    .parse()
                    .unwrap_or_else(|_| fail("--candidates needs an integer"))
            }
            "--workers" => {
                workers = value("--workers")
                    .parse()
                    .unwrap_or_else(|_| fail("--workers needs an integer"))
            }
            "--spawn-per-request" => spawn_per_request = true,
            "--service" => service_addr = Some(value("--service")),
            "--backend" => {
                let name = value("--backend");
                backend = Some(BackendKind::parse(&name).unwrap_or_else(|| {
                    fail(&format!(
                        "unknown backend {name} (expected mrr-mzi or nanocavity)"
                    ))
                }))
            }
            "--csv" => csv_path = Some(value("--csv")),
            "--stream" => {
                streams = value("--stream")
                    .split(',')
                    .map(|s| s.trim().parse())
                    .collect::<Result<_, _>>()
                    .unwrap_or_else(|_| fail("--stream needs comma-separated integers"))
            }
            "--probes" => {
                probes = value("--probes")
                    .parse()
                    .unwrap_or_else(|_| fail("--probes needs an integer"))
            }
            "--seed" => {
                seed = value("--seed")
                    .parse()
                    .unwrap_or_else(|_| fail("--seed needs an integer"))
            }
            "--cache" => {
                cache = Some(
                    value("--cache")
                        .parse()
                        .unwrap_or_else(|_| fail("--cache needs an integer")),
                )
            }
            other => fail(&format!(
                "unknown argument {other}\nusage: design_sweep [--candidates N] [--workers N] \
                 [--spawn-per-request] [--service HOST:PORT] [--backend NAME] [--csv PATH] \
                 [--stream BITS[,BITS...]] [--probes K] [--seed S] [--cache N]"
            )),
        }
    }

    let solve_start = Instant::now();
    let sweep = DesignSweep::new(axes_for(candidates, backend, &streams, probes, seed));
    let solve_s = solve_start.elapsed().as_secs_f64();
    if sweep.designs().is_empty() {
        fail("no feasible candidates — widen the grid or relax the BER target");
    }
    // Size the worker circuit cache to the working set by default: a
    // sweep touches every distinct circuit once per pass, so anything
    // smaller thrashes the LRU.
    let cache = cache.unwrap_or_else(|| sweep.designs().len());

    let worker = || {
        locate_worker("shard_worker").unwrap_or_else(|| {
            fail("could not locate the shard_worker binary (build it, or set OSC_SHARD_WORKER)")
        })
    };
    let eval_start = Instant::now();
    let (points, mode_name) = if let Some(addr) = service_addr {
        let addr: std::net::SocketAddr = addr
            .parse()
            .unwrap_or_else(|_| fail("--service needs HOST:PORT"));
        let mut client = ServiceClient::connect(addr)
            .unwrap_or_else(|e| fail(&format!("connecting to {addr}: {e}")));
        let points = sweep
            .evaluate(SweepMode::Service(&mut client))
            .unwrap_or_else(|e| fail(&format!("service sweep against {addr}: {e}")));
        (points, format!("service({addr})"))
    } else if workers == 0 {
        let evaluator = BatchEvaluator::new();
        let points = sweep
            .evaluate(SweepMode::InProcess(&evaluator))
            .unwrap_or_else(|e| fail(&format!("in-process sweep: {e}")));
        (points, "in-process".to_string())
    } else if spawn_per_request {
        let coordinator = ShardCoordinator::new(worker(), workers);
        let points = sweep
            .evaluate(SweepMode::Spawn(&coordinator))
            .unwrap_or_else(|e| fail(&format!("spawn-per-request sweep: {e}")));
        (points, format!("spawn-per-request({workers})"))
    } else {
        let mut pool = PoolConfig::new(worker(), workers)
            .with_circuit_cache_capacity(cache)
            .spawn()
            .unwrap_or_else(|e| fail(&format!("pool spawn: {e}")));
        let points = sweep
            .evaluate(SweepMode::Pool(&mut pool))
            .unwrap_or_else(|e| fail(&format!("pooled sweep: {e}")));
        (points, format!("pool({workers}, cache {cache})"))
    };
    let eval_s = eval_start.elapsed().as_secs_f64();

    let frontier = pareto_frontier(&points);
    println!(
        "{}",
        summary_line(
            "design_sweep",
            &sweep,
            &mode_name,
            solve_s,
            eval_s,
            &frontier
        )
    );

    if let Some(path) = csv_path {
        let csv = frontier_csv(&frontier);
        if let Err(e) = std::fs::write(&path, csv.as_bytes()) {
            fail(&format!("writing {path}: {e}"));
        }
        println!(
            "[design_sweep] wrote {}-point frontier CSV to {path}",
            frontier.len()
        );
    }
}
