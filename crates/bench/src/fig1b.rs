//! EXP-F1: the Fig. 1(b) ReSC background example.
//!
//! `f1(x) = 1/4 + 9x/8 − 15x²/8 + 5x³/4` with Bernstein coefficients
//! `(2/8, 5/8, 3/8, 6/8)` evaluated at `x = 0.5`; the paper's 8-bit toy
//! streams produce 4/8 = 0.5.

use osc_stochastic::polynomial::Polynomial;
use osc_stochastic::resc::ReScUnit;
use osc_stochastic::sng::XoshiroSng;

/// Record of the Fig. 1(b) example.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig1bReport {
    /// Bernstein coefficients derived from the power form.
    pub bernstein_coeffs: Vec<f64>,
    /// Exact value at x = 0.5.
    pub exact: f64,
    /// Stochastic estimates at increasing stream lengths.
    pub estimates: Vec<(usize, f64)>,
}

/// Runs the experiment.
///
/// # Panics
///
/// Panics only on internal invariant violations (coefficients of the
/// paper's polynomial are valid probabilities).
pub fn run() -> Fig1bReport {
    let poly = Polynomial::paper_f1();
    let bernstein = poly.to_bernstein().expect("paper coefficients are valid");
    let unit = ReScUnit::new(bernstein.clone());
    let mut sng = XoshiroSng::new(2019);
    let estimates = [8usize, 64, 1024, 16384]
        .iter()
        .map(|&len| (len, unit.evaluate(0.5, len, &mut sng).estimate))
        .collect();
    Fig1bReport {
        bernstein_coeffs: bernstein.coeffs().to_vec(),
        exact: poly.eval(0.5),
        estimates,
    }
}

/// Prints the report.
pub fn print(report: &Fig1bReport) {
    println!("EXP-F1  Fig. 1(b) ReSC example: f1(x) at x = 0.5");
    println!(
        "  Bernstein coefficients: {:?}  (paper: [0.25, 0.625, 0.375, 0.75])",
        report.bernstein_coeffs
    );
    println!("  exact f1(0.5) = {} (paper: 4/8)", report.exact);
    let rows: Vec<Vec<String>> = report
        .estimates
        .iter()
        .map(|(len, est)| {
            vec![
                len.to_string(),
                format!("{est:.4}"),
                format!("{:.4}", (est - report.exact).abs()),
            ]
        })
        .collect();
    crate::print_table(&["stream bits", "estimate", "|error|"], &rows);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_paper_example() {
        let r = run();
        assert_eq!(r.bernstein_coeffs.len(), 4);
        assert!((r.bernstein_coeffs[0] - 0.25).abs() < 1e-12);
        assert!((r.bernstein_coeffs[3] - 0.75).abs() < 1e-12);
        assert!((r.exact - 0.5).abs() < 1e-12);
        // Long stream converges.
        let (_, last) = r.estimates[r.estimates.len() - 1];
        assert!((last - 0.5).abs() < 0.02);
    }
}
