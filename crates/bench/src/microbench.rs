//! Minimal wall-clock benchmark harness (`std::time` only).
//!
//! The container builds fully offline, so criterion is unavailable; this
//! module provides the slice of its API the workspace benches need —
//! named benchmarks with warmup, adaptive batching and a median-of-batches
//! estimate — behind `harness = false` bench targets. Run with
//!
//! ```text
//! cargo bench -p osc-bench                       # all benches
//! cargo bench -p osc-bench --bench stochastic_kernels -- sng   # filter
//! MICROBENCH_MS=50 cargo bench -p osc-bench      # CI smoke budget
//! ```
//!
//! Results print as `name  median ns/iter (iters)` rows; [`Harness::json`]
//! renders them as a JSON object for trend tracking (`BENCH_kernels.json`).

use std::hint::black_box;
use std::time::{Duration, Instant};

/// One benchmark measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Benchmark name (slash-separated groups by convention).
    pub name: String,
    /// Median batch time per iteration, nanoseconds.
    pub median_ns: f64,
    /// Minimum batch time per iteration, nanoseconds.
    pub min_ns: f64,
    /// Total iterations executed across measured batches.
    pub iterations: u64,
}

/// Iteration driver handed to each benchmark closure.
pub struct Bencher {
    batch_sizes: Vec<u64>,
    batch_ns: Vec<f64>,
    budget: Duration,
}

impl Bencher {
    /// Times `f`, calling it repeatedly until the measurement budget is
    /// spent. The return value is passed through [`black_box`] so the
    /// optimizer cannot delete the work.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warmup + calibration: find a batch size lasting ~1/10 budget.
        let mut batch = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= self.budget / 10 || batch >= 1 << 40 {
                break;
            }
            // Grow toward the target in one or two steps.
            let grow = (self.budget.as_secs_f64() / 10.0 / elapsed.as_secs_f64().max(1e-9))
                .clamp(2.0, 1e6);
            batch = (batch as f64 * grow).ceil() as u64;
        }
        // Measured batches until the budget is consumed.
        let deadline = Instant::now() + self.budget;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed();
            self.batch_sizes.push(batch);
            self.batch_ns.push(elapsed.as_nanos() as f64 / batch as f64);
            if Instant::now() >= deadline {
                break;
            }
        }
    }
}

/// A named collection of benchmarks with filtering and reporting.
pub struct Harness {
    target: String,
    filter: Option<String>,
    budget: Duration,
    results: Vec<Measurement>,
}

impl Harness {
    /// Creates a harness for a bench target, reading the CLI filter
    /// (cargo passes `--bench` plus an optional substring filter) and the
    /// `MICROBENCH_MS` per-benchmark budget override (default 300 ms).
    pub fn from_env(target: &str) -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .filter(|a| !a.is_empty());
        let budget_ms = std::env::var("MICROBENCH_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(300)
            .max(1);
        println!("== bench target: {target} (budget {budget_ms} ms/benchmark)");
        Harness {
            target: target.to_string(),
            filter,
            budget: Duration::from_millis(budget_ms),
            results: Vec::new(),
        }
    }

    /// Explicit constructor for programmatic use (the kernels runner).
    pub fn with_budget(target: &str, budget: Duration) -> Self {
        Harness {
            target: target.to_string(),
            filter: None,
            budget,
            results: Vec::new(),
        }
    }

    /// The bench target name.
    pub fn target(&self) -> &str {
        &self.target
    }

    /// Runs one named benchmark (skipped unless it matches the filter)
    /// and returns the measurement when it ran.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: &str,
        mut f: F,
    ) -> Option<Measurement> {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return None;
            }
        }
        let mut bencher = Bencher {
            batch_sizes: Vec::new(),
            batch_ns: Vec::new(),
            budget: self.budget,
        };
        f(&mut bencher);
        assert!(
            !bencher.batch_ns.is_empty(),
            "benchmark {name} never called Bencher::iter"
        );
        let mut sorted = bencher.batch_ns.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let median = sorted[sorted.len() / 2];
        let m = Measurement {
            name: name.to_string(),
            median_ns: median,
            min_ns: sorted[0],
            iterations: bencher.batch_sizes.iter().sum(),
        };
        println!(
            "{:<52} {:>14.1} ns/iter  ({} iters)",
            m.name, m.median_ns, m.iterations
        );
        self.results.push(m.clone());
        Some(m)
    }

    /// All measurements taken so far.
    pub fn results(&self) -> &[Measurement] {
        &self.results
    }

    /// Renders the measurements as a JSON object (hand-rolled writer; the
    /// offline build has no serde).
    pub fn json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"target\": \"{}\",\n", self.target));
        out.push_str("  \"benchmarks\": [\n");
        for (i, m) in self.results.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"median_ns\": {:.3}, \"min_ns\": {:.3}, \"iterations\": {}}}{}\n",
                m.name,
                m.median_ns,
                m.min_ns,
                m.iterations,
                if i + 1 < self.results.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Prints the closing summary line.
    pub fn finish(&self) {
        println!(
            "== {}: {} benchmarks measured",
            self.target,
            self.results.len()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_a_cheap_closure() {
        let mut h = Harness::with_budget("test", Duration::from_millis(5));
        let m = h
            .bench_function("noop_add", |b| {
                let mut acc = 0u64;
                b.iter(|| {
                    acc = acc.wrapping_add(1);
                    acc
                })
            })
            .expect("no filter set");
        assert!(m.median_ns > 0.0);
        assert!(m.min_ns <= m.median_ns);
        assert!(m.iterations > 0);
        assert_eq!(h.results().len(), 1);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let mut h = Harness::with_budget("t", Duration::from_millis(2));
        h.bench_function("a/b", |b| b.iter(|| 1 + 1));
        let json = h.json();
        assert!(json.contains("\"target\": \"t\""));
        assert!(json.contains("\"name\": \"a/b\""));
        assert!(json.trim_end().ends_with('}'));
    }
}
