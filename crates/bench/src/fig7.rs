//! EXP-7A/7B: Fig. 7 — laser energy per computed bit.
//!
//! Paper claims reproduced here: an interior optimal wavelength spacing
//! (≈0.165 nm) whose position is (nearly) independent of the polynomial
//! degree; ≈20.1 pJ/bit for the 2nd-order circuit at the optimum;
//! ≈76.6% saving vs. the 1 nm plan; ≈600 pJ/bit at order 16 with 1 nm.

use osc_core::energy::{
    scaling_study, EnergyAssumptions, EnergyBreakdown, EnergyModel, ScalingPoint,
};

/// EXP-7A report: energy vs wavelength spacing per order.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig7aReport {
    /// Orders swept (2, 4, 6 in the paper).
    pub orders: Vec<usize>,
    /// Per-order sweep curves.
    pub curves: Vec<Vec<EnergyBreakdown>>,
    /// Per-order optimal points.
    pub optima: Vec<EnergyBreakdown>,
}

/// Runs EXP-7A over the paper's 0.1–0.3 nm range (extended slightly right
/// so the optimum is interior for every order).
///
/// # Panics
///
/// Panics if no feasible optimum exists (library invariant for the
/// shipped profiles).
pub fn run_fig7a() -> Fig7aReport {
    let orders = vec![2usize, 4, 6];
    let spacings = osc_math::linspace(0.10, 0.32, 23);
    let assumptions = EnergyAssumptions::default();
    let mut curves = Vec::new();
    let mut optima = Vec::new();
    for &n in &orders {
        let model = EnergyModel::new(n, assumptions);
        curves.push(model.sweep(&spacings));
        optima.push(model.optimal_spacing(0.1, 0.6).expect("feasible optimum"));
    }
    Fig7aReport {
        orders,
        curves,
        optima,
    }
}

/// EXP-7B report: energy vs order at 1 nm and optimal spacing.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig7bReport {
    /// One point per order (2, 4, 8, 12, 16 in the paper).
    pub points: Vec<ScalingPoint>,
    /// Mean energy saving across orders.
    pub mean_saving: f64,
}

/// Runs EXP-7B.
///
/// # Panics
///
/// Panics if a design point is infeasible (library invariant).
pub fn run_fig7b() -> Fig7bReport {
    let points = scaling_study(&[2, 4, 8, 12, 16], EnergyAssumptions::default(), 0.1, 0.6)
        .expect("all orders feasible");
    let mean_saving = points
        .iter()
        .map(ScalingPoint::saving_fraction)
        .sum::<f64>()
        / points.len() as f64;
    Fig7bReport {
        points,
        mean_saving,
    }
}

/// Prints EXP-7A.
pub fn print_fig7a(report: &Fig7aReport) {
    println!(
        "EXP-7A  laser energy per bit vs wavelength spacing (1 Gb/s, 26 ps pump pulses, η = 20%)"
    );
    for (n, curve) in report.orders.iter().zip(&report.curves) {
        println!("  order n = {n}:");
        let rows: Vec<Vec<String>> = curve
            .iter()
            .map(|b| {
                vec![
                    format!("{:.3}", b.wl_spacing.as_nm()),
                    format!("{:.2}", b.pump_energy.as_pj()),
                    format!("{:.2}", b.probe_energy.as_pj()),
                    format!("{:.2}", b.total().as_pj()),
                ]
            })
            .collect();
        crate::print_table(&["spacing nm", "pump pJ", "probe pJ", "total pJ"], &rows);
    }
    for (n, opt) in report.orders.iter().zip(&report.optima) {
        println!(
            "  n={n}: optimal spacing {:.3} nm, total {:.2} pJ/bit",
            opt.wl_spacing.as_nm(),
            opt.total().as_pj()
        );
    }
    println!(
        "{}",
        crate::compare_line(
            "optimal spacing (n=2)",
            0.165,
            report.optima[0].wl_spacing.as_nm(),
            "nm"
        )
    );
    println!(
        "{}",
        crate::compare_line(
            "total energy at optimum (n=2)",
            20.1,
            report.optima[0].total().as_pj(),
            "pJ"
        )
    );
}

/// Prints EXP-7B.
pub fn print_fig7b(report: &Fig7bReport) {
    println!("EXP-7B  total laser energy vs polynomial order");
    let rows: Vec<Vec<String>> = report
        .points
        .iter()
        .map(|p| {
            vec![
                p.order.to_string(),
                format!("{:.1}", p.energy_at_1nm.as_pj()),
                format!("{:.1}", p.energy_at_optimal.as_pj()),
                format!("{:.3}", p.optimal_spacing.as_nm()),
                format!("{:.1}%", p.saving_fraction() * 100.0),
            ]
        })
        .collect();
    crate::print_table(
        &["order", "1 nm pJ", "optimal pJ", "opt spacing nm", "saving"],
        &rows,
    );
    println!(
        "{}",
        crate::compare_line("mean energy saving", 0.766, report.mean_saving, "")
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7a_optimum_near_paper_value() {
        let r = run_fig7a();
        let opt2 = r.optima[0].wl_spacing.as_nm();
        assert!((opt2 - 0.165).abs() < 0.03, "n=2 optimum {opt2}");
        let total2 = r.optima[0].total().as_pj();
        assert!((total2 - 20.1).abs() < 4.0, "n=2 total {total2}");
    }

    #[test]
    fn fig7a_optimum_order_independent() {
        let r = run_fig7a();
        let spread = r
            .optima
            .iter()
            .map(|o| o.wl_spacing.as_nm())
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), s| {
                (lo.min(s), hi.max(s))
            });
        assert!(spread.1 - spread.0 < 0.05, "optima spread {:?}", spread);
    }

    #[test]
    fn fig7a_pump_and_probe_trends() {
        let r = run_fig7a();
        let curve = &r.curves[0];
        assert!(curve.len() > 10);
        // Pump monotone up, probe monotone down along the sweep.
        for w in curve.windows(2) {
            assert!(w[1].pump_energy >= w[0].pump_energy);
            assert!(w[1].probe_energy <= w[0].probe_energy * 1.001);
        }
    }

    #[test]
    fn fig7b_matches_paper_shape() {
        let r = run_fig7b();
        assert_eq!(r.points.len(), 5);
        // ~600 pJ at order 16 with 1 nm spacing (paper's axis).
        let p16 = r.points.last().unwrap();
        assert!(
            (p16.energy_at_1nm.as_pj() - 600.0).abs() < 60.0,
            "n=16 at 1nm: {}",
            p16.energy_at_1nm
        );
        // Savings near the paper's 76.6%.
        assert!(
            (r.mean_saving - 0.766).abs() < 0.08,
            "mean saving {}",
            r.mean_saving
        );
        // Energy grows monotonically with order at both spacings.
        for w in r.points.windows(2) {
            assert!(w[1].energy_at_1nm > w[0].energy_at_1nm);
            assert!(w[1].energy_at_optimal > w[0].energy_at_optimal);
        }
    }
}
