//! EXP-5A/5B/5C: Fig. 5 — transmission spectra and the exhaustive
//! received-power table validating optical de-randomization.

use osc_core::architecture::{OpticalScCircuit, PowerBands};
use osc_core::params::CircuitParams;
use osc_core::transmission::TransmissionModel;

/// Spectra for one Fig. 5 case.
#[derive(Debug, Clone, PartialEq)]
pub struct SpectraReport {
    /// Input description.
    pub label: String,
    /// Sampled wavelengths, nm.
    pub wavelengths: Vec<f64>,
    /// Through-transmission curve per modulator.
    pub modulator_curves: Vec<Vec<f64>>,
    /// Filter drop curve under the case's control power.
    pub filter_curve: Vec<f64>,
    /// Per-channel total transmission.
    pub channel_transmissions: Vec<f64>,
    /// Total received power at 1 mW probes, mW.
    pub received_mw: f64,
}

fn spectra_case(label: &str, z: [bool; 3], x: [bool; 2], points: usize) -> SpectraReport {
    let model =
        TransmissionModel::new(&CircuitParams::paper_fig5()).expect("calibrated params build");
    let (wavelengths, modulator_curves, filter_curve) =
        model.spectra(&z, &x, points).expect("valid arities");
    let channel_transmissions = model.all_transmissions(&z, &x).expect("valid arities");
    let received_mw = channel_transmissions.iter().sum();
    SpectraReport {
        label: label.to_string(),
        wavelengths,
        modulator_curves,
        filter_curve,
        channel_transmissions,
        received_mw,
    }
}

/// EXP-5A: z = (0,1,0), x1 = x2 = 1 (filter on λ2).
pub fn run_fig5a() -> SpectraReport {
    spectra_case(
        "z=(0,1,0), x=(1,1)",
        [false, true, false],
        [true, true],
        121,
    )
}

/// EXP-5B: z = (1,1,0), x1 = x2 = 0 (filter on λ0).
pub fn run_fig5b() -> SpectraReport {
    spectra_case(
        "z=(1,1,0), x=(0,0)",
        [true, true, false],
        [false, false],
        121,
    )
}

/// EXP-5C: the exhaustive received-power table and its 0/1 bands.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5cReport {
    /// One row per (x, z) combination.
    pub rows: Vec<Fig5cRow>,
    /// Received-power bands.
    pub zero_band_mw: (f64, f64),
    /// Received-power bands.
    pub one_band_mw: (f64, f64),
}

/// One input combination of the Fig. 5(c) sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5cRow {
    /// Data word rendered as `x2x1`.
    pub x_label: String,
    /// Coefficient word rendered as `z2z1z0`.
    pub z_label: String,
    /// Transmitted logical bit.
    pub bit: bool,
    /// Received power, mW.
    pub received_mw: f64,
}

/// Runs EXP-5C.
///
/// # Panics
///
/// Panics only if the calibrated parameters fail to build (library
/// invariant).
pub fn run_fig5c() -> Fig5cReport {
    let circuit = OpticalScCircuit::new(CircuitParams::paper_fig5()).expect("params build");
    let table = circuit.power_level_table().expect("order 2 table");
    let bands: PowerBands = circuit.power_bands().expect("bands");
    let rows = table
        .iter()
        .map(|r| Fig5cRow {
            x_label: format!("{}{}", u8::from(r.x_bits[1]), u8::from(r.x_bits[0])),
            z_label: format!(
                "{}{}{}",
                u8::from(r.z_bits[2]),
                u8::from(r.z_bits[1]),
                u8::from(r.z_bits[0])
            ),
            bit: r.transmitted_bit,
            received_mw: r.received.as_mw(),
        })
        .collect();
    Fig5cReport {
        rows,
        zero_band_mw: (bands.zero_min.as_mw(), bands.zero_max.as_mw()),
        one_band_mw: (bands.one_min.as_mw(), bands.one_max.as_mw()),
    }
}

/// Prints a spectra report (EXP-5A/5B).
pub fn print_spectra(tag: &str, report: &SpectraReport) {
    println!("{tag}  MRR/filter spectra, {}", report.label);
    let rows: Vec<Vec<String>> = report
        .channel_transmissions
        .iter()
        .enumerate()
        .map(|(i, t)| vec![format!("λ{i}"), format!("{t:.4}")])
        .collect();
    crate::print_table(&["channel", "total transmission"], &rows);
    println!("  received @1 mW probes: {:.4} mW", report.received_mw);
}

/// Prints EXP-5C.
pub fn print_fig5c(report: &Fig5cReport) {
    println!("EXP-5C  received power for all input combinations (1 mW probes)");
    let rows: Vec<Vec<String>> = report
        .rows
        .iter()
        .map(|r| {
            vec![
                r.x_label.clone(),
                r.z_label.clone(),
                u8::from(r.bit).to_string(),
                format!("{:.4}", r.received_mw),
            ]
        })
        .collect();
    crate::print_table(&["x2x1", "z2z1z0", "bit", "received mW"], &rows);
    println!(
        "  '0' band: {:.4}–{:.4} mW (paper: 0.092–0.099)",
        report.zero_band_mw.0, report.zero_band_mw.1
    );
    println!(
        "  '1' band: {:.4}–{:.4} mW (paper: 0.477–0.482)",
        report.one_band_mw.0, report.one_band_mw.1
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5a_channel2_dominates() {
        let r = run_fig5a();
        assert!(r.channel_transmissions[2] > 10.0 * r.channel_transmissions[1]);
        assert!((r.received_mw - 0.0952).abs() < 0.01);
        assert_eq!(r.modulator_curves.len(), 3);
        assert_eq!(r.wavelengths.len(), 121);
    }

    #[test]
    fn fig5b_strong_one() {
        let r = run_fig5b();
        assert!((r.channel_transmissions[0] - 0.476).abs() < 0.02);
        assert!((r.received_mw - 0.482).abs() < 0.02);
    }

    #[test]
    fn fig5c_bands_separated() {
        let r = run_fig5c();
        assert_eq!(r.rows.len(), 32);
        assert!(r.one_band_mw.0 > r.zero_band_mw.1);
        // Bands near the paper's ranges.
        assert!(
            (r.zero_band_mw.0 - 0.092).abs() < 0.02,
            "{:?}",
            r.zero_band_mw
        );
        assert!(
            (r.one_band_mw.1 - 0.482).abs() < 0.03,
            "{:?}",
            r.one_band_mw
        );
    }
}
