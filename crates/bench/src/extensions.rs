//! EXP-X: quantitative studies of the paper's future-work items, beyond
//! the published figures (recorded in EXPERIMENTS.md §Beyond the paper).

use osc_core::controller::{CalibrationController, ThermalDrift};
use osc_core::params::CircuitParams;
use osc_core::snr::SnrModel;
use osc_math::rng::Xoshiro256PlusPlus;
use osc_photonics::apd::ApdDetector;
use osc_stochastic::bitstream::BitStream;
use osc_stochastic::sng::{StochasticNumberGenerator, XoshiroSng};
use osc_transient::engine::{TimingConfig, TransientSimulator};
use osc_transient::eye::{sampling_window, scan_offsets, window_width_seconds, ThresholdMode};
use osc_transient::tradeoff::{rate_sweep, RatePoint};
use osc_units::{Milliwatts, Nanometers};

/// EXP-X report: all extension studies.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtensionsReport {
    /// PIN minimum probe power at BER 1e-6, mW.
    pub pin_probe_mw: f64,
    /// APD minimum probe power at BER 1e-6, mW.
    pub apd_probe_mw: f64,
    /// APD SNR improvement factor.
    pub apd_improvement: f64,
    /// Peak thermal drift applied, nm.
    pub drift_peak_nm: f64,
    /// Worst residual after lock acquisition, nm.
    pub locked_residual_nm: f64,
    /// Usable sampling window with the pulsed pump, ps.
    pub pulsed_window_ps: f64,
    /// Usable sampling window with a CW pump, ps.
    pub cw_window_ps: f64,
    /// Decision error rate vs modulation rate.
    pub rate_points: Vec<RatePoint>,
}

fn window_ps(pulsed: bool) -> f64 {
    let timing = TimingConfig {
        pump_pulse_fwhm: pulsed.then_some(26e-12),
        samples_per_bit: 128,
        ..TimingConfig::default()
    };
    let sim =
        TransientSimulator::new(CircuitParams::paper_fig5(), timing).expect("paper params build");
    let mut sng = XoshiroSng::new(3);
    let len = 96;
    let data: Vec<BitStream> = (0..2)
        .map(|_| sng.generate(0.5, len).expect("valid p"))
        .collect();
    let coeffs: Vec<BitStream> = (0..3)
        .map(|_| sng.generate(0.5, len).expect("valid p"))
        .collect();
    let trace = sim.run(&data, &coeffs).expect("streams consistent");
    let mut rng = Xoshiro256PlusPlus::new(5);
    let pts = scan_offsets(
        &trace,
        ThresholdMode::Trained,
        Milliwatts::ZERO,
        128,
        &mut rng,
    );
    sampling_window(&pts, 0.02)
        .map(|w| window_width_seconds(w, trace.bit_period) * 1e12)
        .unwrap_or(0.0)
}

/// Runs every extension study.
///
/// # Panics
///
/// Panics only if the shipped configurations fail to build (library
/// invariant).
pub fn run() -> ExtensionsReport {
    let params = CircuitParams::paper_fig5();

    // APD receiver.
    let apd = ApdDetector::steindl_2014(params.detector().expect("detector"))
        .expect("APD constants valid");
    let pin_probe = SnrModel::new(&params)
        .expect("snr model")
        .min_probe_power_for_ber(1e-6)
        .expect("feasible");
    let apd_probe = SnrModel::new(&params)
        .expect("snr model")
        .with_detector(apd.effective_detector().expect("valid APD"))
        .min_probe_power_for_ber(1e-6)
        .expect("feasible");

    // Thermal lock.
    let mut controller =
        CalibrationController::new(params, Nanometers::new(0.02)).expect("params valid");
    let drift = ThermalDrift::silicon(1.0, 120.0);
    let record = controller.track(&drift, 120).expect("tracking runs");
    let drift_peak_nm = record.iter().map(|r| r.drift_nm.abs()).fold(0.0, f64::max);
    let locked_residual_nm = record[20..]
        .iter()
        .map(|r| r.residual_nm.abs())
        .fold(0.0, f64::max);

    // Sampling windows.
    let pulsed_window_ps = window_ps(true);
    let cw_window_ps = window_ps(false);

    // Rate sweep.
    let mut sng = XoshiroSng::new(21);
    let rate_points =
        rate_sweep(&params, &[1.0, 4.0, 10.0, 20.0], 48, &mut sng, 9).expect("rates feasible");

    ExtensionsReport {
        pin_probe_mw: pin_probe.as_mw(),
        apd_probe_mw: apd_probe.as_mw(),
        apd_improvement: apd.snr_improvement(),
        drift_peak_nm,
        locked_residual_nm,
        pulsed_window_ps,
        cw_window_ps,
        rate_points,
    }
}

/// Prints EXP-X.
pub fn print(report: &ExtensionsReport) {
    println!("EXP-X  future-work extension studies");
    println!(
        "  APD receiver: probe power {:.4} mW -> {:.6} mW ({:.1}x SNR improvement)",
        report.pin_probe_mw, report.apd_probe_mw, report.apd_improvement
    );
    println!(
        "  thermal lock: peak drift {:.3} nm, locked residual {:.3} nm",
        report.drift_peak_nm, report.locked_residual_nm
    );
    println!(
        "  sampling window @<2% error: pulsed pump {:.0} ps vs CW {:.0} ps (1 ns slot)",
        report.pulsed_window_ps, report.cw_window_ps
    );
    let rows: Vec<Vec<String>> = report
        .rate_points
        .iter()
        .map(|p| {
            vec![
                format!("{:.0}", p.rate_gbps),
                format!("{:.4}", p.decision_error_rate),
                format!("{:.4}", p.estimate_error),
            ]
        })
        .collect();
    crate::print_table(&["Gb/s", "decision error", "estimate error"], &rows);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extension_studies_hold() {
        let r = run();
        // APD cuts probe power by its SNR improvement.
        assert!(r.apd_probe_mw < r.pin_probe_mw / 10.0);
        // Lock residual is far below the applied drift.
        assert!(r.locked_residual_nm < r.drift_peak_nm / 2.0);
        // Pulsed window is much narrower than CW.
        assert!(r.pulsed_window_ps < r.cw_window_ps / 2.0);
        // Error grows with rate.
        let first = r.rate_points.first().unwrap();
        let last = r.rate_points.last().unwrap();
        assert!(last.decision_error_rate >= first.decision_error_rate);
    }
}
