//! The shared soak workload: a stream of small gamma/contrast image
//! requests, runnable through any serving mode.
//!
//! This is the one request schedule the CI `pool-soak` job, the
//! `gamma_pool` / `gamma_sharded` demo binaries and the
//! `pool_small_requests_1024` trajectory workload all drive, so "pooled
//! ≡ sharded ≡ unsharded" is checked (and timed) on **identical
//! bytes** everywhere. Request `r` evaluates one small
//! [`Image::blobs`] frame through the paper's order-6 gamma circuit
//! when `r` is even and the order-3 smoothstep contrast circuit when
//! `r` is odd, with a per-request backend seed — the alternating
//! circuits keep both digests live in the workers' v2 circuit caches,
//! so a pooled run exercises the cache-hit path on every request after
//! the first two.
//!
//! Every mode produces the pixels of every request, concatenated in
//! request order as little-endian IEEE-754 bit patterns
//! ([`SoakReport::bytes`]) — byte-identical across modes by the
//! sharding determinism contract, so a plain `cmp` is the whole
//! equivalence check.

use osc_apps::backend::OpticalBackend;
use osc_apps::contrast::smoothstep_poly;
use osc_apps::gamma_app::{self, paper_gamma_polynomial};
use osc_apps::image::Image;
use osc_apps::AppError;
use osc_core::batch::shard::pool::WorkerPool;
use osc_core::batch::shard::ShardCoordinator;
use osc_core::batch::BatchEvaluator;
use osc_core::fault::FaultSpec;
use osc_core::params::CircuitParams;
use osc_units::Nanometers;
use std::time::{Duration, Instant};

/// The request schedule: how many frames, their size, the stream
/// length per pixel evaluation, and an optional fault process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SoakConfig {
    /// How many requests to drive.
    pub requests: usize,
    /// Frame width in pixels.
    pub width: usize,
    /// Frame height in pixels.
    pub height: usize,
    /// Stream length (bits) per pixel evaluation.
    pub stream: usize,
    /// Optional fault process applied to every request (the fault-mode
    /// soak leg); `None` drives the clean pipeline. Faulty output is
    /// byte-identical across [`SoakMode`]s exactly like clean output.
    pub fault: Option<FaultSpec>,
}

impl Default for SoakConfig {
    /// A CI-sized schedule: 16 requests of 12×8 pixels at 128 bits,
    /// fault-free.
    fn default() -> Self {
        SoakConfig {
            requests: 16,
            width: 12,
            height: 8,
            stream: 128,
            fault: None,
        }
    }
}

/// Which serving architecture evaluates the requests.
pub enum SoakMode<'a> {
    /// The unsharded in-process row+lane pipeline — the reference.
    InProcess,
    /// A persistent [`WorkerPool`]: spawn + circuit build paid once.
    Pool(&'a mut WorkerPool),
    /// A [`ShardCoordinator`] per request: spawn + circuit build paid
    /// on **every** request — the baseline the pool amortizes.
    Spawn(&'a ShardCoordinator),
}

/// What a soak run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct SoakReport {
    /// Every output pixel of every request, in request order, as
    /// little-endian IEEE-754 bit patterns — byte-identical across
    /// [`SoakMode`]s.
    pub bytes: Vec<u8>,
    /// Requests driven.
    pub requests: usize,
    /// Wall-clock for the whole stream.
    pub elapsed: Duration,
}

impl SoakReport {
    /// Mean wall-clock per request, in milliseconds.
    pub fn ms_per_request(&self) -> f64 {
        self.elapsed.as_secs_f64() * 1e3 / self.requests.max(1) as f64
    }
}

/// The backend seed of request `r` — deterministic and
/// request-distinct, shared by every mode.
fn request_seed(r: usize) -> u64 {
    0x50C5 + 7919 * r as u64
}

/// Drives the soak schedule through `mode`.
///
/// # Errors
///
/// Propagates backend construction and evaluation failures (including
/// shard/pool failures as [`AppError::Shard`]).
pub fn run(cfg: &SoakConfig, mut mode: SoakMode<'_>) -> Result<SoakReport, AppError> {
    let image = Image::blobs(cfg.width, cfg.height);
    // The two circuits are fixed across the schedule: build each once
    // and derive per-request backends via the cheap table-reusing
    // `with_seed` clone, the same way a real service front-end would.
    let gamma_base = OpticalBackend::new(
        CircuitParams::paper_fig7(6, Nanometers::new(0.165)),
        paper_gamma_polynomial()?,
        cfg.stream,
        0,
    )?;
    let contrast_base = OpticalBackend::new(
        CircuitParams::paper_fig7(3, Nanometers::new(0.2)),
        smoothstep_poly(),
        cfg.stream,
        0,
    )?;
    let evaluator = BatchEvaluator::new();
    let mut bytes = Vec::with_capacity(cfg.requests * cfg.width * cfg.height * 8);
    let started = Instant::now();
    for r in 0..cfg.requests {
        let backend = if r % 2 == 0 {
            gamma_base.with_seed(request_seed(r))
        } else {
            contrast_base.with_seed(request_seed(r))
        };
        let produced = match &mut mode {
            SoakMode::InProcess => gamma_app::apply_optical_lanes_faulted(
                &image,
                &backend,
                &evaluator,
                cfg.fault.as_ref(),
            )?,
            SoakMode::Pool(pool) => {
                gamma_app::apply_optical_pooled_faulted(&image, &backend, pool, cfg.fault.as_ref())?
            }
            SoakMode::Spawn(coordinator) => gamma_app::apply_optical_sharded_faulted(
                &image,
                &backend,
                coordinator,
                cfg.fault.as_ref(),
            )?,
        };
        for &p in produced.pixels() {
            bytes.extend_from_slice(&p.to_bits().to_le_bytes());
        }
    }
    Ok(SoakReport {
        bytes,
        requests: cfg.requests,
        elapsed: started.elapsed(),
    })
}

/// Renders the one-line timing summary the demo binaries and the CI
/// soak job print.
pub fn summary_line(
    binary: &str,
    cfg: &SoakConfig,
    mode_name: &str,
    report: &SoakReport,
) -> String {
    format!(
        "[{binary}] soak: {} requests ({}x{}, stream {}) via {mode_name}: total {:.3} s, {:.2} ms/request",
        report.requests,
        cfg.width,
        cfg.height,
        cfg.stream,
        report.elapsed.as_secs_f64(),
        report.ms_per_request()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_seeds_are_distinct() {
        let seeds: Vec<u64> = (0..100).map(request_seed).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len());
    }

    #[test]
    fn in_process_soak_is_deterministic() {
        let cfg = SoakConfig {
            requests: 3,
            width: 5,
            height: 2,
            stream: 64,
            fault: None,
        };
        let a = run(&cfg, SoakMode::InProcess).unwrap();
        let b = run(&cfg, SoakMode::InProcess).unwrap();
        assert_eq!(a.bytes, b.bytes);
        assert_eq!(a.bytes.len(), 3 * 5 * 2 * 8);
        let line = summary_line("test", &cfg, "in-process", &a);
        assert!(line.contains("3 requests"), "{line}");
        assert!(line.contains("ms/request"), "{line}");
    }
}
