//! The shared soak workload: a stream of small gamma/contrast image
//! requests, runnable through any serving mode.
//!
//! This is the one request schedule the CI `pool-soak` job, the
//! `gamma_pool` / `gamma_sharded` demo binaries and the
//! `pool_small_requests_1024` trajectory workload all drive, so "pooled
//! ≡ sharded ≡ unsharded" is checked (and timed) on **identical
//! bytes** everywhere. Request `r` evaluates one small
//! [`Image::blobs`] frame through the paper's order-6 gamma circuit
//! when `r` is even and the order-3 smoothstep contrast circuit when
//! `r` is odd, with a per-request backend seed — the alternating
//! circuits keep both digests live in the workers' v2 circuit caches,
//! so a pooled run exercises the cache-hit path on every request after
//! the first two.
//!
//! Every mode produces the pixels of every request, concatenated in
//! request order as little-endian IEEE-754 bit patterns
//! ([`SoakReport::bytes`]) — byte-identical across modes by the
//! sharding determinism contract, so a plain `cmp` is the whole
//! equivalence check.

use osc_apps::backend::OpticalBackend;
use osc_apps::contrast::smoothstep_poly;
use osc_apps::gamma_app::{self, paper_gamma_polynomial};
use osc_apps::image::Image;
use osc_apps::AppError;
use osc_core::backend::BackendKind;
use osc_core::batch::shard::pool::WorkerPool;
use osc_core::batch::shard::service::ServiceClient;
use osc_core::batch::shard::{ShardCoordinator, ShardRequest, SngKind};
use osc_core::batch::BatchEvaluator;
use osc_core::fault::FaultSpec;
use osc_core::params::CircuitParams;
use osc_core::system::OpticalRun;
use osc_units::Nanometers;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// The request schedule: how many frames, their size, the stream
/// length per pixel evaluation, and an optional fault process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SoakConfig {
    /// How many requests to drive.
    pub requests: usize,
    /// Frame width in pixels.
    pub width: usize,
    /// Frame height in pixels.
    pub height: usize,
    /// Stream length (bits) per pixel evaluation.
    pub stream: usize,
    /// Optional fault process applied to every request (the fault-mode
    /// soak leg); `None` drives the clean pipeline. Faulty output is
    /// byte-identical across [`SoakMode`]s exactly like clean output.
    pub fault: Option<FaultSpec>,
    /// Which transmission physics realizes every request's circuit.
    /// Output for any backend is byte-identical across [`SoakMode`]s;
    /// the CI backend-matrix leg pins that per backend.
    pub backend: BackendKind,
}

impl Default for SoakConfig {
    /// A CI-sized schedule: 16 requests of 12×8 pixels at 128 bits,
    /// fault-free.
    fn default() -> Self {
        SoakConfig {
            requests: 16,
            width: 12,
            height: 8,
            stream: 128,
            fault: None,
            backend: BackendKind::MrrMzi,
        }
    }
}

/// Which serving architecture evaluates the requests.
pub enum SoakMode<'a> {
    /// The unsharded in-process row+lane pipeline — the reference.
    InProcess,
    /// A persistent [`WorkerPool`]: spawn + circuit build paid once.
    Pool(&'a mut WorkerPool),
    /// A [`ShardCoordinator`] per request: spawn + circuit build paid
    /// on **every** request — the baseline the pool amortizes.
    Spawn(&'a ShardCoordinator),
    /// One [`ServiceClient`] connection to a running `osc_service`
    /// front door: each request crosses the TCP framing once as a
    /// whole-image job. For the multi-connection load generator see
    /// [`run_service`].
    Service(&'a mut ServiceClient),
}

/// What a soak run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct SoakReport {
    /// Every output pixel of every request, in request order, as
    /// little-endian IEEE-754 bit patterns — byte-identical across
    /// [`SoakMode`]s.
    pub bytes: Vec<u8>,
    /// Requests driven.
    pub requests: usize,
    /// Wall-clock for the whole stream.
    pub elapsed: Duration,
    /// Per-request wall times in request order (submit → complete
    /// response). Under the open-loop load generator a request's clock
    /// starts at send, so queueing delay counts — that is the point of
    /// open-loop measurement.
    pub latencies: Vec<Duration>,
}

impl SoakReport {
    /// Mean wall-clock per request, in milliseconds.
    pub fn ms_per_request(&self) -> f64 {
        self.elapsed.as_secs_f64() * 1e3 / self.requests.max(1) as f64
    }

    /// p50/p95/p99 of the per-request wall times, in milliseconds.
    pub fn percentiles_ms(&self) -> (f64, f64, f64) {
        let mut sorted = self.latencies.clone();
        sorted.sort_unstable();
        (
            percentile_ms(&sorted, 50.0),
            percentile_ms(&sorted, 95.0),
            percentile_ms(&sorted, 99.0),
        )
    }
}

/// Nearest-rank percentile of an **ascending-sorted** latency sample,
/// in milliseconds: the smallest element with at least `p`% of the
/// sample at or below it (`rank = ceil(p/100 · n)`, clamped into the
/// sample). No interpolation, no dependencies; an empty sample reports
/// `0.0`.
pub fn percentile_ms(sorted: &[Duration], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let n = sorted.len();
    let rank = (p / 100.0 * n as f64).ceil() as usize;
    sorted[rank.clamp(1, n) - 1].as_secs_f64() * 1e3
}

/// The backend seed of request `r` — deterministic and
/// request-distinct, shared by every mode.
fn request_seed(r: usize) -> u64 {
    0x50C5 + 7919 * r as u64
}

/// The two per-schedule circuit backends every mode derives its
/// per-request backends from (gamma on even requests, contrast on
/// odd).
fn schedule_bases(cfg: &SoakConfig) -> Result<(OpticalBackend, OpticalBackend), AppError> {
    let gamma_base = OpticalBackend::new(
        CircuitParams::paper_fig7(6, Nanometers::new(0.165)).with_backend(cfg.backend),
        paper_gamma_polynomial()?,
        cfg.stream,
        0,
    )?;
    let contrast_base = OpticalBackend::new(
        CircuitParams::paper_fig7(3, Nanometers::new(0.2)).with_backend(cfg.backend),
        smoothstep_poly(),
        cfg.stream,
        0,
    )?;
    Ok((gamma_base, contrast_base))
}

/// The backend of request `r`, derived from the schedule bases by the
/// cheap table-reusing `with_seed` clone — the same way a real service
/// front-end would.
fn request_backend(bases: &(OpticalBackend, OpticalBackend), r: usize) -> OpticalBackend {
    if r.is_multiple_of(2) {
        bases.0.with_seed(request_seed(r))
    } else {
        bases.1.with_seed(request_seed(r))
    }
}

/// The wire form of request `r`: the whole frame as one
/// [`ShardJob::ImageRows`](osc_core::batch::shard::ShardJob::ImageRows)
/// job, so a service replica reproduces the in-process row+lane pixel
/// universes exactly.
fn wire_request(
    cfg: &SoakConfig,
    bases: &(OpticalBackend, OpticalBackend),
    image: &Image,
    r: usize,
) -> Result<ShardRequest, AppError> {
    let backend = request_backend(bases, r);
    Ok(ShardRequest::whole_image(
        backend.system(),
        SngKind::Xoshiro,
        image.width(),
        image.pixels(),
        backend.stream_length(),
        backend.seed(),
        cfg.fault.as_ref(),
    )?)
}

/// The soak byte encoding of one response: every run's estimate through
/// the image pixel clamp, as little-endian IEEE-754 bit patterns —
/// exactly the bytes the in-process modes extract from their produced
/// [`Image`]s.
fn run_bytes(runs: &[OpticalRun]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(runs.len() * 8);
    for run in runs {
        bytes.extend_from_slice(&run.estimate.clamp(0.0, 1.0).to_bits().to_le_bytes());
    }
    bytes
}

/// Drives the soak schedule through `mode`.
///
/// # Errors
///
/// Propagates backend construction and evaluation failures (including
/// shard/pool failures as [`AppError::Shard`]).
pub fn run(cfg: &SoakConfig, mut mode: SoakMode<'_>) -> Result<SoakReport, AppError> {
    let image = Image::blobs(cfg.width, cfg.height);
    // The two circuits are fixed across the schedule: build each once
    // and derive per-request backends via the cheap table-reusing
    // `with_seed` clone, the same way a real service front-end would.
    let bases = schedule_bases(cfg)?;
    let evaluator = BatchEvaluator::new();
    let mut bytes = Vec::with_capacity(cfg.requests * cfg.width * cfg.height * 8);
    let mut latencies = Vec::with_capacity(cfg.requests);
    let started = Instant::now();
    for r in 0..cfg.requests {
        let backend = request_backend(&bases, r);
        let submitted = Instant::now();
        let produced = match &mut mode {
            SoakMode::InProcess => gamma_app::apply_optical_lanes_faulted(
                &image,
                &backend,
                &evaluator,
                cfg.fault.as_ref(),
            )?,
            SoakMode::Pool(pool) => {
                gamma_app::apply_optical_pooled_faulted(&image, &backend, pool, cfg.fault.as_ref())?
            }
            SoakMode::Spawn(coordinator) => gamma_app::apply_optical_sharded_faulted(
                &image,
                &backend,
                coordinator,
                cfg.fault.as_ref(),
            )?,
            SoakMode::Service(client) => {
                let request = wire_request(cfg, &bases, &image, r)?;
                let runs = client.request(&request)?;
                latencies.push(submitted.elapsed());
                bytes.extend_from_slice(&run_bytes(&runs));
                continue;
            }
        };
        latencies.push(submitted.elapsed());
        for &p in produced.pixels() {
            bytes.extend_from_slice(&p.to_bits().to_le_bytes());
        }
    }
    Ok(SoakReport {
        bytes,
        requests: cfg.requests,
        elapsed: started.elapsed(),
        latencies,
    })
}

/// How the multi-client load generator ([`run_service`]) spreads the
/// soak schedule over connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadConfig {
    /// Concurrent client connections; request `r` rides connection
    /// `r % connections`.
    pub connections: usize,
    /// `false` (closed-loop): each connection awaits every response
    /// before sending its next request, so latency is pure service
    /// time. `true` (open-loop): each connection sends its whole burst
    /// up front and then reads the responses in order, so latency
    /// includes queueing delay under concurrency.
    pub open_loop: bool,
}

impl Default for LoadConfig {
    /// Three closed-loop connections — the smallest genuinely
    /// concurrent schedule.
    fn default() -> Self {
        LoadConfig {
            connections: 3,
            open_loop: false,
        }
    }
}

/// What one connection thread produced: `(request index, response
/// bytes, latency)` per request it carried.
type ConnectionTake = Vec<(usize, Vec<u8>, Duration)>;

/// Drives the soak schedule against a running `osc_service` front door
/// from `load.connections` concurrent client connections. Output bytes
/// are reassembled in request order, so the report is byte-identical
/// to every single-connection [`SoakMode`] — the replica
/// interchangeability the determinism contract promises.
///
/// # Errors
///
/// Propagates connection failures and shard protocol/evaluation errors
/// as [`AppError::Shard`]; backend construction failures as usual.
pub fn run_service(
    cfg: &SoakConfig,
    addr: SocketAddr,
    load: &LoadConfig,
) -> Result<SoakReport, AppError> {
    let connections = load.connections.max(1);
    let image = Image::blobs(cfg.width, cfg.height);
    let bases = schedule_bases(cfg)?;
    let requests: Vec<ShardRequest> = (0..cfg.requests)
        .map(|r| wire_request(cfg, &bases, &image, r))
        .collect::<Result<_, _>>()?;
    let started = Instant::now();
    let takes: Vec<Result<ConnectionTake, AppError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|c| {
                let requests = &requests;
                scope
                    .spawn(move || drive_connection(requests, addr, c, connections, load.open_loop))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("soak connection thread panicked"))
            .collect()
    });
    let elapsed = started.elapsed();
    let mut by_request: Vec<Option<(Vec<u8>, Duration)>> = vec![None; cfg.requests];
    for take in takes {
        for (r, bytes, latency) in take? {
            by_request[r] = Some((bytes, latency));
        }
    }
    let mut bytes = Vec::with_capacity(cfg.requests * cfg.width * cfg.height * 8);
    let mut latencies = Vec::with_capacity(cfg.requests);
    for slot in by_request {
        let (b, latency) = slot.expect("every request index is assigned to exactly one connection");
        bytes.extend_from_slice(&b);
        latencies.push(latency);
    }
    Ok(SoakReport {
        bytes,
        requests: cfg.requests,
        elapsed,
        latencies,
    })
}

/// One load-generator connection: carries every request `r` with
/// `r % connections == lane`, closed- or open-loop.
fn drive_connection(
    requests: &[ShardRequest],
    addr: SocketAddr,
    lane: usize,
    connections: usize,
    open_loop: bool,
) -> Result<ConnectionTake, AppError> {
    let mine: Vec<usize> = (lane..requests.len()).step_by(connections).collect();
    let mut client = ServiceClient::connect_retry(addr, Duration::from_secs(5))
        .map_err(|e| AppError::Shard(format!("connecting soak client {lane}: {e}")))?;
    let mut take = Vec::with_capacity(mine.len());
    if open_loop {
        // Send the whole burst, then read the responses in send order:
        // each latency spans send → complete response, so queueing
        // delay at the service counts.
        let mut sent = Vec::with_capacity(mine.len());
        for &r in &mine {
            let at = Instant::now();
            let (id, expected) = client.send_request(&requests[r])?;
            sent.push((r, id, expected, at));
        }
        for (r, id, expected, at) in sent {
            let runs = client.read_response(id, expected)?;
            take.push((r, run_bytes(&runs), at.elapsed()));
        }
    } else {
        for &r in &mine {
            let at = Instant::now();
            let runs = client.request(&requests[r])?;
            take.push((r, run_bytes(&runs), at.elapsed()));
        }
    }
    Ok(take)
}

/// Renders the one-line timing summary the demo binaries and the CI
/// soak job print.
pub fn summary_line(
    binary: &str,
    cfg: &SoakConfig,
    mode_name: &str,
    report: &SoakReport,
) -> String {
    let (p50, p95, p99) = report.percentiles_ms();
    format!(
        "[{binary}] soak: {} requests ({}x{}, stream {}, backend {}) via {mode_name}: total {:.3} s, {:.2} ms/request, p50 {p50:.2} ms, p95 {p95:.2} ms, p99 {p99:.2} ms",
        report.requests,
        cfg.width,
        cfg.height,
        cfg.stream,
        cfg.backend,
        report.elapsed.as_secs_f64(),
        report.ms_per_request()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_seeds_are_distinct() {
        let seeds: Vec<u64> = (0..100).map(request_seed).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len());
    }

    #[test]
    fn in_process_soak_is_deterministic() {
        let cfg = SoakConfig {
            requests: 3,
            width: 5,
            height: 2,
            stream: 64,
            ..Default::default()
        };
        let a = run(&cfg, SoakMode::InProcess).unwrap();
        let b = run(&cfg, SoakMode::InProcess).unwrap();
        assert_eq!(a.bytes, b.bytes);
        assert_eq!(a.bytes.len(), 3 * 5 * 2 * 8);
        assert_eq!(a.latencies.len(), 3);
        let line = summary_line("test", &cfg, "in-process", &a);
        assert!(line.contains("3 requests"), "{line}");
        assert!(line.contains("ms/request"), "{line}");
        assert!(line.contains("p50"), "{line}");
        assert!(line.contains("p99"), "{line}");
    }

    fn millis(values: &[u64]) -> Vec<Duration> {
        values.iter().map(|&v| Duration::from_millis(v)).collect()
    }

    #[test]
    fn percentiles_of_known_distributions() {
        // 1..=100 ms: nearest rank puts p at exactly p ms.
        let sample = millis(&(1..=100).collect::<Vec<u64>>());
        assert_eq!(percentile_ms(&sample, 50.0), 50.0);
        assert_eq!(percentile_ms(&sample, 95.0), 95.0);
        assert_eq!(percentile_ms(&sample, 99.0), 99.0);
        assert_eq!(percentile_ms(&sample, 100.0), 100.0);
        // A single element answers every percentile.
        let one = millis(&[7]);
        assert_eq!(percentile_ms(&one, 50.0), 7.0);
        assert_eq!(percentile_ms(&one, 99.0), 7.0);
        // Two elements: p50 is the first (rank ceil(0.5·2)=1), p99 the
        // second.
        let two = millis(&[10, 20]);
        assert_eq!(percentile_ms(&two, 50.0), 10.0);
        assert_eq!(percentile_ms(&two, 99.0), 20.0);
        // Empty sample reports zero rather than panicking.
        assert_eq!(percentile_ms(&[], 50.0), 0.0);
    }

    #[test]
    fn report_percentiles_sort_before_ranking() {
        let report = SoakReport {
            bytes: Vec::new(),
            requests: 4,
            elapsed: Duration::from_millis(100),
            latencies: millis(&[40, 10, 30, 20]),
        };
        let (p50, p95, p99) = report.percentiles_ms();
        assert_eq!(p50, 20.0);
        assert_eq!(p95, 40.0);
        assert_eq!(p99, 40.0);
    }

    #[test]
    fn load_config_defaults_are_concurrent_closed_loop() {
        let load = LoadConfig::default();
        assert_eq!(load.connections, 3);
        assert!(!load.open_loop);
    }
}
