//! EXP-6A/6B/6C: Fig. 6 — minimum probe laser power studies
//! (MZI-first method, 0.6 W pump, 2nd-order circuit).

use osc_core::design::space::{
    fig6a_grid, fig6b_ber_sweep, fig6c_devices, BerSweepPoint, DevicePoint, GridCell,
};
use osc_photonics::devices;
use osc_units::DbRatio;

/// EXP-6A report: the (IL, ER) grid.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6aReport {
    /// Grid cells, row-major (IL outer).
    pub cells: Vec<GridCell>,
    /// The Xiao et al. design point (IL 6.5 dB, ER 7.5 dB), mW.
    pub xiao_probe_mw: f64,
}

/// Runs EXP-6A over the paper's plotted ranges.
pub fn run_fig6a() -> Fig6aReport {
    let il = osc_math::linspace(3.0, 7.4, 12);
    let er = osc_math::linspace(4.0, 7.6, 10);
    let cells = fig6a_grid(&il, &er, 1e-6, 8);
    let xiao = osc_core::design::mzi_first::MziFirstDesign::solve(
        &osc_core::design::mzi_first::MziFirstInputs::paper_fig6(
            DbRatio::from_db(6.5),
            DbRatio::from_db(7.5),
        ),
    )
    .expect("Xiao point feasible");
    Fig6aReport {
        cells,
        xiao_probe_mw: xiao.min_probe_power.as_mw(),
    }
}

/// EXP-6B report: probe power vs BER target (Xiao MZI).
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6bReport {
    /// Sweep points.
    pub points: Vec<BerSweepPoint>,
    /// Power ratio BER 1e-2 / BER 1e-6 (paper: ≈ 50%).
    pub relaxation_ratio: f64,
}

/// Runs EXP-6B.
///
/// # Panics
///
/// Panics if the Xiao design point is infeasible (library invariant).
pub fn run_fig6b() -> Fig6bReport {
    let points = fig6b_ber_sweep(
        DbRatio::from_db(6.5),
        DbRatio::from_db(7.5),
        &[1e-2, 1e-3, 1e-4, 1e-5, 1e-6],
    )
    .expect("Xiao sweep feasible");
    let relaxation_ratio =
        points[0].min_probe_power.as_mw() / points[points.len() - 1].min_probe_power.as_mw();
    Fig6bReport {
        points,
        relaxation_ratio,
    }
}

/// EXP-6C report: the literature device comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6cReport {
    /// One entry per device bar of Fig. 6(c).
    pub points: Vec<DevicePoint>,
}

/// Runs EXP-6C.
pub fn run_fig6c() -> Fig6cReport {
    Fig6cReport {
        points: fig6c_devices(&devices::fig6_devices(), 1e-6),
    }
}

/// Prints EXP-6A.
pub fn print_fig6a(report: &Fig6aReport) {
    println!("EXP-6A  min probe power vs MZI IL/ER (pump 0.6 W, BER 1e-6)");
    let rows: Vec<Vec<String>> = report
        .cells
        .iter()
        .map(|c| {
            vec![
                format!("{:.2}", c.il_db),
                format!("{:.2}", c.er_db),
                c.min_probe_power
                    .map(|p| format!("{:.4}", p.as_mw()))
                    .unwrap_or_else(|| "infeasible".into()),
                c.wl_spacing
                    .map(|s| format!("{:.3}", s.as_nm()))
                    .unwrap_or_else(|| "-".into()),
            ]
        })
        .collect();
    crate::print_table(&["IL dB", "ER dB", "probe mW", "spacing nm"], &rows);
    println!(
        "{}",
        crate::compare_line(
            "Xiao et al. point (IL 6.5, ER 7.5)",
            0.26,
            report.xiao_probe_mw,
            "mW"
        )
    );
}

/// Prints EXP-6B.
pub fn print_fig6b(report: &Fig6bReport) {
    println!("EXP-6B  min probe power vs target BER (Xiao MZI)");
    let rows: Vec<Vec<String>> = report
        .points
        .iter()
        .map(|p| {
            vec![
                format!("{:.0e}", p.target_ber),
                format!("{:.4}", p.min_probe_power.as_mw()),
            ]
        })
        .collect();
    crate::print_table(&["target BER", "probe mW"], &rows);
    println!(
        "{}",
        crate::compare_line(
            "power ratio 1e-2 vs 1e-6",
            0.50,
            report.relaxation_ratio,
            ""
        )
    );
}

/// Prints EXP-6C.
pub fn print_fig6c(report: &Fig6cReport) {
    println!("EXP-6C  min probe power per literature MZI (BER 1e-6)");
    let rows: Vec<Vec<String>> = report
        .points
        .iter()
        .map(|p| {
            vec![
                p.label.clone(),
                format!("{:.0}", p.speed_gbps),
                format!("{:.2}", p.phase_shifter_length_mm),
                p.min_probe_power
                    .map(|v| format!("{:.4}", v.as_mw()))
                    .unwrap_or_else(|| "infeasible".into()),
            ]
        })
        .collect();
    crate::print_table(&["device", "Gb/s", "PSL mm", "probe mW"], &rows);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6a_xiao_matches_paper() {
        let r = run_fig6a();
        assert!((r.xiao_probe_mw - 0.26).abs() < 0.01, "{}", r.xiao_probe_mw);
        assert_eq!(r.cells.len(), 120);
        assert!(r.cells.iter().all(|c| c.min_probe_power.is_some()));
    }

    #[test]
    fn fig6a_probe_powers_in_paper_range() {
        // The paper's Fig. 6(a) axis spans ~0.24–0.36 mW.
        let r = run_fig6a();
        for c in &r.cells {
            let p = c.min_probe_power.unwrap().as_mw();
            assert!(p > 0.15 && p < 0.55, "IL {} ER {}: {p}", c.il_db, c.er_db);
        }
    }

    #[test]
    fn fig6b_fifty_percent_reduction() {
        let r = run_fig6b();
        assert!(
            (r.relaxation_ratio - 0.489).abs() < 0.02,
            "{}",
            r.relaxation_ratio
        );
        // Monotone increase with tighter BER.
        for w in r.points.windows(2) {
            assert!(w[1].min_probe_power > w[0].min_probe_power);
        }
    }

    #[test]
    fn fig6c_all_devices_feasible() {
        let r = run_fig6c();
        assert_eq!(r.points.len(), 4);
        for p in &r.points {
            let v = p.min_probe_power.expect("feasible").as_mw();
            assert!(v > 0.05 && v < 0.6, "{}: {v}", p.label);
        }
    }
}
