//! Shared design-sweep scenarios — the axes the `design_sweep` binary,
//! the `design_sweep_order_grid` kernel workload and the sweep
//! equivalence tests all build from, so every entry point exercises the
//! same candidate universes.

use osc_core::backend::BackendKind;
use osc_core::batch::shard::SngKind;

#[doc(no_inline)]
pub use osc_core::design::sweep::{
    frontier_csv, pareto_frontier, DesignSweep, SweepAxes, SweepMode, SweepPoint,
};

/// Builds sweep axes holding at least `candidates` candidates over the
/// Fig. 6 device ranges, optionally restricted to one backend. The grid
/// side grows until the cross product reaches the floor, so the same
/// `(candidates, backend)` pair enumerates the same universe
/// everywhere.
pub fn axes_for(
    candidates: usize,
    backend: Option<BackendKind>,
    streams: &[usize],
    probes: usize,
    seed: u64,
) -> SweepAxes {
    let mut points = 1usize;
    loop {
        let mut axes = SweepAxes::fig6(points);
        if let Some(b) = backend {
            axes.backends = vec![b];
        }
        if !streams.is_empty() {
            axes.stream_lengths = streams.to_vec();
        }
        axes.probes = probes;
        axes.seed = seed;
        if axes.candidate_count() >= candidates {
            return axes;
        }
        points += 1;
    }
}

/// The many-distinct-circuits order-grid profile behind the
/// `design_sweep_order_grid` kernel workload: orders 1–2 × both
/// backends × a 16 × 16 IL/ER grid = 1024 candidates, every one a
/// distinct circuit — the stress profile the soak schedule's
/// two-circuit repeat cannot produce. Streams stay short (32 bits,
/// 2 probes) so the workload measures serving overhead, not optics.
pub fn order_grid_axes() -> SweepAxes {
    SweepAxes {
        orders: vec![1, 2],
        sngs: vec![SngKind::Counter],
        stream_lengths: vec![32],
        backends: BackendKind::ALL.to_vec(),
        il_db: osc_math::linspace(3.0, 7.4, 16),
        er_db: osc_math::linspace(4.0, 7.6, 16),
        target_ber: 1e-6,
        probes: 2,
        seed: 0x0BD6_41D0,
    }
}

/// One-line sweep summary, the `soak::summary_line` convention applied
/// to a design sweep.
pub fn summary_line(
    binary: &str,
    sweep: &DesignSweep,
    mode: &str,
    solve_s: f64,
    eval_s: f64,
    frontier: &[SweepPoint],
) -> String {
    let feasible = sweep.designs().len();
    let per_candidate_ms = if feasible > 0 {
        eval_s * 1e3 / feasible as f64
    } else {
        0.0
    };
    format!(
        "[{binary}] sweep: {} candidates ({} feasible, {} infeasible, {} probes, backend {}) \
         via {mode}: solve {solve_s:.3} s, eval {eval_s:.3} s, {per_candidate_ms:.2} ms/candidate, \
         frontier {} points",
        sweep.candidates(),
        feasible,
        sweep.infeasible(),
        sweep.axes().probes,
        backend_label(sweep),
        frontier.len(),
    )
}

fn backend_label(sweep: &DesignSweep) -> String {
    let backends = &sweep.axes().backends;
    if backends.len() == 1 {
        backends[0].to_string()
    } else {
        "all".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axes_for_reaches_floor_and_pins_backend() {
        let axes = axes_for(60, Some(BackendKind::Nanocavity), &[64], 3, 5);
        assert!(axes.candidate_count() >= 60);
        assert_eq!(axes.backends, vec![BackendKind::Nanocavity]);
        assert_eq!(axes.stream_lengths, vec![64]);
        assert_eq!((axes.probes, axes.seed), (3, 5));
        // Same request, same universe: the sizing is deterministic.
        assert_eq!(
            axes,
            axes_for(60, Some(BackendKind::Nanocavity), &[64], 3, 5)
        );
        // An empty stream list keeps the default two-length axis.
        assert_eq!(axes_for(60, None, &[], 3, 5).stream_lengths, vec![64, 256]);
    }

    #[test]
    fn order_grid_is_a_thousand_distinct_circuits() {
        let axes = order_grid_axes();
        assert_eq!(axes.candidate_count(), 1024);
        // Every candidate is a distinct circuit: SNG and stream axes
        // are singletons, so (backend, order, il, er) alone vary.
        assert_eq!(axes.sngs.len(), 1);
        assert_eq!(axes.stream_lengths.len(), 1);
    }
}
