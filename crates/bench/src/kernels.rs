//! EXP-K: kernel speedups, pinned per PR.
//!
//! Measures the seed per-bit implementations (kept as `*_bitwise` /
//! `*_reference` twins) against the current hot paths on the workloads
//! the acceptance criteria name: the order-2 Fig. 5 circuit at 16384-bit
//! streams and a 64×64-pixel gamma-correction image. Since the fusion PR
//! the hot path is the zero-materialization streaming kernel
//! ([`OpticalScSystem::evaluate_fused`]); dedicated `*_fused` entries pin
//! it against the materializing word path it replaced. The
//! `bench_kernels` binary appends each report as one labelled run record
//! to `BENCH_kernels.json`, so the file carries the PR-over-PR perf
//! trajectory instead of a single snapshot (see [`append_run`]).

use crate::microbench::Harness;
use osc_core::backend::BackendKind;
use osc_core::batch::shard::pool::PoolConfig;
use osc_core::batch::shard::{locate_worker, ShardCoordinator};
use osc_core::batch::BatchEvaluator;
use osc_core::params::CircuitParams;
use osc_core::system::{EvalScratch, OpticalScSystem};
use osc_math::rng::{SplitMix64, Xoshiro256PlusPlus};
use osc_stochastic::bernstein::BernsteinPoly;
use osc_stochastic::resc::ReScUnit;
use osc_stochastic::simd;
use osc_stochastic::sng::{
    ChaoticLaserSng, CounterSng, SngWordCursor, StochasticNumberGenerator, XoshiroSng,
};
use osc_units::Nanometers;
use std::time::Duration;

/// One before/after pair.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelComparison {
    /// Workload name.
    pub name: String,
    /// Seed per-bit path, median ns per iteration.
    pub baseline_ns: f64,
    /// Word-parallel path, median ns per iteration.
    pub optimized_ns: f64,
}

impl KernelComparison {
    /// Baseline over optimized.
    pub fn speedup(&self) -> f64 {
        self.baseline_ns / self.optimized_ns
    }
}

/// EXP-K report.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelsReport {
    /// All measured pairs.
    pub comparisons: Vec<KernelComparison>,
}

fn compare(
    harness: &mut Harness,
    name: &str,
    baseline: impl FnMut() -> f64,
    optimized: impl FnMut() -> f64,
) -> KernelComparison {
    let mut baseline = baseline;
    let mut optimized = optimized;
    let b = harness
        .bench_function(&format!("{name}/per_bit_baseline"), |ben| {
            ben.iter(&mut baseline)
        })
        .expect("unfiltered harness");
    let o = harness
        .bench_function(&format!("{name}/word_parallel"), |ben| {
            ben.iter(&mut optimized)
        })
        .expect("unfiltered harness");
    KernelComparison {
        name: name.to_string(),
        baseline_ns: b.median_ns,
        optimized_ns: o.median_ns,
    }
}

/// Runs every kernel comparison with the given per-measurement budget.
///
/// # Panics
///
/// Panics if the shipped circuit configurations fail to build (library
/// invariant).
pub fn run(budget_ms: u64) -> KernelsReport {
    let mut harness = Harness::with_budget("kernels", Duration::from_millis(budget_ms));
    let mut comparisons = Vec::new();

    // SNG stream generation, 16384 bits.
    let mut sng_b = XoshiroSng::new(7);
    let mut sng_o = XoshiroSng::new(7);
    comparisons.push(compare(
        &mut harness,
        "sng_xoshiro_16384",
        move || sng_b.generate_bitwise(0.37, 16_384).unwrap().value(),
        move || sng_o.generate(0.37, 16_384).unwrap().value(),
    ));

    // Electronic ReSC datapath (adder + mux), degree 3, 16384 bits.
    let unit = ReScUnit::new(BernsteinPoly::paper_f1());
    let mut gen = XoshiroSng::new(5);
    let (data, coeffs) = unit.generate_streams(0.5, 16_384, &mut gen).unwrap();
    let unit_b = unit.clone();
    let (data_b, coeffs_b) = (data.clone(), coeffs.clone());
    comparisons.push(compare(
        &mut harness,
        "resc_mux_16384",
        move || {
            unit_b
                .run_streams_bitwise(&data_b, &coeffs_b)
                .unwrap()
                .value()
        },
        move || unit.run_streams(&data, &coeffs).unwrap().value(),
    ));

    // The acceptance workload: order-2 Fig. 5 circuit, 16384-bit streams.
    // Optimized side = the fused streaming kernel (the hot default since
    // the fusion PR); baseline = the frozen per-bit seed implementation.
    let system = OpticalScSystem::new(
        CircuitParams::paper_fig5(),
        BernsteinPoly::new(vec![0.25, 0.625, 0.75]).unwrap(),
    )
    .expect("fig5 circuit builds");
    let system_b = system.clone();
    let system_m = system.clone();
    let system_m2 = system.clone();
    let mut sng_b = XoshiroSng::new(11);
    let mut rng_b = Xoshiro256PlusPlus::new(12);
    let mut sng_o = XoshiroSng::new(11);
    let mut rng_o = Xoshiro256PlusPlus::new(12);
    let mut scratch_o = EvalScratch::new();
    comparisons.push(compare(
        &mut harness,
        "optical_evaluate_order2_16384",
        move || {
            system_b
                .evaluate_reference(0.5, 16_384, &mut sng_b, &mut rng_b)
                .unwrap()
                .estimate
        },
        move || {
            system
                .evaluate_fused(0.5, 16_384, &mut sng_o, &mut rng_o, &mut scratch_o)
                .unwrap()
                .estimate
        },
    ));

    // The same acceptance workload on the nanocavity backend: its
    // per-backend trajectory record, and the proof the kernel tiers
    // are backend-generic (reference vs. fused on non-default physics).
    let nano_system = OpticalScSystem::new(
        CircuitParams::paper_fig5().with_backend(BackendKind::Nanocavity),
        BernsteinPoly::new(vec![0.25, 0.625, 0.75]).unwrap(),
    )
    .expect("nanocavity fig5 circuit builds");
    let nano_system_b = nano_system.clone();
    let mut nano_sng_b = XoshiroSng::new(11);
    let mut nano_rng_b = Xoshiro256PlusPlus::new(12);
    let mut nano_sng_o = XoshiroSng::new(11);
    let mut nano_rng_o = Xoshiro256PlusPlus::new(12);
    let mut nano_scratch = EvalScratch::new();
    comparisons.push(compare(
        &mut harness,
        "nanocavity_evaluate_order2_16384",
        move || {
            nano_system_b
                .evaluate_reference(0.5, 16_384, &mut nano_sng_b, &mut nano_rng_b)
                .unwrap()
                .estimate
        },
        move || {
            nano_system
                .evaluate_fused(
                    0.5,
                    16_384,
                    &mut nano_sng_o,
                    &mut nano_rng_o,
                    &mut nano_scratch,
                )
                .unwrap()
                .estimate
        },
    ));

    // Fusion isolated: the materializing word path (the previous hot
    // path) against the zero-materialization streaming kernel.
    let mut sng_m = XoshiroSng::new(11);
    let mut rng_m = Xoshiro256PlusPlus::new(12);
    let mut sng_f = XoshiroSng::new(11);
    let mut rng_f = Xoshiro256PlusPlus::new(12);
    let mut scratch_f = EvalScratch::new();
    comparisons.push(compare(
        &mut harness,
        "optical_evaluate_order2_16384_fused",
        move || {
            system_m
                .evaluate(0.5, 16_384, &mut sng_m, &mut rng_m)
                .unwrap()
                .estimate
        },
        move || {
            system_m2
                .evaluate_fused(0.5, 16_384, &mut sng_f, &mut rng_f, &mut scratch_f)
                .unwrap()
                .estimate
        },
    ));

    // Lane-blocked SNG generation: 8 comparator chains drawn in
    // lock-step (vectorized where the CPU allows) against 8 sequential
    // drains of the same streams. The per-call round counter varies the
    // seeds so the optimizer cannot hoist the pure computation out of
    // the timing loop.
    let mut round_b = 0u64;
    let mut round_o = 0u64;
    comparisons.push(compare(
        &mut harness,
        "sng_lanes8_xoshiro_16384",
        move || {
            round_b += 1;
            let mut acc = 0u64;
            for l in 0..8u64 {
                let mut sng = XoshiroSng::new(500 + 8 * round_b + l);
                sng.begin(0.37, 16_384).unwrap().drain(|w, _| acc ^= w);
            }
            acc as f64
        },
        move || {
            round_o += 1;
            let mut lanes: [XoshiroSng; 8] =
                std::array::from_fn(|l| XoshiroSng::new(500 + 8 * round_o + l as u64));
            let mut acc = 0u64;
            XoshiroSng::drain_lanes(&mut lanes, &[0.37; 8], 16_384, |block, _| {
                for &w in block {
                    acc ^= w;
                }
            })
            .unwrap();
            acc as f64
        },
    ));

    // The same 8-lane shape on the SplitMix64-driven chaotic-laser
    // source: 8 sequential drains against one lane-blocked pass, which
    // dispatches to the vectorized SplitMix64 engine (AVX-512
    // `vpmullq` / AVX2 split-multiply) on vector tiers and to the
    // burst-packed portable walk under forced-scalar dispatch.
    let mut smx_round_b = 0u64;
    let mut smx_round_o = 0u64;
    comparisons.push(compare(
        &mut harness,
        "sng_lanes8_splitmix_16384",
        move || {
            smx_round_b += 1;
            let mut acc = 0u64;
            for l in 0..8u64 {
                let mut sng = ChaoticLaserSng::seeded(900 + 8 * smx_round_b + l);
                sng.begin(0.37, 16_384).unwrap().drain(|w, _| acc ^= w);
            }
            acc as f64
        },
        move || {
            smx_round_o += 1;
            let mut lanes: [ChaoticLaserSng; 8] =
                std::array::from_fn(|l| ChaoticLaserSng::seeded(900 + 8 * smx_round_o + l as u64));
            let mut acc = 0u64;
            ChaoticLaserSng::drain_lanes(&mut lanes, &[0.37; 8], 16_384, |block, _| {
                for &w in block {
                    acc ^= w;
                }
            })
            .unwrap();
            acc as f64
        },
    ));

    // And on the counter/van-der-Corput source: fresh generators every
    // call, so all 8 lanes sit on Halton base 2 — the shape the
    // bit-reversal vector engine covers. Distinct per-lane
    // probabilities exercise the threshold comparison rather than a
    // degenerate all-equal compare, and a tiny per-round perturbation
    // keeps the optimizer from hoisting the pure computation out of
    // the timing loop.
    let mut ctr_round_b = 0u64;
    let mut ctr_round_o = 0u64;
    comparisons.push(compare(
        &mut harness,
        "sng_lanes8_counter_16384",
        move || {
            ctr_round_b += 1;
            let jitter = (ctr_round_b % 13) as f64 * 1e-6;
            let mut acc = 0u64;
            for l in 0..8usize {
                let mut sng = CounterSng::new();
                let p = 0.07 + 0.12 * l as f64 + jitter;
                sng.begin(p, 16_384).unwrap().drain(|w, _| acc ^= w);
            }
            acc as f64
        },
        move || {
            ctr_round_o += 1;
            let jitter = (ctr_round_o % 13) as f64 * 1e-6;
            let mut lanes: [CounterSng; 8] = std::array::from_fn(|_| CounterSng::new());
            let ps: [f64; 8] = std::array::from_fn(|l| 0.07 + 0.12 * l as f64 + jitter);
            let mut acc = 0u64;
            CounterSng::drain_lanes(&mut lanes, &ps, 16_384, |block, _| {
                for &w in block {
                    acc ^= w;
                }
            })
            .unwrap();
            acc as f64
        },
    ));

    // The lane-bank acceptance workload: an 8-lane order-2 Fig. 5 bank
    // over 16384 total bits (2048 per lane). Baseline = the per-lane
    // fused path (8 standalone evaluate_fused calls); optimized = one
    // lane-blocked evaluate_fused_lanes::<8> pass. Both sides construct
    // their per-lane generators from the same seeds, and the results are
    // bit-identical — only the walk differs.
    let lane_system = OpticalScSystem::new(
        CircuitParams::paper_fig5(),
        BernsteinPoly::new(vec![0.25, 0.625, 0.75]).unwrap(),
    )
    .expect("fig5 circuit builds");
    let lane_system_b = lane_system.clone();
    let mut lane_scratch_b = EvalScratch::new();
    let mut lane_scratch_o = EvalScratch::new();
    let mut lane_round_b = 0u64;
    let mut lane_round_o = 0u64;
    comparisons.push(compare(
        &mut harness,
        "parallel_lanes_order2_16384",
        move || {
            lane_round_b += 1;
            let mut acc = 0.0;
            for l in 0..8u64 {
                let mut sng = XoshiroSng::new(700 + 8 * lane_round_b + l);
                let mut rng = Xoshiro256PlusPlus::new(800 + 8 * lane_round_b + l);
                acc += lane_system_b
                    .evaluate_fused(0.5, 2048, &mut sng, &mut rng, &mut lane_scratch_b)
                    .unwrap()
                    .estimate;
            }
            acc
        },
        move || {
            lane_round_o += 1;
            let mut sngs: [XoshiroSng; 8] =
                std::array::from_fn(|l| XoshiroSng::new(700 + 8 * lane_round_o + l as u64));
            let mut rngs: [Xoshiro256PlusPlus; 8] =
                std::array::from_fn(|l| Xoshiro256PlusPlus::new(800 + 8 * lane_round_o + l as u64));
            lane_system
                .evaluate_fused_lanes(&[0.5; 8], 2048, &mut sngs, &mut rngs, &mut lane_scratch_o)
                .unwrap()
                .iter()
                .map(|r| r.estimate)
                .sum()
        },
    ));

    // The acceptance workload: 64×64-pixel gamma correction on the
    // 6th-order optical circuit.
    let poly = osc_apps::gamma_app::paper_gamma_polynomial().expect("gamma fit");
    let image = osc_apps::image::Image::blobs(64, 64);
    let stream = 512usize;
    let params = CircuitParams::paper_fig7(6, Nanometers::new(0.165));
    let gamma_system =
        OpticalScSystem::new(params, poly.clone()).expect("6th-order circuit builds");
    let image_b = image.clone();
    let image_m = image.clone();
    let image_f = image.clone();
    let gamma_system_m = gamma_system.clone();
    let gamma_system_f = gamma_system.clone();
    let mut sng_b = XoshiroSng::new(13);
    let mut rng_b = Xoshiro256PlusPlus::new(14);
    let backend = osc_apps::backend::OpticalBackend::new(params, poly, stream, 13)
        .expect("6th-order circuit builds");
    let evaluator = BatchEvaluator::new();
    comparisons.push(compare(
        &mut harness,
        "gamma_64x64_order6",
        move || {
            // Seed path: sequential per-pixel loop over the frozen
            // per-bit implementation.
            let mut acc = 0.0;
            for &p in image_b.pixels() {
                acc += gamma_system
                    .evaluate_reference(p, stream, &mut sng_b, &mut rng_b)
                    .unwrap()
                    .estimate;
            }
            acc
        },
        move || {
            // Current pipeline: fused zero-materialization kernel, rows
            // fanned across the batch evaluator's workers with per-row
            // backend scratch.
            osc_apps::gamma_app::apply_backend_par(&image, &backend, &evaluator)
                .unwrap()
                .pixels()
                .iter()
                .sum()
        },
    ));

    // The scale-out acceptance workload: the same 64×64 order-6 gamma
    // image, single-process row+lane pipeline pinned to one thread
    // (baseline) against three shard_worker subprocesses (optimized) —
    // what process sharding buys over one core, spawn cost included.
    // The outputs are byte-identical; only the walk differs. The stream
    // length is 2048 (vs 512 for the in-process gamma records) so the
    // video-scale compute dominates the fixed per-worker cost (spawn +
    // circuit rebuild, ~2 ms/worker); on a single-core host the ratio
    // tops out just below 1.0 by construction — the record documents
    // the sharding overhead there and the scale-out gain on multi-core
    // runners. Skipped (with a log line) when the worker binary has not
    // been built — first-run workloads are never gated, so the record
    // simply appears once the binary exists.
    if let Some(worker) = shard_worker_path() {
        let stream_s = 2048usize;
        let image_s = osc_apps::image::Image::blobs(64, 64);
        let image_s2 = image_s.clone();
        let poly_s = osc_apps::gamma_app::paper_gamma_polynomial().expect("gamma fit");
        let backend_s =
            osc_apps::backend::OpticalBackend::new(params, poly_s.clone(), stream_s, 13)
                .expect("6th-order circuit builds");
        let backend_s2 = osc_apps::backend::OpticalBackend::new(params, poly_s, stream_s, 13)
            .expect("6th-order circuit builds");
        let one_thread = BatchEvaluator::with_threads(1);
        let coordinator = ShardCoordinator::new(&worker, 3);
        comparisons.push(compare(
            &mut harness,
            "gamma_64x64_order6_sharded",
            move || {
                osc_apps::gamma_app::apply_optical_lanes(&image_s, &backend_s, &one_thread)
                    .unwrap()
                    .pixels()
                    .iter()
                    .sum()
            },
            move || {
                osc_apps::gamma_app::apply_optical_sharded(&image_s2, &backend_s2, &coordinator)
                    .unwrap()
                    .pixels()
                    .iter()
                    .sum()
            },
        ));

        // Pool amortization on the image workload: the same 64×64
        // order-6 gamma image (stream 512), a fresh 3-worker coordinator
        // spawn per request (baseline — what gamma_64x64_order6_sharded
        // pays every call) against a persistent 3-worker pool whose
        // processes and cached circuit survive across requests
        // (optimized). Both sides produce byte-identical images; the
        // ratio is pure spawn + circuit-rebuild amortization, so it
        // holds on a single-core container too.
        let image_q = osc_apps::image::Image::blobs(64, 64);
        let image_q2 = image_q.clone();
        let poly_q = osc_apps::gamma_app::paper_gamma_polynomial().expect("gamma fit");
        let backend_q = osc_apps::backend::OpticalBackend::new(params, poly_q.clone(), stream, 13)
            .expect("6th-order circuit builds");
        let backend_q2 = osc_apps::backend::OpticalBackend::new(params, poly_q, stream, 13)
            .expect("6th-order circuit builds");
        let spawn_coordinator = ShardCoordinator::new(&worker, 3);
        let mut warm_pool = PoolConfig::new(&worker, 3).spawn().expect("pool spawns");
        comparisons.push(compare(
            &mut harness,
            "gamma_64x64_order6_pooled",
            move || {
                osc_apps::gamma_app::apply_optical_sharded(&image_q, &backend_q, &spawn_coordinator)
                    .unwrap()
                    .pixels()
                    .iter()
                    .sum()
            },
            move || {
                osc_apps::gamma_app::apply_optical_pooled(&image_q2, &backend_q2, &mut warm_pool)
                    .unwrap()
                    .pixels()
                    .iter()
                    .sum()
            },
        ));

        // The serving acceptance workload: the shared soak schedule —
        // 16 tiny (4×4) alternating gamma/contrast requests at 1024-bit
        // streams — per-request coordinator spawning (baseline) against
        // a persistent 3-worker pool with warm circuit caches
        // (optimized). This is the many-small-requests regime the
        // ROADMAP's service story lives in: the baseline pays 3 spawns
        // + a circuit build per request, the pool pays neither after
        // the first two requests.
        let soak_cfg = crate::soak::SoakConfig {
            requests: 16,
            width: 4,
            height: 4,
            stream: 1024,
            ..Default::default()
        };
        let soak_spawn = ShardCoordinator::new(&worker, 3);
        let mut soak_pool = PoolConfig::new(&worker, 3).spawn().expect("pool spawns");
        comparisons.push(compare(
            &mut harness,
            "pool_small_requests_1024",
            move || {
                crate::soak::run(&soak_cfg, crate::soak::SoakMode::Spawn(&soak_spawn))
                    .unwrap()
                    .bytes
                    .len() as f64
            },
            move || {
                crate::soak::run(&soak_cfg, crate::soak::SoakMode::Pool(&mut soak_pool))
                    .unwrap()
                    .bytes
                    .len() as f64
            },
        ));

        // The service-soak trajectory workload: the same small-request
        // schedule, per-request coordinator spawning (baseline) against
        // the persistent TCP front door driven by the 3-connection
        // closed-loop load generator (optimized). On top of the pool's
        // amortization the optimized side pays wire framing and
        // connection scheduling and *still* wins — that margin is the
        // serving overhead budget the trajectory pins PR-over-PR.
        let svc_cfg = soak_cfg;
        let svc_spawn = ShardCoordinator::new(&worker, 3);
        let svc_dispatcher = PoolConfig::new(&worker, 3)
            .spawn_dispatcher()
            .expect("dispatcher spawns");
        let service =
            osc_core::batch::shard::service::Service::bind(("127.0.0.1", 0), svc_dispatcher)
                .expect("service binds an ephemeral port");
        let svc_load = crate::soak::LoadConfig::default();
        comparisons.push(compare(
            &mut harness,
            "service_soak",
            move || {
                crate::soak::run(&svc_cfg, crate::soak::SoakMode::Spawn(&svc_spawn))
                    .unwrap()
                    .bytes
                    .len() as f64
            },
            move || {
                crate::soak::run_service(&svc_cfg, service.local_addr(), &svc_load)
                    .unwrap()
                    .bytes
                    .len() as f64
            },
        ));

        // The design-sweep trajectory workload: 1024 **distinct**
        // circuits (orders 1–2 × both backends × a 16×16 IL/ER grid,
        // every candidate its own parameter set) — the many-distinct-
        // circuits stress profile the soak schedule's two-circuit
        // repeat cannot produce. Baseline: spawn-per-request, a fresh
        // single-shard coordinator call per candidate (1024 process
        // spawns + circuit builds per pass). Optimized: one persistent
        // 3-worker pool whose circuit cache is sized to the whole
        // working set, all candidates streaming through one pipelined
        // run_requests call — the first pass ships each circuit inline
        // once, later passes hit the warm digest cache. Both sides
        // produce bit-identical frontiers; the ratio is the warm-cache
        // amortization the digest-keyed CircuitCache was built for.
        let grid_sweep = std::sync::Arc::new(crate::sweep::DesignSweep::new(
            crate::sweep::order_grid_axes(),
        ));
        let grid_sweep2 = grid_sweep.clone();
        let sweep_spawn = ShardCoordinator::new(&worker, 1);
        let mut sweep_pool = PoolConfig::new(&worker, 3)
            .with_circuit_cache_capacity(grid_sweep.designs().len())
            .spawn()
            .expect("pool spawns");
        comparisons.push(compare(
            &mut harness,
            "design_sweep_order_grid",
            move || {
                grid_sweep
                    .evaluate(crate::sweep::SweepMode::Spawn(&sweep_spawn))
                    .unwrap()
                    .iter()
                    .map(|p| p.mean_abs_error)
                    .sum()
            },
            move || {
                grid_sweep2
                    .evaluate(crate::sweep::SweepMode::Pool(&mut sweep_pool))
                    .unwrap()
                    .iter()
                    .map(|p| p.mean_abs_error)
                    .sum()
            },
        ));
    } else {
        eprintln!(
            "[kernels] shard_worker binary not found — skipping gamma_64x64_order6_sharded, \
             gamma_64x64_order6_pooled, pool_small_requests_1024, service_soak and \
             design_sweep_order_grid \
             (build it with `cargo build -p osc-bench --bin shard_worker`)"
        );
    }

    // Fusion isolated on the gamma workload: sequential per-pixel loops,
    // materializing word path vs streaming kernel with reused scratch
    // (zero heap allocation per pixel).
    let mut sng_m = XoshiroSng::new(13);
    let mut rng_m = Xoshiro256PlusPlus::new(14);
    let mut sng_f = XoshiroSng::new(13);
    let mut rng_f = Xoshiro256PlusPlus::new(14);
    let mut scratch_g = EvalScratch::new();
    comparisons.push(compare(
        &mut harness,
        "gamma_64x64_order6_fused",
        move || {
            let mut acc = 0.0;
            for &p in image_m.pixels() {
                acc += gamma_system_m
                    .evaluate(p, stream, &mut sng_m, &mut rng_m)
                    .unwrap()
                    .estimate;
            }
            acc
        },
        move || {
            let mut acc = 0.0;
            for &p in image_f.pixels() {
                acc += gamma_system_f
                    .evaluate_fused(p, stream, &mut sng_f, &mut rng_f, &mut scratch_g)
                    .unwrap()
                    .estimate;
            }
            acc
        },
    ));

    // Fault-injection overhead pinned: the order-6 gamma kernel at a
    // 0.01 bit-flip rate (baseline) against the clean kernel
    // (optimized), single pixel, 16384-bit streams. The ratio is the
    // *overhead factor* of the fault machinery (geometric gap sampling
    // + strided XOR splices on the word path), not a speedup — CI gates
    // it from above (≤ 1.20 at rate 0.01), so a change that makes fault
    // injection O(bits) instead of O(events) shows up as a gate
    // failure, and the regression floor below is trivially satisfied.
    let fault_system = OpticalScSystem::new(
        CircuitParams::paper_fig7(6, Nanometers::new(0.165)),
        osc_apps::gamma_app::paper_gamma_polynomial().expect("gamma fit"),
    )
    .expect("6th-order circuit builds");
    let fault_system_c = fault_system.clone();
    let fault_spec = osc_core::fault::FaultSpec::flips(0.01, 0xFA07);
    let mut sng_fb = XoshiroSng::new(21);
    let mut rng_fb = Xoshiro256PlusPlus::new(22);
    let mut sng_fc = XoshiroSng::new(21);
    let mut rng_fc = Xoshiro256PlusPlus::new(22);
    let mut scratch_fb = EvalScratch::new();
    let mut scratch_fc = EvalScratch::new();
    comparisons.push(compare(
        &mut harness,
        "fault_rate_sweep_order6",
        move || {
            fault_system
                .evaluate_fused_faulted(
                    0.5,
                    16_384,
                    &mut sng_fb,
                    &mut rng_fb,
                    Some(&fault_spec),
                    &mut scratch_fb,
                )
                .unwrap()
                .estimate
        },
        move || {
            fault_system_c
                .evaluate_fused(0.5, 16_384, &mut sng_fc, &mut rng_fc, &mut scratch_fc)
                .unwrap()
                .estimate
        },
    ));

    // The count-plane fold isolated: the per-word reduction the 8-lane
    // order-6 kernel performs — lane-interleaved selector popcounts plus
    // 16-bit table-index assembly from the 10 source rows an order-6
    // circuit folds (7 coefficient words + 3 count planes) — on
    // synthetic buffers shaped like one 2048-bit 8-lane pass (256
    // words). Baseline = forced-scalar popcount + the portable
    // bit-transpose; optimized = the runtime-dispatched AVX-512 fold
    // (`vpopcntq` accumulation + `vpmovm2w` index assembly, falling
    // back to the same portable code below that tier, where the record
    // documents parity).
    let nrows = 10usize;
    let wl = 256usize;
    let mut fill = SplitMix64::new(123);
    let rows: Vec<u64> = (0..nrows * wl).map(|_| fill.next_u64()).collect();
    let sel: Vec<u64> = (0..wl).map(|_| fill.next_u64()).collect();
    let rows_b = rows.clone();
    let sel_b = sel.clone();
    comparisons.push(compare(
        &mut harness,
        "fold_avx512_order6",
        move || {
            let mut acc8 = [0u64; 8];
            simd::popcount_lanes_accumulate_with(simd::SimdTier::Scalar, &sel_b, &mut acc8);
            let mut fold = acc8.iter().fold(0u64, |a, &v| a.wrapping_add(v));
            let mut src = [0u64; 10];
            let mut idxs = [0u16; 64];
            for w in 0..wl {
                for (j, s) in src.iter_mut().enumerate() {
                    *s = rows_b[j * wl + w];
                }
                simd::assemble_indices16_scalar(&src, &mut idxs);
                for &idx in &idxs {
                    fold = fold.wrapping_add(idx as u64);
                }
            }
            fold as f64
        },
        move || {
            let mut acc8 = [0u64; 8];
            simd::popcount_lanes_accumulate(&sel, &mut acc8);
            let mut fold = acc8.iter().fold(0u64, |a, &v| a.wrapping_add(v));
            let mut src = [0u64; 10];
            let mut idxs = [0u16; 64];
            for w in 0..wl {
                for (j, s) in src.iter_mut().enumerate() {
                    *s = rows[j * wl + w];
                }
                if !simd::assemble_indices16(&src, &mut idxs) {
                    simd::assemble_indices16_scalar(&src, &mut idxs);
                }
                for &idx in &idxs {
                    fold = fold.wrapping_add(idx as u64);
                }
            }
            fold as f64
        },
    ));

    harness.finish();
    KernelsReport { comparisons }
}

/// Workloads whose optimized side pays a fixed per-call process-spawn
/// cost by design: scale-out records that document what sharding costs
/// on one core and buys on many, not hot-path kernels. On a single-core
/// host their ratio sits below 1.0 by construction, so their run
/// records carry an `"amortized": false` field and [`check_report`]
/// routes their shortfalls to [`CheckOutcome::advisory`] instead of
/// failing the gate. (The pooled records amortize the spawn and are
/// gated normally.)
pub const SPAWN_OVERHEAD_WORKLOADS: &[&str] = &["gamma_64x64_order6_sharded"];

/// Whether `name`'s optimized side pays an unamortized per-call spawn
/// cost (see [`SPAWN_OVERHEAD_WORKLOADS`]).
pub fn is_spawn_overhead(name: &str) -> bool {
    SPAWN_OVERHEAD_WORKLOADS.contains(&name)
}

/// Locates the `shard_worker` binary the sharded workload spawns — the
/// `OSC_SHARD_WORKER` env override, or a sibling of the running
/// executable (covering `target/<profile>/` binaries and
/// `target/<profile>/deps/` test runners).
pub fn shard_worker_path() -> Option<std::path::PathBuf> {
    locate_worker("shard_worker")
}

/// Prints EXP-K.
pub fn print(report: &KernelsReport) {
    println!("EXP-K  word-parallel kernel speedups (per-bit seed path vs packed-u64 path)");
    let rows: Vec<Vec<String>> = report
        .comparisons
        .iter()
        .map(|c| {
            vec![
                c.name.clone(),
                format!("{:.0}", c.baseline_ns),
                format!("{:.0}", c.optimized_ns),
                format!("{:.2}x", c.speedup()),
            ]
        })
        .collect();
    crate::print_table(&["kernel", "per-bit ns", "word ns", "speedup"], &rows);
}

/// Maps a run label to a form every consumer of `BENCH_kernels.json`
/// can round-trip. The renderer splices labels into hand-built JSON and
/// the trajectory parser splits records by brace depth, so a label
/// containing `{`, `}`, `"` or `\` would corrupt the file for every
/// later append; those characters are substituted with visually close
/// safe ones (`(`, `)`, `'`, `/`), and control characters with `_`.
pub fn sanitize_label(label: &str) -> String {
    label
        .chars()
        .map(|c| match c {
            '{' => '(',
            '}' => ')',
            '"' => '\'',
            '\\' => '/',
            c if c.is_control() => '_',
            c => c,
        })
        .collect()
}

/// Renders one labelled run record. The per-run schema is the original
/// single-run `BENCH_kernels.json` shape (a `benchmarks` array of
/// name / baseline_ns / optimized_ns / speedup entries) plus a `label`
/// identifying the PR or invocation that produced it and the SIMD
/// `tier` the measurements ran under (kernel speedups are
/// tier-relative, so the regression gate only compares like against
/// like — see [`reference_run_speedups`]). Label and tier are passed
/// through [`sanitize_label`], so a hostile one cannot corrupt the
/// trajectory file.
pub fn render_run(report: &KernelsReport, label: &str, tier: &str) -> String {
    let label = sanitize_label(label);
    let tier = sanitize_label(tier);
    let mut out =
        format!("    {{\"label\": \"{label}\", \"tier\": \"{tier}\", \"benchmarks\": [\n");
    for (i, c) in report.comparisons.iter().enumerate() {
        out.push_str(&format!(
            "      {{\"name\": \"{}\", \"baseline_ns\": {:.3}, \"optimized_ns\": {:.3}, \"speedup\": {:.3}{}}}{}\n",
            c.name,
            c.baseline_ns,
            c.optimized_ns,
            c.speedup(),
            // Spawn-overhead workloads are flagged in the record itself,
            // so a reader of the raw trajectory sees the sub-1.0 ratios
            // are documented overhead, not regressions. The speedup
            // parser stops at the comma, so the field is transparent to
            // every existing consumer.
            if is_spawn_overhead(&c.name) {
                ", \"amortized\": false"
            } else {
                ""
            },
            if i + 1 < report.comparisons.len() { "," } else { "" }
        ));
    }
    out.push_str("    ]}");
    out
}

/// Splits the top-level objects of the `runs` array out of a trajectory
/// file (or the whole object of a pre-trajectory single-run file).
/// Returns `None` when the text holds neither schema.
fn extract_run_records(text: &str) -> Option<Vec<String>> {
    let body = if let Some(pos) = text.find("\"runs\"") {
        let open = pos + text[pos..].find('[')?;
        let mut depth = 0usize;
        let mut end = None;
        for (i, ch) in text[open..].char_indices() {
            match ch {
                '[' => depth += 1,
                ']' => {
                    depth -= 1;
                    if depth == 0 {
                        end = Some(open + i);
                        break;
                    }
                }
                _ => {}
            }
        }
        &text[open + 1..end?]
    } else if text.contains("\"benchmarks\"") {
        // Pre-trajectory schema: the whole file is one unlabelled run.
        // Splice a label in so every record carries one.
        let rest = text.trim().strip_prefix('{')?;
        return Some(vec![format!("    {{\"label\": \"pr1\",{rest}")
            .trim_end()
            .to_string()]);
    } else {
        return None;
    };
    // Split the array body into top-level `{...}` records by brace depth
    // (names and labels never contain braces).
    let mut records = Vec::new();
    let mut depth = 0usize;
    let mut start = None;
    for (i, ch) in body.char_indices() {
        match ch {
            '{' => {
                if depth == 0 {
                    start = Some(i);
                }
                depth += 1;
            }
            '}' => {
                depth -= 1;
                if depth == 0 {
                    records.push(format!("    {}", body[start?..=i].trim()));
                }
            }
            _ => {}
        }
    }
    Some(records)
}

/// Appends a rendered run record to the trajectory file contents,
/// migrating a pre-trajectory single-run file into the first record.
/// `existing = None` (or unrecognized contents) starts a fresh
/// trajectory.
pub fn append_run(existing: Option<&str>, run_record: &str) -> String {
    let mut records = existing.and_then(extract_run_records).unwrap_or_default();
    records.push(run_record.trim_end().to_string());
    let mut out = String::from("{\n  \"runs\": [\n");
    out.push_str(&records.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}

/// The `"tier"` a run record declares, if any (records from before the
/// tier-aware gate carry none).
fn record_tier(record: &str) -> Option<&str> {
    let start = record.find("\"tier\": \"")? + "\"tier\": \"".len();
    let len = record[start..].find('"')?;
    Some(&record[start..start + len])
}

/// The `(name, speedup)` pairs the regression gate compares a fresh
/// run against, given the SIMD tier it was measured under. Kernel
/// speedups are tier-relative (a vectorized workload's ratio collapses
/// under forced-scalar dispatch by design, not by regression), so only
/// records **tagged with the same tier** are consulted; when none
/// exist the most recent *untagged* (pre-tier-schema) record is used,
/// preserving the old behavior for old files; otherwise nothing is
/// gated (first run on a new tier — recorded, not judged).
///
/// The workload set and its order come from the most recent same-tier
/// record, but each workload's reference speedup is the **lower median
/// across the last (up to) three same-tier records**. A single record
/// is not a robust floor for workloads whose baseline is dominated by
/// process-spawn cost (`pool_small_requests_1024`, `service_soak`,
/// `design_sweep_order_grid` all divide by a spawn-per-request
/// baseline): one run recorded on a slow-spawn day inflates the ratio
/// and would ratchet the floor above what the workload ever measures
/// again. The median damps any single outlier record — high or low —
/// while a real regression still trips the gate, since one bad fresh
/// measurement can never drag the committed median down with it.
pub fn reference_run_speedups(text: &str, tier: &str) -> Vec<(String, f64)> {
    let Some(records) = extract_run_records(text) else {
        return Vec::new();
    };
    let window: Vec<Vec<(String, f64)>> = {
        let same_tier: Vec<_> = records
            .iter()
            .rev()
            .filter(|r| record_tier(r) == Some(tier))
            .take(3)
            .map(|r| record_speedups(r))
            .collect();
        if same_tier.is_empty() {
            records
                .iter()
                .rev()
                .find(|r| record_tier(r).is_none())
                .map(|r| vec![record_speedups(r)])
                .unwrap_or_default()
        } else {
            same_tier
        }
    };
    let Some(latest) = window.first() else {
        return Vec::new();
    };
    latest
        .iter()
        .map(|(name, _)| {
            let mut samples: Vec<f64> = window
                .iter()
                .filter_map(|rec| rec.iter().find(|(n, _)| n == name).map(|&(_, s)| s))
                .collect();
            samples.sort_by(f64::total_cmp);
            (name.clone(), samples[(samples.len() - 1) / 2])
        })
        .collect()
}

/// The `(name, speedup)` pairs of the trajectory's most recent run (or
/// of a pre-trajectory single-run file), regardless of tier.
pub fn last_run_speedups(text: &str) -> Vec<(String, f64)> {
    let Some(records) = extract_run_records(text) else {
        return Vec::new();
    };
    match records.last() {
        Some(last) => record_speedups(last),
        None => Vec::new(),
    }
}

/// Parses the `(name, speedup)` pairs out of one run record.
fn record_speedups(record: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let mut rest: &str = record;
    while let Some(pos) = rest.find("\"name\": \"") {
        let name_start = pos + "\"name\": \"".len();
        let Some(name_len) = rest[name_start..].find('"') else {
            break;
        };
        let name = rest[name_start..name_start + name_len].to_string();
        let after = &rest[name_start + name_len..];
        if let Some(spos) = after.find("\"speedup\": ") {
            let val = after[spos + "\"speedup\": ".len()..]
                .split(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
                .next()
                .and_then(|v| v.parse::<f64>().ok());
            if let Some(v) = val {
                out.push((name, v));
            }
        }
        rest = &rest[name_start + name_len..];
    }
    out
}

/// One workload that fell below the regression floor.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Workload name.
    pub name: String,
    /// Fresh measurement.
    pub measured: f64,
    /// Reference speedup from the committed trajectory (the lower
    /// median of the last same-tier records — see
    /// [`reference_run_speedups`]).
    pub recorded: f64,
    /// `recorded × threshold` — the floor the measurement missed.
    pub floor: f64,
}

impl Regression {
    /// How far below the recorded speedup the measurement landed, in
    /// percent (e.g. `38.0` = "down 38%").
    pub fn shortfall_percent(&self) -> f64 {
        (1.0 - self.measured / self.recorded) * 100.0
    }
}

/// Result of gating a fresh report against a committed trajectory.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CheckOutcome {
    /// Workloads measured below `threshold ×` their recorded speedup —
    /// CI fails if this is non-empty.
    pub regressions: Vec<Regression>,
    /// Spawn-overhead workloads (see [`SPAWN_OVERHEAD_WORKLOADS`])
    /// measured below the floor: reported distinctly, never fail the
    /// gate — their ratio is documented scale-out overhead whose
    /// single-core value swings with host load, not a kernel
    /// regression.
    pub advisory: Vec<Regression>,
    /// Workloads passing the gate, as `(name, measured, recorded)`.
    pub passed: Vec<(String, f64, f64)>,
    /// Workloads measured this run with **no prior trajectory entry**:
    /// recorded into the trajectory but not gated on their first run.
    pub new_workloads: Vec<String>,
    /// Workloads recorded in the trajectory but not measured this run.
    pub skipped: Vec<String>,
}

impl CheckOutcome {
    /// Whether the gate passes (no regressions).
    pub fn is_ok(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Gates `report` against the committed trajectory's reference run for
/// `tier` (see [`reference_run_speedups`]): a workload regresses when
/// its fresh speedup falls below `threshold ×` the recorded one.
/// Workloads without a prior trajectory entry are collected in
/// [`CheckOutcome::new_workloads`] — recorded, never gated on their
/// first run — so adding a benchmark (or measuring a tier for the
/// first time) can't fail CI by construction. Spawn-overhead workloads
/// below the floor land in [`CheckOutcome::advisory`] instead of
/// [`CheckOutcome::regressions`], so they are surfaced but never fail
/// the gate.
pub fn check_report(
    report: &KernelsReport,
    committed: &str,
    threshold: f64,
    tier: &str,
) -> CheckOutcome {
    let recorded = reference_run_speedups(committed, tier);
    let mut outcome = CheckOutcome::default();
    for (name, recorded_speedup) in &recorded {
        let Some(measured) = report
            .comparisons
            .iter()
            .find(|c| &c.name == name)
            .map(|c| c.speedup())
        else {
            outcome.skipped.push(name.clone());
            continue;
        };
        let floor = recorded_speedup * threshold;
        if measured < floor {
            let shortfall = Regression {
                name: name.clone(),
                measured,
                recorded: *recorded_speedup,
                floor,
            };
            if is_spawn_overhead(name) {
                outcome.advisory.push(shortfall);
            } else {
                outcome.regressions.push(shortfall);
            }
        } else {
            outcome
                .passed
                .push((name.clone(), measured, *recorded_speedup));
        }
    }
    for c in &report.comparisons {
        if !recorded.iter().any(|(name, _)| name == &c.name) {
            outcome.new_workloads.push(c.name.clone());
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_all_comparisons() {
        // Tiny budget: correctness of the plumbing, not timing quality.
        let r = run(1);
        // The sharded workload rides along only when the worker binary
        // has been built (cargo test builds it for this package's
        // integration tests, but a filtered build may not have).
        let expect_sharded = shard_worker_path().is_some();
        assert_eq!(r.comparisons.len(), if expect_sharded { 18 } else { 13 });
        for c in &r.comparisons {
            assert!(c.baseline_ns > 0.0 && c.optimized_ns > 0.0, "{c:?}");
        }
        let json = render_run(&r, "test", "scalar");
        assert!(json.contains("optical_evaluate_order2_16384"));
        assert!(json.contains("optical_evaluate_order2_16384_fused"));
        assert!(json.contains("sng_lanes8_xoshiro_16384"));
        assert!(json.contains("sng_lanes8_splitmix_16384"));
        assert!(json.contains("sng_lanes8_counter_16384"));
        assert!(json.contains("parallel_lanes_order2_16384"));
        assert!(json.contains("gamma_64x64_order6"));
        assert!(json.contains("gamma_64x64_order6_fused"));
        assert!(json.contains("fault_rate_sweep_order6"));
        assert!(json.contains("fold_avx512_order6"));
        for pool_workload in [
            "gamma_64x64_order6_sharded",
            "gamma_64x64_order6_pooled",
            "pool_small_requests_1024",
            "service_soak",
            "design_sweep_order_grid",
        ] {
            assert_eq!(json.contains(pool_workload), expect_sharded, "{json}");
        }
        // The spawn-overhead flag rides on exactly the workloads the
        // constant names.
        assert_eq!(json.contains("\"amortized\": false"), expect_sharded);
    }

    #[test]
    fn spawn_overhead_shortfalls_are_advisory_not_regressions() {
        // A trajectory recording a spawn-overhead workload and a kernel
        // workload at 1.0x each.
        let committed = concat!(
            "{\n  \"runs\": [\n",
            "    {\"label\": \"pr5\", \"tier\": \"scalar\", \"benchmarks\": [\n",
            "      {\"name\": \"gamma_64x64_order6_sharded\", \"baseline_ns\": 100.0, ",
            "\"optimized_ns\": 100.0, \"speedup\": 1.000, \"amortized\": false},\n",
            "      {\"name\": \"sng_xoshiro_16384\", \"baseline_ns\": 100.0, ",
            "\"optimized_ns\": 100.0, \"speedup\": 1.000}\n",
            "    ]}\n  ]\n}\n"
        );
        // The flagged field is transparent to the speedup parser.
        assert_eq!(
            reference_run_speedups(committed, "scalar"),
            vec![
                ("gamma_64x64_order6_sharded".to_string(), 1.0),
                ("sng_xoshiro_16384".to_string(), 1.0),
            ]
        );
        // Both workloads measured well below the 0.8 floor: only the
        // kernel one fails the gate; the spawn-overhead one is surfaced
        // as advisory.
        let report = KernelsReport {
            comparisons: vec![
                KernelComparison {
                    name: "gamma_64x64_order6_sharded".into(),
                    baseline_ns: 100.0,
                    optimized_ns: 200.0,
                },
                KernelComparison {
                    name: "sng_xoshiro_16384".into(),
                    baseline_ns: 100.0,
                    optimized_ns: 200.0,
                },
            ],
        };
        let outcome = check_report(&report, committed, 0.8, "scalar");
        assert_eq!(outcome.regressions.len(), 1);
        assert_eq!(outcome.regressions[0].name, "sng_xoshiro_16384");
        assert_eq!(outcome.advisory.len(), 1);
        assert_eq!(outcome.advisory[0].name, "gamma_64x64_order6_sharded");
        assert!(!outcome.is_ok());
        // With the kernel workload healthy, the advisory shortfall alone
        // does not fail the gate.
        let report_ok = KernelsReport {
            comparisons: vec![
                KernelComparison {
                    name: "gamma_64x64_order6_sharded".into(),
                    baseline_ns: 100.0,
                    optimized_ns: 200.0,
                },
                KernelComparison {
                    name: "sng_xoshiro_16384".into(),
                    baseline_ns: 100.0,
                    optimized_ns: 100.0,
                },
            ],
        };
        let outcome_ok = check_report(&report_ok, committed, 0.8, "scalar");
        assert!(outcome_ok.is_ok(), "{outcome_ok:?}");
        assert_eq!(outcome_ok.advisory.len(), 1);
        assert!(is_spawn_overhead("gamma_64x64_order6_sharded"));
        assert!(!is_spawn_overhead("gamma_64x64_order6_pooled"));
    }

    #[test]
    fn hostile_labels_cannot_corrupt_the_trajectory() {
        // Regression: `--label` text used to be spliced verbatim into the
        // hand-built JSON, so braces or quotes in a label broke the
        // brace-depth record splitter for every later append.
        let hostile = "evil{\"label\": \"fake\"}, \\ {{}}";
        let r1 = append_run(None, &render_run(&sample_report(), hostile, "scalar"));
        // The rendered label is sanitized but still recognizable.
        assert!(r1.contains("evil('label': 'fake'), / (())"), "{r1}");
        assert!(!r1.contains('\\'), "{r1}");
        // The trajectory still parses: one record, both workloads.
        assert_eq!(r1.matches("\"label\"").count(), 1, "{r1}");
        assert_eq!(last_run_speedups(&r1).len(), 2);
        // And a second (clean) append still extends it instead of
        // starting over or splitting the hostile record in two.
        let mut faster = sample_report();
        faster.comparisons[0].optimized_ns = 10.0;
        let r2 = append_run(Some(&r1), &render_run(&faster, "pr5", "scalar"));
        assert_eq!(r2.matches("\"label\"").count(), 2, "{r2}");
        let speedups = last_run_speedups(&r2);
        assert_eq!(speedups.len(), 2);
        assert!((speedups[0].1 - 10.0).abs() < 1e-9, "{speedups:?}");
        // Control characters (a newline would also break the one-record-
        // per-line shape) are flattened.
        assert_eq!(sanitize_label("a\nb\tc"), "a_b_c");
        assert_eq!(sanitize_label("pr4-sharding"), "pr4-sharding");
    }

    fn sample_report() -> KernelsReport {
        KernelsReport {
            comparisons: vec![
                KernelComparison {
                    name: "alpha".into(),
                    baseline_ns: 100.0,
                    optimized_ns: 25.0,
                },
                KernelComparison {
                    name: "beta".into(),
                    baseline_ns: 90.0,
                    optimized_ns: 30.0,
                },
            ],
        }
    }

    #[test]
    fn append_run_starts_fresh_trajectory() {
        let record = render_run(&sample_report(), "pr2", "scalar");
        let out = append_run(None, &record);
        assert!(out.starts_with("{\n  \"runs\": ["));
        let speedups = last_run_speedups(&out);
        assert_eq!(speedups.len(), 2);
        assert_eq!(speedups[0].0, "alpha");
        assert!((speedups[0].1 - 4.0).abs() < 1e-9);
        assert!((speedups[1].1 - 3.0).abs() < 1e-9);
    }

    #[test]
    fn append_run_migrates_single_run_schema() {
        // The pre-trajectory file shape (one top-level benchmarks array)
        // becomes the first labelled record.
        let old = "{\n  \"benchmarks\": [\n    {\"name\": \"alpha\", \"baseline_ns\": 100.000, \"optimized_ns\": 50.000, \"speedup\": 2.000}\n  ]\n}\n";
        let record = render_run(&sample_report(), "pr2", "scalar");
        let out = append_run(Some(old), &record);
        assert!(out.contains("\"label\": \"pr1\""), "{out}");
        assert!(out.contains("\"label\": \"pr2\""));
        // The last run governs the regression gate.
        let speedups = last_run_speedups(&out);
        assert_eq!(speedups.len(), 2);
        assert!((speedups[0].1 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn append_run_extends_trajectory() {
        let r1 = append_run(None, &render_run(&sample_report(), "pr2", "scalar"));
        let mut faster = sample_report();
        faster.comparisons[0].optimized_ns = 10.0;
        let r2 = append_run(Some(&r1), &render_run(&faster, "pr3", "scalar"));
        assert_eq!(r2.matches("\"label\"").count(), 2);
        let speedups = last_run_speedups(&r2);
        assert!((speedups[0].1 - 10.0).abs() < 1e-9, "{speedups:?}");
        // Still valid for a third append.
        let r3 = append_run(Some(&r2), &render_run(&sample_report(), "pr4", "scalar"));
        assert_eq!(r3.matches("\"label\"").count(), 3);
        assert_eq!(last_run_speedups(&r3).len(), 2);
    }

    #[test]
    fn check_report_gates_only_known_workloads() {
        // Trajectory records alpha (4x) and beta (3x). A fresh run where
        // alpha regressed hard, beta holds, and a brand-new workload
        // appears must flag exactly alpha — the new workload is recorded
        // but not gated on its first run.
        let committed = append_run(None, &render_run(&sample_report(), "pr2", "scalar"));
        let fresh = KernelsReport {
            comparisons: vec![
                KernelComparison {
                    name: "alpha".into(),
                    baseline_ns: 100.0,
                    optimized_ns: 50.0, // 2.0x vs recorded 4.0x
                },
                KernelComparison {
                    name: "beta".into(),
                    baseline_ns: 90.0,
                    optimized_ns: 30.0, // 3.0x, holds
                },
                KernelComparison {
                    name: "brand_new".into(),
                    baseline_ns: 10.0,
                    optimized_ns: 10.0,
                },
            ],
        };
        let outcome = check_report(&fresh, &committed, 0.8, "scalar");
        assert!(!outcome.is_ok());
        assert_eq!(outcome.regressions.len(), 1);
        let reg = &outcome.regressions[0];
        assert_eq!(reg.name, "alpha");
        assert!((reg.measured - 2.0).abs() < 1e-9);
        assert!((reg.recorded - 4.0).abs() < 1e-9);
        assert!((reg.floor - 3.2).abs() < 1e-9);
        assert!((reg.shortfall_percent() - 50.0).abs() < 1e-9);
        assert_eq!(outcome.new_workloads, vec!["brand_new".to_string()]);
        assert_eq!(outcome.passed.len(), 1);
        assert_eq!(outcome.passed[0].0, "beta");
        assert!(outcome.skipped.is_empty());
    }

    #[test]
    fn check_report_passes_at_the_floor_and_skips_unmeasured() {
        let committed = append_run(None, &render_run(&sample_report(), "pr2", "scalar"));
        // Exactly the floor (4.0 × 0.8 = 3.2) passes; beta unmeasured.
        let fresh = KernelsReport {
            comparisons: vec![KernelComparison {
                name: "alpha".into(),
                baseline_ns: 320.0,
                optimized_ns: 100.0,
            }],
        };
        let outcome = check_report(&fresh, &committed, 0.8, "scalar");
        assert!(outcome.is_ok(), "{outcome:?}");
        assert_eq!(outcome.skipped, vec!["beta".to_string()]);
        assert!(outcome.new_workloads.is_empty());
    }

    #[test]
    fn check_report_compares_like_tier_against_like_tier() {
        // Trajectory: an untagged legacy run (pr1 era), then an avx512
        // run, then a scalar run where alpha is much slower (by design
        // — it is a vectorized workload).
        let legacy = "{\n  \"benchmarks\": [\n    {\"name\": \"alpha\", \"baseline_ns\": 100.000, \"optimized_ns\": 50.000, \"speedup\": 2.000}\n  ]\n}\n";
        let mut scalar_report = sample_report();
        scalar_report.comparisons[0].optimized_ns = 100.0; // alpha 1.0x scalar
        let t1 = append_run(Some(legacy), &render_run(&sample_report(), "pr5", "avx512"));
        let t2 = append_run(Some(&t1), &render_run(&scalar_report, "pr5", "scalar"));

        // A fresh scalar run at scalar speeds passes the scalar gate —
        // and would have failed against the avx512 record (1.0 < 0.8 ×
        // 4.0).
        let outcome = check_report(&scalar_report, &t2, 0.8, "scalar");
        assert!(outcome.is_ok(), "{outcome:?}");
        let avx_judged = check_report(&scalar_report, &t2, 0.8, "avx512");
        assert!(!avx_judged.is_ok(), "cross-tier floors must differ");

        // An avx512 run is judged against the avx512 record even though
        // the scalar record is more recent.
        let outcome = check_report(&sample_report(), &t2, 0.8, "avx512");
        assert!(outcome.is_ok(), "{outcome:?}");

        // A tier with no record falls back to the legacy untagged run
        // when one exists...
        let reference = reference_run_speedups(&t2, "avx2");
        assert_eq!(reference, reference_run_speedups(legacy, "avx2"));
        // ...and gates nothing when every record is tier-tagged.
        let tagged_only = append_run(None, &render_run(&sample_report(), "pr5", "avx512"));
        assert!(reference_run_speedups(&tagged_only, "avx2").is_empty());
        let outcome = check_report(&sample_report(), &tagged_only, 0.8, "avx2");
        assert!(outcome.is_ok());
        assert!(outcome.passed.is_empty());
        assert_eq!(outcome.new_workloads.len(), 2);
    }

    #[test]
    fn reference_is_the_lower_median_of_the_last_three_same_tier_records() {
        // Four scalar records for alpha: 4.0 (ancient, outside the
        // window), then 3.0, 9.0 (an outlier — e.g. a spawn-baseline
        // workload measured on a slow-spawn day), 3.1. The reference
        // must be the median of the last three (3.1), not the outlier
        // and not the stale 4.0.
        let rec = |speedup: f64| {
            let report = KernelsReport {
                comparisons: vec![KernelComparison {
                    name: "alpha".into(),
                    baseline_ns: 100.0 * speedup,
                    optimized_ns: 100.0,
                }],
            };
            render_run(&report, "pr", "scalar")
        };
        let mut committed = append_run(None, &rec(4.0));
        for s in [3.0, 9.0, 3.1] {
            committed = append_run(Some(&committed), &rec(s));
        }
        assert_eq!(
            reference_run_speedups(&committed, "scalar"),
            vec![("alpha".to_string(), 3.1)]
        );

        // A fresh in-family measurement (2.9x) passes the damped floor
        // (3.1 × 0.8 = 2.48) where the single-record gate would have
        // demanded 9.0 × 0.8 = 7.2 forever...
        let fresh = KernelsReport {
            comparisons: vec![KernelComparison {
                name: "alpha".into(),
                baseline_ns: 290.0,
                optimized_ns: 100.0,
            }],
        };
        assert!(check_report(&fresh, &committed, 0.8, "scalar").is_ok());
        // ...while a real regression still trips it.
        let regressed = KernelsReport {
            comparisons: vec![KernelComparison {
                name: "alpha".into(),
                baseline_ns: 150.0,
                optimized_ns: 100.0,
            }],
        };
        let outcome = check_report(&regressed, &committed, 0.8, "scalar");
        assert_eq!(outcome.regressions.len(), 1);
        assert!((outcome.regressions[0].recorded - 3.1).abs() < 1e-9);

        // An even window takes the lower middle — conservative for a
        // two-record trajectory where one of the two may be the outlier.
        let two = append_run(Some(&append_run(None, &rec(18.0))), &rec(27.0));
        assert_eq!(
            reference_run_speedups(&two, "scalar"),
            vec![("alpha".to_string(), 18.0)]
        );

        // Workloads absent from the most recent record are not gated,
        // even when older window records still carry them.
        let mut dropped = append_run(None, &rec(3.0));
        let beta_only = KernelsReport {
            comparisons: vec![KernelComparison {
                name: "beta".into(),
                baseline_ns: 200.0,
                optimized_ns: 100.0,
            }],
        };
        dropped = append_run(Some(&dropped), &render_run(&beta_only, "pr", "scalar"));
        assert_eq!(
            reference_run_speedups(&dropped, "scalar"),
            vec![("beta".to_string(), 2.0)]
        );
    }

    #[test]
    fn check_report_with_empty_trajectory_gates_nothing() {
        let outcome = check_report(&sample_report(), "not json at all", 0.8, "scalar");
        assert!(outcome.is_ok());
        assert_eq!(outcome.new_workloads.len(), 2);
        assert!(outcome.passed.is_empty());
    }

    #[test]
    fn unrecognized_trajectory_contents_start_fresh() {
        let out = append_run(
            Some("not json at all"),
            &render_run(&sample_report(), "x", "scalar"),
        );
        assert_eq!(out.matches("\"label\"").count(), 1);
        assert_eq!(last_run_speedups("garbage"), Vec::new());
    }
}
