//! EXP-K: word-parallel kernel speedups, pinned before/after.
//!
//! Measures the seed per-bit implementations (kept as `*_bitwise` /
//! `*_reference` twins) against the word-parallel fast paths shipped by
//! the packed-`u64` rewrite, on the workloads the acceptance criteria
//! name: the order-2 Fig. 5 circuit at 16384-bit streams and a
//! 64×64-pixel gamma-correction image. The `bench_kernels` binary emits
//! the report as `BENCH_kernels.json` so the perf trajectory is tracked
//! from this change onward.

use crate::microbench::Harness;
use osc_core::batch::BatchEvaluator;
use osc_core::params::CircuitParams;
use osc_core::system::OpticalScSystem;
use osc_math::rng::Xoshiro256PlusPlus;
use osc_stochastic::bernstein::BernsteinPoly;
use osc_stochastic::resc::ReScUnit;
use osc_stochastic::sng::{StochasticNumberGenerator, XoshiroSng};
use osc_units::Nanometers;
use std::time::Duration;

/// One before/after pair.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelComparison {
    /// Workload name.
    pub name: String,
    /// Seed per-bit path, median ns per iteration.
    pub baseline_ns: f64,
    /// Word-parallel path, median ns per iteration.
    pub optimized_ns: f64,
}

impl KernelComparison {
    /// Baseline over optimized.
    pub fn speedup(&self) -> f64 {
        self.baseline_ns / self.optimized_ns
    }
}

/// EXP-K report.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelsReport {
    /// All measured pairs.
    pub comparisons: Vec<KernelComparison>,
}

fn compare(
    harness: &mut Harness,
    name: &str,
    baseline: impl FnMut() -> f64,
    optimized: impl FnMut() -> f64,
) -> KernelComparison {
    let mut baseline = baseline;
    let mut optimized = optimized;
    let b = harness
        .bench_function(&format!("{name}/per_bit_baseline"), |ben| {
            ben.iter(&mut baseline)
        })
        .expect("unfiltered harness");
    let o = harness
        .bench_function(&format!("{name}/word_parallel"), |ben| {
            ben.iter(&mut optimized)
        })
        .expect("unfiltered harness");
    KernelComparison {
        name: name.to_string(),
        baseline_ns: b.median_ns,
        optimized_ns: o.median_ns,
    }
}

/// Runs every kernel comparison with the given per-measurement budget.
///
/// # Panics
///
/// Panics if the shipped circuit configurations fail to build (library
/// invariant).
pub fn run(budget_ms: u64) -> KernelsReport {
    let mut harness = Harness::with_budget("kernels", Duration::from_millis(budget_ms));
    let mut comparisons = Vec::new();

    // SNG stream generation, 16384 bits.
    let mut sng_b = XoshiroSng::new(7);
    let mut sng_o = XoshiroSng::new(7);
    comparisons.push(compare(
        &mut harness,
        "sng_xoshiro_16384",
        move || sng_b.generate_bitwise(0.37, 16_384).unwrap().value(),
        move || sng_o.generate(0.37, 16_384).unwrap().value(),
    ));

    // Electronic ReSC datapath (adder + mux), degree 3, 16384 bits.
    let unit = ReScUnit::new(BernsteinPoly::paper_f1());
    let mut gen = XoshiroSng::new(5);
    let (data, coeffs) = unit.generate_streams(0.5, 16_384, &mut gen).unwrap();
    let unit_b = unit.clone();
    let (data_b, coeffs_b) = (data.clone(), coeffs.clone());
    comparisons.push(compare(
        &mut harness,
        "resc_mux_16384",
        move || {
            unit_b
                .run_streams_bitwise(&data_b, &coeffs_b)
                .unwrap()
                .value()
        },
        move || unit.run_streams(&data, &coeffs).unwrap().value(),
    ));

    // The acceptance workload: order-2 Fig. 5 circuit, 16384-bit streams.
    let system = OpticalScSystem::new(
        CircuitParams::paper_fig5(),
        BernsteinPoly::new(vec![0.25, 0.625, 0.75]).unwrap(),
    )
    .expect("fig5 circuit builds");
    let system_b = system.clone();
    let mut sng_b = XoshiroSng::new(11);
    let mut rng_b = Xoshiro256PlusPlus::new(12);
    let mut sng_o = XoshiroSng::new(11);
    let mut rng_o = Xoshiro256PlusPlus::new(12);
    comparisons.push(compare(
        &mut harness,
        "optical_evaluate_order2_16384",
        move || {
            system_b
                .evaluate_reference(0.5, 16_384, &mut sng_b, &mut rng_b)
                .unwrap()
                .estimate
        },
        move || {
            system
                .evaluate(0.5, 16_384, &mut sng_o, &mut rng_o)
                .unwrap()
                .estimate
        },
    ));

    // The acceptance workload: 64×64-pixel gamma correction on the
    // 6th-order optical circuit.
    let poly = osc_apps::gamma_app::paper_gamma_polynomial().expect("gamma fit");
    let image = osc_apps::image::Image::blobs(64, 64);
    let stream = 512usize;
    let params = CircuitParams::paper_fig7(6, Nanometers::new(0.165));
    let gamma_system =
        OpticalScSystem::new(params, poly.clone()).expect("6th-order circuit builds");
    let image_b = image.clone();
    let mut sng_b = XoshiroSng::new(13);
    let mut rng_b = Xoshiro256PlusPlus::new(14);
    let backend = osc_apps::backend::OpticalBackend::new(params, poly, stream, 13)
        .expect("6th-order circuit builds");
    let evaluator = BatchEvaluator::new();
    comparisons.push(compare(
        &mut harness,
        "gamma_64x64_order6",
        move || {
            // Seed path: sequential per-pixel loop over the frozen
            // per-bit implementation.
            let mut acc = 0.0;
            for &p in image_b.pixels() {
                acc += gamma_system
                    .evaluate_reference(p, stream, &mut sng_b, &mut rng_b)
                    .unwrap()
                    .estimate;
            }
            acc
        },
        move || {
            // Ported pipeline: word-parallel kernel fanned across the
            // batch evaluator's workers.
            osc_apps::gamma_app::apply_backend_par(&image, &backend, &evaluator)
                .unwrap()
                .pixels()
                .iter()
                .sum()
        },
    ));

    harness.finish();
    KernelsReport { comparisons }
}

/// Prints EXP-K.
pub fn print(report: &KernelsReport) {
    println!("EXP-K  word-parallel kernel speedups (per-bit seed path vs packed-u64 path)");
    let rows: Vec<Vec<String>> = report
        .comparisons
        .iter()
        .map(|c| {
            vec![
                c.name.clone(),
                format!("{:.0}", c.baseline_ns),
                format!("{:.0}", c.optimized_ns),
                format!("{:.2}x", c.speedup()),
            ]
        })
        .collect();
    crate::print_table(&["kernel", "per-bit ns", "word ns", "speedup"], &rows);
}

/// Renders the report as JSON (`BENCH_kernels.json` schema).
pub fn to_json(report: &KernelsReport) -> String {
    let mut out = String::from("{\n  \"benchmarks\": [\n");
    for (i, c) in report.comparisons.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"baseline_ns\": {:.3}, \"optimized_ns\": {:.3}, \"speedup\": {:.3}}}{}\n",
            c.name,
            c.baseline_ns,
            c.optimized_ns,
            c.speedup(),
            if i + 1 < report.comparisons.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_all_comparisons() {
        // Tiny budget: correctness of the plumbing, not timing quality.
        let r = run(1);
        assert_eq!(r.comparisons.len(), 4);
        for c in &r.comparisons {
            assert!(c.baseline_ns > 0.0 && c.optimized_ns > 0.0, "{c:?}");
        }
        let json = to_json(&r);
        assert!(json.contains("optical_evaluate_order2_16384"));
        assert!(json.contains("gamma_64x64_order6"));
    }
}
