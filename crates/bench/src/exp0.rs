//! EXP-0: the Section V.A in-text design point.
//!
//! Paper quantities: total transmissions 0.091 / 0.004 / 0.0002 (case A),
//! 0.476 (case B), received powers 0.0952 / 0.482 mW at 1 mW probes,
//! minimum pump power 591.8 mW, required extinction ratio 13.22 dB.

use osc_core::calibration::{predict, Fig5Targets};
use osc_core::design::mrr_first::{MrrFirstDesign, MrrFirstInputs};
use osc_core::params::CircuitParams;

/// Paper-vs-measured record for the Section V.A design point.
#[derive(Debug, Clone, PartialEq)]
pub struct Exp0Report {
    /// Model predictions at the two Fig. 5 operating cases.
    pub predictions: Fig5Targets,
    /// The paper's quoted values.
    pub paper: Fig5Targets,
    /// Minimum pump power from the MRR-first method, mW.
    pub min_pump_mw: f64,
    /// Required extinction ratio, dB.
    pub required_er_db: f64,
}

/// Runs the experiment.
///
/// # Panics
///
/// Panics only if the shipped calibrated parameters fail to build a
/// circuit (library invariant).
pub fn run() -> Exp0Report {
    let predictions = predict(&CircuitParams::paper_fig5()).expect("calibrated params build");
    let design =
        MrrFirstDesign::solve(&MrrFirstInputs::paper_section_va()).expect("paper design point");
    Exp0Report {
        predictions,
        paper: Fig5Targets::paper(),
        min_pump_mw: design.min_pump_power.as_mw(),
        required_er_db: design.required_er.as_db(),
    }
}

/// Prints the paper-vs-measured comparison.
pub fn print(report: &Exp0Report) {
    println!("EXP-0  Section V.A design point (2nd-order, MRR-first)");
    let p = &report.predictions;
    let t = &report.paper;
    println!(
        "{}",
        crate::compare_line(
            "T(λ2) case A (z=010, x=11)",
            t.t_lambda2_case_a,
            p.t_lambda2_case_a,
            ""
        )
    );
    println!(
        "{}",
        crate::compare_line("T(λ1) case A", t.t_lambda1_case_a, p.t_lambda1_case_a, "")
    );
    println!(
        "{}",
        crate::compare_line("T(λ0) case A", t.t_lambda0_case_a, p.t_lambda0_case_a, "")
    );
    println!(
        "{}",
        crate::compare_line(
            "T(λ0) case B (z=110, x=00)",
            t.t_lambda0_case_b,
            p.t_lambda0_case_b,
            ""
        )
    );
    println!(
        "{}",
        crate::compare_line(
            "received case A",
            t.received_case_a_mw,
            p.received_case_a_mw,
            "mW"
        )
    );
    println!(
        "{}",
        crate::compare_line(
            "received case B",
            t.received_case_b_mw,
            p.received_case_b_mw,
            "mW"
        )
    );
    println!(
        "{}",
        crate::compare_line("minimum pump power", 591.8, report.min_pump_mw, "mW")
    );
    println!(
        "{}",
        crate::compare_line(
            "required extinction ratio",
            13.22,
            report.required_er_db,
            "dB"
        )
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_matches_paper_within_tolerance() {
        let r = run();
        assert!((r.min_pump_mw - 591.8).abs() < 0.2);
        assert!((r.required_er_db - 13.22).abs() < 0.01);
        let rel = |a: f64, b: f64| (a - b).abs() / b;
        assert!(rel(r.predictions.t_lambda2_case_a, r.paper.t_lambda2_case_a) < 0.1);
        assert!(rel(r.predictions.received_case_b_mw, r.paper.received_case_b_mw) < 0.05);
    }
}
