//! Benches for the Fig. 6 studies: the MZI-first design method, the
//! (IL, ER) grid sweep and the BER sweep.

use osc_bench::microbench::Harness;
use osc_core::design::mzi_first::{MziFirstDesign, MziFirstInputs};
use osc_core::design::space::{fig6a_grid, fig6b_ber_sweep};
use osc_units::DbRatio;
use std::hint::black_box;

fn bench_mzi_first(c: &mut Harness) {
    let inputs = MziFirstInputs::paper_fig6(DbRatio::from_db(6.5), DbRatio::from_db(7.5));
    c.bench_function("fig6/mzi_first_solve_xiao", |b| {
        b.iter(|| MziFirstDesign::solve(black_box(&inputs)).unwrap())
    });
}

fn bench_grid(c: &mut Harness) {
    let il = osc_math::linspace(3.0, 7.4, 4);
    let er = osc_math::linspace(4.0, 7.6, 4);
    for threads in [1usize, 4] {
        let name = format!("fig6/grid_4x4/{threads}");
        c.bench_function(&name, |b| b.iter(|| fig6a_grid(&il, &er, 1e-6, threads)));
    }
}

fn bench_ber_sweep(c: &mut Harness) {
    c.bench_function("fig6/ber_sweep_3pts", |b| {
        b.iter(|| {
            fig6b_ber_sweep(
                DbRatio::from_db(6.5),
                DbRatio::from_db(7.5),
                black_box(&[1e-2, 1e-4, 1e-6]),
            )
            .unwrap()
        })
    });
}

fn main() {
    let mut c = Harness::from_env("fig6_design_methods");
    bench_mzi_first(&mut c);
    bench_grid(&mut c);
    bench_ber_sweep(&mut c);
    c.finish();
}
