//! Benches for the Fig. 5 / Section V.A design point: the MRR-first
//! design method, the exhaustive power table and the raw transmission
//! model.

use osc_bench::microbench::Harness;
use osc_core::architecture::OpticalScCircuit;
use osc_core::design::mrr_first::{MrrFirstDesign, MrrFirstInputs};
use osc_core::params::CircuitParams;
use osc_core::transmission::TransmissionModel;
use osc_units::Milliwatts;
use std::hint::black_box;

fn bench_mrr_first(c: &mut Harness) {
    let inputs = MrrFirstInputs::paper_section_va();
    c.bench_function("fig5/mrr_first_solve", |b| {
        b.iter(|| MrrFirstDesign::solve(black_box(&inputs)).unwrap())
    });
}

fn bench_power_table(c: &mut Harness) {
    let circuit = OpticalScCircuit::new(CircuitParams::paper_fig5()).unwrap();
    c.bench_function("fig5/power_level_table_32", |b| {
        b.iter(|| circuit.power_level_table().unwrap())
    });
}

fn bench_received_power(c: &mut Harness) {
    let model = TransmissionModel::new(&CircuitParams::paper_fig5()).unwrap();
    c.bench_function("fig5/received_power_single", |b| {
        b.iter(|| {
            model
                .received_power(
                    black_box(&[false, true, false]),
                    black_box(&[true, true]),
                    Milliwatts::new(1.0),
                )
                .unwrap()
        })
    });
}

fn bench_spectra(c: &mut Harness) {
    let model = TransmissionModel::new(&CircuitParams::paper_fig5()).unwrap();
    c.bench_function("fig5/spectra_121pts", |b| {
        b.iter(|| {
            model
                .spectra(&[false, true, false], &[true, true], black_box(121))
                .unwrap()
        })
    });
}

fn main() {
    let mut c = Harness::from_env("fig5_design_point");
    bench_mrr_first(&mut c);
    bench_power_table(&mut c);
    bench_received_power(&mut c);
    bench_spectra(&mut c);
    c.finish();
}
