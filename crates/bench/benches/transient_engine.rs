//! Benches for the transient simulator: full datapath runs and the eye
//! scan.

use osc_bench::microbench::Harness;
use osc_core::params::CircuitParams;
use osc_math::rng::Xoshiro256PlusPlus;
use osc_stochastic::bitstream::BitStream;
use osc_stochastic::sng::{StochasticNumberGenerator, XoshiroSng};
use osc_transient::engine::{TimingConfig, TransientSimulator};
use osc_transient::eye::{scan_offsets, ThresholdMode};
use osc_units::Milliwatts;

fn make_streams(len: usize) -> (Vec<BitStream>, Vec<BitStream>) {
    let mut sng = XoshiroSng::new(5);
    let data = (0..2).map(|_| sng.generate(0.5, len).unwrap()).collect();
    let coeffs = (0..3).map(|_| sng.generate(0.5, len).unwrap()).collect();
    (data, coeffs)
}

fn bench_transient_run(c: &mut Harness) {
    for pulsed in [true, false] {
        let timing = TimingConfig {
            pump_pulse_fwhm: pulsed.then_some(26e-12),
            samples_per_bit: 32,
            ..TimingConfig::default()
        };
        let sim = TransientSimulator::new(CircuitParams::paper_fig5(), timing).unwrap();
        let (data, coeffs) = make_streams(32);
        let name = format!(
            "transient/run_32bits/{}",
            if pulsed { "pulsed" } else { "cw" }
        );
        c.bench_function(&name, |b| b.iter(|| sim.run(&data, &coeffs).unwrap()));
    }
}

fn bench_eye_scan(c: &mut Harness) {
    let sim =
        TransientSimulator::new(CircuitParams::paper_fig5(), TimingConfig::default()).unwrap();
    let (data, coeffs) = make_streams(32);
    let trace = sim.run(&data, &coeffs).unwrap();
    let mut rng = Xoshiro256PlusPlus::new(3);
    c.bench_function("transient/eye_scan_32offsets", |b| {
        b.iter(|| {
            scan_offsets(
                &trace,
                ThresholdMode::Trained,
                Milliwatts::ZERO,
                32,
                &mut rng,
            )
        })
    });
}

fn main() {
    let mut c = Harness::from_env("transient_engine");
    bench_transient_run(&mut c);
    bench_eye_scan(&mut c);
    c.finish();
}
