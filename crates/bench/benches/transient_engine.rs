//! Criterion benches for the transient simulator: full datapath runs and
//! the eye scan.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use osc_core::params::CircuitParams;
use osc_math::rng::Xoshiro256PlusPlus;
use osc_stochastic::bitstream::BitStream;
use osc_stochastic::sng::{StochasticNumberGenerator, XoshiroSng};
use osc_transient::engine::{TimingConfig, TransientSimulator};
use osc_transient::eye::{scan_offsets, ThresholdMode};
use osc_units::Milliwatts;

fn make_streams(len: usize) -> (Vec<BitStream>, Vec<BitStream>) {
    let mut sng = XoshiroSng::new(5);
    let data = (0..2).map(|_| sng.generate(0.5, len).unwrap()).collect();
    let coeffs = (0..3).map(|_| sng.generate(0.5, len).unwrap()).collect();
    (data, coeffs)
}

fn bench_transient_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("transient/run_32bits");
    for pulsed in [true, false] {
        let timing = TimingConfig {
            pump_pulse_fwhm: pulsed.then_some(26e-12),
            samples_per_bit: 32,
            ..TimingConfig::default()
        };
        let sim = TransientSimulator::new(CircuitParams::paper_fig5(), timing).unwrap();
        let (data, coeffs) = make_streams(32);
        group.bench_with_input(
            BenchmarkId::from_parameter(if pulsed { "pulsed" } else { "cw" }),
            &pulsed,
            |b, _| b.iter(|| sim.run(&data, &coeffs).unwrap()),
        );
    }
    group.finish();
}

fn bench_eye_scan(c: &mut Criterion) {
    let sim =
        TransientSimulator::new(CircuitParams::paper_fig5(), TimingConfig::default()).unwrap();
    let (data, coeffs) = make_streams(32);
    let trace = sim.run(&data, &coeffs).unwrap();
    c.bench_function("transient/eye_scan_32offsets", |b| {
        let mut rng = Xoshiro256PlusPlus::new(3);
        b.iter(|| {
            scan_offsets(
                &trace,
                ThresholdMode::Trained,
                Milliwatts::ZERO,
                32,
                &mut rng,
            )
        })
    });
}

criterion_group!(benches, bench_transient_run, bench_eye_scan);
criterion_main!(benches);
