//! Ablation benches for the design choices called out in DESIGN.md:
//! device profile (Fig. 5 vs dense-WDM), SNG choice inside the full
//! optical system, receiver threshold optimization, and order scaling of
//! the analytical model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use osc_core::architecture::OpticalScCircuit;
use osc_core::params::CircuitParams;
use osc_core::receiver::optimize_threshold;
use osc_core::snr::SnrModel;
use osc_core::system::OpticalScSystem;
use osc_math::rng::Xoshiro256PlusPlus;
use osc_stochastic::bernstein::BernsteinPoly;
use osc_stochastic::sng::{CounterSng, LfsrSng, XoshiroSng};
use osc_units::{Milliwatts, Nanometers};
use std::hint::black_box;

fn bench_profile_ablation(c: &mut Criterion) {
    // Same SNR analysis under the two calibrated device profiles.
    let mut group = c.benchmark_group("ablation/snr_by_profile");
    let fig5 = CircuitParams::paper_fig5();
    let dense = CircuitParams::paper_fig7(2, Nanometers::new(0.165));
    for (label, params) in [("fig5", fig5), ("dense", dense)] {
        let snr = SnrModel::new(&params).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(label), &label, |b, _| {
            b.iter(|| snr.worst_case_snr().unwrap())
        });
    }
    group.finish();
}

fn bench_sng_ablation(c: &mut Criterion) {
    // End-to-end optical evaluation cost under different randomizers.
    let poly = BernsteinPoly::new(vec![0.25, 0.625, 0.75]).unwrap();
    let system = OpticalScSystem::new(CircuitParams::paper_fig5(), poly).unwrap();
    let mut group = c.benchmark_group("ablation/optical_eval_by_sng");
    group.bench_function(BenchmarkId::from_parameter("lfsr"), |b| {
        let mut sng = LfsrSng::with_width(16, 0xACE1);
        let mut rng = Xoshiro256PlusPlus::new(1);
        b.iter(|| {
            system
                .evaluate(black_box(0.5), 2048, &mut sng, &mut rng)
                .unwrap()
        })
    });
    group.bench_function(BenchmarkId::from_parameter("counter"), |b| {
        let mut sng = CounterSng::new();
        let mut rng = Xoshiro256PlusPlus::new(1);
        b.iter(|| {
            system
                .evaluate(black_box(0.5), 2048, &mut sng, &mut rng)
                .unwrap()
        })
    });
    group.bench_function(BenchmarkId::from_parameter("xoshiro"), |b| {
        let mut sng = XoshiroSng::new(9);
        let mut rng = Xoshiro256PlusPlus::new(1);
        b.iter(|| {
            system
                .evaluate(black_box(0.5), 2048, &mut sng, &mut rng)
                .unwrap()
        })
    });
    group.finish();
}

fn bench_threshold_optimization(c: &mut Criterion) {
    let circuit = OpticalScCircuit::new(CircuitParams::paper_fig5()).unwrap();
    let bands = circuit.power_bands().unwrap();
    c.bench_function("ablation/threshold_optimize", |b| {
        b.iter(|| optimize_threshold(black_box(&bands), Milliwatts::new(0.02)))
    });
}

fn bench_order_scaling(c: &mut Criterion) {
    // Cost of the analytical SNR model as the circuit order grows.
    let mut group = c.benchmark_group("ablation/snr_by_order");
    for order in [2usize, 6, 12] {
        let params = CircuitParams::paper_fig7(order, Nanometers::new(0.2));
        let snr = SnrModel::new(&params).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(order), &order, |b, _| {
            b.iter(|| snr.worst_case_snr().unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_profile_ablation,
    bench_sng_ablation,
    bench_threshold_optimization,
    bench_order_scaling
);
criterion_main!(benches);
