//! Ablation benches for the design choices called out in DESIGN.md:
//! device profile (Fig. 5 vs dense-WDM), SNG choice inside the full
//! optical system, receiver threshold optimization, and order scaling of
//! the analytical model.

use osc_bench::microbench::Harness;
use osc_core::architecture::OpticalScCircuit;
use osc_core::params::CircuitParams;
use osc_core::receiver::optimize_threshold;
use osc_core::snr::SnrModel;
use osc_core::system::OpticalScSystem;
use osc_math::rng::Xoshiro256PlusPlus;
use osc_stochastic::bernstein::BernsteinPoly;
use osc_stochastic::sng::{CounterSng, LfsrSng, XoshiroSng};
use osc_units::{Milliwatts, Nanometers};
use std::hint::black_box;

fn bench_profile_ablation(c: &mut Harness) {
    // Same SNR analysis under the two calibrated device profiles.
    let fig5 = CircuitParams::paper_fig5();
    let dense = CircuitParams::paper_fig7(2, Nanometers::new(0.165));
    for (label, params) in [("fig5", fig5), ("dense", dense)] {
        let snr = SnrModel::new(&params).unwrap();
        let name = format!("ablation/snr_by_profile/{label}");
        c.bench_function(&name, |b| b.iter(|| snr.worst_case_snr().unwrap()));
    }
}

fn bench_sng_ablation(c: &mut Harness) {
    // End-to-end optical evaluation cost under different randomizers.
    let poly = BernsteinPoly::new(vec![0.25, 0.625, 0.75]).unwrap();
    let system = OpticalScSystem::new(CircuitParams::paper_fig5(), poly).unwrap();
    let mut sng = LfsrSng::new(16, 0xACE1).unwrap();
    let mut rng = Xoshiro256PlusPlus::new(1);
    c.bench_function("ablation/optical_eval_by_sng/lfsr", |b| {
        b.iter(|| {
            system
                .evaluate(black_box(0.5), 2048, &mut sng, &mut rng)
                .unwrap()
        })
    });
    let mut sng = CounterSng::new();
    let mut rng = Xoshiro256PlusPlus::new(1);
    c.bench_function("ablation/optical_eval_by_sng/counter", |b| {
        b.iter(|| {
            system
                .evaluate(black_box(0.5), 2048, &mut sng, &mut rng)
                .unwrap()
        })
    });
    let mut sng = XoshiroSng::new(9);
    let mut rng = Xoshiro256PlusPlus::new(1);
    c.bench_function("ablation/optical_eval_by_sng/xoshiro", |b| {
        b.iter(|| {
            system
                .evaluate(black_box(0.5), 2048, &mut sng, &mut rng)
                .unwrap()
        })
    });
    // The frozen per-bit implementation, for the before/after trend.
    let mut sng = XoshiroSng::new(9);
    let mut rng = Xoshiro256PlusPlus::new(1);
    c.bench_function("ablation/optical_eval_by_sng/xoshiro_reference", |b| {
        b.iter(|| {
            system
                .evaluate_reference(black_box(0.5), 2048, &mut sng, &mut rng)
                .unwrap()
        })
    });
}

fn bench_threshold_optimization(c: &mut Harness) {
    let circuit = OpticalScCircuit::new(CircuitParams::paper_fig5()).unwrap();
    let bands = circuit.power_bands().unwrap();
    c.bench_function("ablation/threshold_optimize", |b| {
        b.iter(|| optimize_threshold(black_box(&bands), Milliwatts::new(0.02)))
    });
}

fn bench_order_scaling(c: &mut Harness) {
    // Cost of the analytical SNR model as the circuit order grows.
    for order in [2usize, 6, 12] {
        let params = CircuitParams::paper_fig7(order, Nanometers::new(0.2));
        let snr = SnrModel::new(&params).unwrap();
        let name = format!("ablation/snr_by_order/{order}");
        c.bench_function(&name, |b| b.iter(|| snr.worst_case_snr().unwrap()));
    }
}

fn main() {
    let mut c = Harness::from_env("ablations");
    bench_profile_ablation(&mut c);
    bench_sng_ablation(&mut c);
    bench_threshold_optimization(&mut c);
    bench_order_scaling(&mut c);
    c.finish();
}
