//! Criterion benches for the stochastic computing substrate: SNG stream
//! generation, packed bit-stream logic and the electronic ReSC unit.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use osc_stochastic::bernstein::BernsteinPoly;
use osc_stochastic::bitstream::BitStream;
use osc_stochastic::resc::ReScUnit;
use osc_stochastic::sng::{CounterSng, LfsrSng, StochasticNumberGenerator, XoshiroSng};
use std::hint::black_box;

fn bench_sng_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("stochastic/sng_generate_16k");
    group.bench_function(BenchmarkId::from_parameter("lfsr"), |b| {
        let mut sng = LfsrSng::with_width(16, 0xACE1);
        b.iter(|| sng.generate(black_box(0.37), 16_384).unwrap())
    });
    group.bench_function(BenchmarkId::from_parameter("counter"), |b| {
        let mut sng = CounterSng::new();
        b.iter(|| sng.generate(black_box(0.37), 16_384).unwrap())
    });
    group.bench_function(BenchmarkId::from_parameter("xoshiro"), |b| {
        let mut sng = XoshiroSng::new(7);
        b.iter(|| sng.generate(black_box(0.37), 16_384).unwrap())
    });
    group.finish();
}

fn bench_bitstream_ops(c: &mut Criterion) {
    let a = BitStream::from_fn(1 << 20, |i| i % 3 == 0);
    let b_stream = BitStream::from_fn(1 << 20, |i| i % 5 == 0);
    c.bench_function("stochastic/and_1m_bits", |b| {
        b.iter(|| a.and(black_box(&b_stream)).unwrap())
    });
    c.bench_function("stochastic/count_ones_1m_bits", |b| {
        b.iter(|| black_box(&a).count_ones())
    });
}

fn bench_resc(c: &mut Criterion) {
    let unit = ReScUnit::new(BernsteinPoly::paper_f1());
    c.bench_function("stochastic/resc_evaluate_4k", |b| {
        let mut sng = XoshiroSng::new(42);
        b.iter(|| unit.evaluate(black_box(0.5), 4096, &mut sng))
    });
}

fn bench_bernstein_eval(c: &mut Criterion) {
    let poly = BernsteinPoly::new(vec![0.1, 0.4, 0.2, 0.8, 0.5, 0.9, 0.7]).unwrap();
    c.bench_function("stochastic/bernstein_eval_deg6", |b| {
        b.iter(|| poly.eval(black_box(0.42)))
    });
}

criterion_group!(
    benches,
    bench_sng_generation,
    bench_bitstream_ops,
    bench_resc,
    bench_bernstein_eval
);
criterion_main!(benches);
