//! Benches for the stochastic computing substrate: SNG stream generation
//! (word-parallel vs per-bit), packed bit-stream logic and the electronic
//! ReSC unit.

use osc_bench::microbench::Harness;
use osc_stochastic::bernstein::BernsteinPoly;
use osc_stochastic::bitstream::BitStream;
use osc_stochastic::resc::ReScUnit;
use osc_stochastic::sng::{CounterSng, LfsrSng, StochasticNumberGenerator, XoshiroSng};
use std::hint::black_box;

fn bench_sng_generation(c: &mut Harness) {
    let mut sng = LfsrSng::new(16, 0xACE1).unwrap();
    c.bench_function("stochastic/sng_generate_16k/lfsr", |b| {
        b.iter(|| sng.generate(black_box(0.37), 16_384).unwrap())
    });
    let mut sng = CounterSng::new();
    c.bench_function("stochastic/sng_generate_16k/counter", |b| {
        b.iter(|| sng.generate(black_box(0.37), 16_384).unwrap())
    });
    let mut sng = XoshiroSng::new(7);
    c.bench_function("stochastic/sng_generate_16k/xoshiro", |b| {
        b.iter(|| sng.generate(black_box(0.37), 16_384).unwrap())
    });
    // The per-bit reference path, for the word-parallel before/after.
    let mut sng = XoshiroSng::new(7);
    c.bench_function("stochastic/sng_generate_16k/xoshiro_bitwise", |b| {
        b.iter(|| sng.generate_bitwise(black_box(0.37), 16_384).unwrap())
    });
}

fn bench_bitstream_ops(c: &mut Harness) {
    let a = BitStream::from_fn(1 << 20, |i| i % 3 == 0);
    let b_stream = BitStream::from_fn(1 << 20, |i| i % 5 == 0);
    c.bench_function("stochastic/and_1m_bits", |b| {
        b.iter(|| a.and(black_box(&b_stream)).unwrap())
    });
    c.bench_function("stochastic/count_ones_1m_bits", |b| {
        b.iter(|| black_box(&a).count_ones())
    });
}

fn bench_resc(c: &mut Harness) {
    let unit = ReScUnit::new(BernsteinPoly::paper_f1());
    let mut sng = XoshiroSng::new(42);
    c.bench_function("stochastic/resc_evaluate_4k", |b| {
        b.iter(|| unit.evaluate(black_box(0.5), 4096, &mut sng))
    });
}

fn bench_bernstein_eval(c: &mut Harness) {
    let poly = BernsteinPoly::new(vec![0.1, 0.4, 0.2, 0.8, 0.5, 0.9, 0.7]).unwrap();
    c.bench_function("stochastic/bernstein_eval_deg6", |b| {
        b.iter(|| poly.eval(black_box(0.42)))
    });
}

fn main() {
    let mut c = Harness::from_env("stochastic_kernels");
    bench_sng_generation(&mut c);
    bench_bitstream_ops(&mut c);
    bench_resc(&mut c);
    bench_bernstein_eval(&mut c);
    c.finish();
}
