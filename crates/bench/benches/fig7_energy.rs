//! Criterion benches for the Fig. 7 energy model: per-point breakdown,
//! optimal-spacing search and the scalability study.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use osc_core::energy::{scaling_study, EnergyAssumptions, EnergyModel};
use osc_units::Nanometers;
use std::hint::black_box;

fn bench_breakdown(c: &mut Criterion) {
    let model = EnergyModel::new(2, EnergyAssumptions::default());
    c.bench_function("fig7/breakdown_single_point", |b| {
        b.iter(|| model.breakdown(black_box(Nanometers::new(0.165))).unwrap())
    });
}

fn bench_optimal_spacing(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7/optimal_spacing");
    group.sample_size(10); // each iteration runs a full golden-section search
    for order in [2usize, 6] {
        let model = EnergyModel::new(order, EnergyAssumptions::default());
        group.bench_with_input(BenchmarkId::from_parameter(order), &order, |b, _| {
            b.iter(|| model.optimal_spacing(0.1, 0.6).unwrap())
        });
    }
    group.finish();
}

fn bench_scaling_study(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7/scaling");
    group.sample_size(10); // three optimal-spacing searches per iteration
    group.bench_function("study_3orders", |b| {
        b.iter(|| scaling_study(&[2, 4, 8], EnergyAssumptions::default(), 0.1, 0.6).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_breakdown,
    bench_optimal_spacing,
    bench_scaling_study
);
criterion_main!(benches);
