//! Benches for the Fig. 7 energy model: per-point breakdown,
//! optimal-spacing search and the scalability study.

use osc_bench::microbench::Harness;
use osc_core::energy::{scaling_study, EnergyAssumptions, EnergyModel};
use osc_units::Nanometers;
use std::hint::black_box;

fn bench_breakdown(c: &mut Harness) {
    let model = EnergyModel::new(2, EnergyAssumptions::default());
    c.bench_function("fig7/breakdown_single_point", |b| {
        b.iter(|| model.breakdown(black_box(Nanometers::new(0.165))).unwrap())
    });
}

fn bench_optimal_spacing(c: &mut Harness) {
    for order in [2usize, 6] {
        let model = EnergyModel::new(order, EnergyAssumptions::default());
        let name = format!("fig7/optimal_spacing/{order}");
        c.bench_function(&name, |b| {
            b.iter(|| model.optimal_spacing(0.1, 0.6).unwrap())
        });
    }
}

fn bench_scaling_study(c: &mut Harness) {
    c.bench_function("fig7/scaling/study_3orders", |b| {
        b.iter(|| scaling_study(&[2, 4, 8], EnergyAssumptions::default(), 0.1, 0.6).unwrap())
    });
}

fn main() {
    let mut c = Harness::from_env("fig7_energy");
    bench_breakdown(&mut c);
    bench_optimal_spacing(&mut c);
    bench_scaling_study(&mut c);
    c.finish();
}
