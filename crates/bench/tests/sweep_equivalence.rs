//! Frontier determinism across serving modes: the canonical design-
//! sweep frontier CSV must be **byte-identical** whether candidates are
//! evaluated in-process, through a spawn-per-call coordinator, through
//! a persistent worker pool (well-sized or deliberately thrashing
//! circuit cache) or over the TCP service front door — for every
//! backend. This is the test half of the CI `design-sweep` job; the
//! job adds the forced-scalar vs detected-dispatch cross-check.
//!
//! This suite owns the worker binary via `CARGO_BIN_EXE_shard_worker`.

use osc_bench::sweep::{axes_for, frontier_csv, pareto_frontier, DesignSweep, SweepMode};
use osc_core::backend::BackendKind;
use osc_core::batch::shard::pool::PoolConfig;
use osc_core::batch::shard::service::{Service, ServiceClient};
use osc_core::batch::shard::ShardCoordinator;
use osc_core::batch::BatchEvaluator;

const WORKER: &str = env!("CARGO_BIN_EXE_shard_worker");

/// Evaluates `sweep` through every serving tier and returns the
/// frontier CSV of each, in-process first.
fn csvs_across_modes(sweep: &DesignSweep) -> Vec<(String, String)> {
    let mut out = Vec::new();

    let evaluator = BatchEvaluator::with_threads(2);
    let points = sweep.evaluate(SweepMode::InProcess(&evaluator)).unwrap();
    out.push((
        "in-process".to_string(),
        frontier_csv(&pareto_frontier(&points)),
    ));

    let coordinator = ShardCoordinator::new(WORKER, 2);
    let points = sweep.evaluate(SweepMode::Spawn(&coordinator)).unwrap();
    out.push(("spawn".to_string(), frontier_csv(&pareto_frontier(&points))));

    // A pool with the cache sized to the working set, and one whose
    // two-entry cache must thrash on every distinct circuit — cache
    // pressure may cost rebuilds, never bytes.
    for (label, cache) in [("pool-warm", sweep.designs().len()), ("pool-thrash", 2)] {
        let mut pool = PoolConfig::new(WORKER, 3)
            .with_circuit_cache_capacity(cache)
            .spawn()
            .unwrap();
        let points = sweep.evaluate(SweepMode::Pool(&mut pool)).unwrap();
        out.push((label.to_string(), frontier_csv(&pareto_frontier(&points))));
    }

    let dispatcher = PoolConfig::new(WORKER, 2).spawn_dispatcher().unwrap();
    let service = Service::bind(("127.0.0.1", 0), dispatcher).unwrap();
    let mut client = ServiceClient::connect(service.local_addr()).unwrap();
    let points = sweep.evaluate(SweepMode::Service(&mut client)).unwrap();
    out.push((
        "service".to_string(),
        frontier_csv(&pareto_frontier(&points)),
    ));
    drop(client);
    service.drain();

    out
}

#[test]
fn frontier_csv_is_byte_identical_across_serving_modes_per_backend() {
    for backend in BackendKind::ALL {
        let sweep = DesignSweep::new(axes_for(24, Some(backend), &[32, 64], 2, 11));
        assert!(
            !sweep.designs().is_empty(),
            "{backend}: no feasible designs"
        );
        let csvs = csvs_across_modes(&sweep);
        let (ref_mode, reference) = &csvs[0];
        assert!(reference.lines().count() > 1, "{backend}: empty frontier");
        for (mode, csv) in &csvs[1..] {
            assert_eq!(
                csv.as_bytes(),
                reference.as_bytes(),
                "{backend}: {mode} frontier differs from {ref_mode}"
            );
        }
    }
}

#[test]
fn mixed_backend_sweep_agrees_across_modes_and_full_point_sets_match() {
    // Both backends in one universe, and compare the *full* evaluated
    // point set bit-for-bit (stronger than the frontier alone: a mode
    // difference in any dominated point would hide behind an identical
    // frontier).
    let sweep = DesignSweep::new(axes_for(32, None, &[32], 2, 23));
    let evaluator = BatchEvaluator::with_threads(2);
    let reference = sweep.evaluate(SweepMode::InProcess(&evaluator)).unwrap();
    let ref_bits: Vec<u64> = reference
        .iter()
        .map(|p| p.mean_abs_error.to_bits())
        .collect();

    let mut pool = PoolConfig::new(WORKER, 3)
        .with_circuit_cache_capacity(sweep.designs().len())
        .spawn()
        .unwrap();
    let pooled = sweep.evaluate(SweepMode::Pool(&mut pool)).unwrap();
    let pooled_bits: Vec<u64> = pooled.iter().map(|p| p.mean_abs_error.to_bits()).collect();
    assert_eq!(pooled_bits, ref_bits);

    // A second pass through the same pool hits the warm digest cache
    // and still reproduces the bytes.
    let warm = sweep.evaluate(SweepMode::Pool(&mut pool)).unwrap();
    let warm_bits: Vec<u64> = warm.iter().map(|p| p.mean_abs_error.to_bits()).collect();
    assert_eq!(warm_bits, ref_bits);

    assert_eq!(
        frontier_csv(&pareto_frontier(&pooled)),
        frontier_csv(&pareto_frontier(&reference))
    );
}
