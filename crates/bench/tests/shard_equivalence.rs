//! End-to-end process-sharding equivalence: real `shard_worker`
//! subprocesses, spawned by the [`ShardCoordinator`], must reproduce
//! single-process results **byte for byte** — for shard counts
//! {1, 2, 3, 7} (ragged splits included), every SNG kind, and the image
//! pipelines — and fail *as values* when workers die (including a
//! killed-worker recovery case riding the coordinator's retry).
//!
//! Since the pool landed, the coordinator is a one-shot facade over
//! `pool::WorkerPool`, so this suite also pins the pool's spawn /
//! dispatch / retry machinery end to end; the persistent-pool paths
//! (warm caches, kill-mid-stream, cache-miss fallback) live in
//! `pool_equivalence.rs`.
//!
//! This suite owns the worker binary via `CARGO_BIN_EXE_shard_worker`;
//! the in-memory protocol properties live in
//! `osc-core/tests/shard_equivalence.rs` and
//! `osc-core/tests/protocol_robustness.rs`.

use osc_apps::backend::OpticalBackend;
use osc_apps::contrast::{run_contrast_sharded, smoothstep_poly};
use osc_apps::gamma_app::{
    apply_optical_lanes, apply_optical_sharded, paper_gamma_polynomial, run_gamma_lanes,
    run_gamma_sharded,
};
use osc_apps::image::Image;
use osc_core::batch::shard::{ShardCoordinator, ShardError, SngKind};
use osc_core::batch::BatchEvaluator;
use osc_core::params::CircuitParams;
use osc_core::system::{OpticalRun, OpticalScSystem};
use osc_stochastic::bernstein::BernsteinPoly;
use osc_stochastic::sng::{ChaoticLaserSng, CounterSng, LfsrSng, XoshiroSng};
use osc_units::Nanometers;

const WORKER: &str = env!("CARGO_BIN_EXE_shard_worker");

fn fig5_system() -> OpticalScSystem {
    OpticalScSystem::new(
        CircuitParams::paper_fig5(),
        BernsteinPoly::new(vec![0.25, 0.625, 0.75]).unwrap(),
    )
    .unwrap()
}

fn reference_runs(
    system: &OpticalScSystem,
    kind: SngKind,
    xs: &[f64],
    stream_length: usize,
    seed: u64,
) -> Vec<OpticalRun> {
    let ev = BatchEvaluator::with_threads(2);
    match kind {
        SngKind::Lfsr => ev.evaluate_many(
            system,
            xs,
            stream_length,
            |s| LfsrSng::new(16, s as u32).unwrap(),
            seed,
        ),
        SngKind::Counter => {
            ev.evaluate_many(system, xs, stream_length, |_| CounterSng::new(), seed)
        }
        SngKind::Xoshiro => ev.evaluate_many(system, xs, stream_length, XoshiroSng::new, seed),
        SngKind::Chaotic => {
            ev.evaluate_many(system, xs, stream_length, ChaoticLaserSng::seeded, seed)
        }
    }
    .unwrap()
}

#[test]
fn sharded_batches_match_single_process_for_all_sngs_and_counts() {
    let system = fig5_system();
    let xs: Vec<f64> = (0..11).map(|i| i as f64 / 10.0).collect();
    for kind in SngKind::ALL {
        let reference = reference_runs(&system, kind, &xs, 128, 7);
        for shards in [1usize, 2, 3, 7] {
            let coordinator = ShardCoordinator::new(WORKER, shards).with_worker_threads(1);
            let sharded = coordinator
                .evaluate_many(&system, kind, &xs, 128, 7)
                .unwrap();
            assert_eq!(sharded, reference, "{} shards={shards}", kind.name());
        }
    }
}

#[test]
fn sharded_gamma_image_is_byte_identical_across_shard_counts() {
    // The acceptance criterion: sharded gamma output must equal the
    // single-process row+lane pipeline bit for bit, for shard counts
    // {1, 2, 3, 7} — 7 splits the 16 rows raggedly (3+3+2+2+2+2+2).
    let image = Image::blobs(13, 16); // width 13 → ragged 8+4+1 lane blocks
    let poly = paper_gamma_polynomial().unwrap();
    let params = CircuitParams::paper_fig7(6, Nanometers::new(0.165));
    let backend = OpticalBackend::new(params, poly, 256, 13).unwrap();
    let in_process =
        apply_optical_lanes(&image, &backend, &BatchEvaluator::with_threads(2)).unwrap();
    for shards in [1usize, 2, 3, 7] {
        let coordinator = ShardCoordinator::new(WORKER, shards);
        let sharded = apply_optical_sharded(&image, &backend, &coordinator).unwrap();
        let identical = sharded
            .pixels()
            .iter()
            .zip(in_process.pixels())
            .all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(identical, "shards={shards}: sharded image bytes diverged");
        // The derived quality reports agree exactly too.
        let lanes_report =
            run_gamma_lanes(&image, &backend, &BatchEvaluator::with_threads(2)).unwrap();
        let sharded_report = run_gamma_sharded(&image, &backend, &coordinator).unwrap();
        assert_eq!(sharded_report, lanes_report, "shards={shards}");
    }
}

#[test]
fn sharded_contrast_matches_lanes_pipeline() {
    let image = Image::blobs(12, 6);
    let params = CircuitParams::paper_fig7(3, Nanometers::new(0.2));
    let backend = OpticalBackend::new(params, smoothstep_poly(), 512, 5).unwrap();
    let (lanes_img, lanes_mae) =
        osc_apps::contrast::run_contrast_lanes(&image, &backend, &BatchEvaluator::with_threads(2))
            .unwrap();
    let (sharded_img, sharded_mae) =
        run_contrast_sharded(&image, &backend, &ShardCoordinator::new(WORKER, 3)).unwrap();
    assert_eq!(sharded_img, lanes_img);
    assert_eq!(sharded_mae, lanes_mae);
}

#[test]
fn dead_worker_surfaces_a_clean_error_after_retries() {
    // A "worker" that exits immediately without speaking the protocol:
    // the coordinator must detect the failure on every attempt and
    // return a ShardError, never panic or hang.
    let system = fig5_system();
    let xs = [0.25, 0.5, 0.75];
    let coordinator = ShardCoordinator::new("/bin/false", 2).with_retries(1);
    let err = coordinator
        .evaluate_many(&system, SngKind::Xoshiro, &xs, 64, 1)
        .unwrap_err();
    assert!(
        matches!(err, ShardError::Worker { .. }),
        "expected a worker failure, got {err}"
    );
    // A binary that cannot be spawned at all is also a value, and is
    // distinguishable from a worker that launched and then died.
    let coordinator = ShardCoordinator::new("/nonexistent/worker", 2).with_retries(0);
    let err = coordinator
        .evaluate_many(&system, SngKind::Xoshiro, &xs, 64, 1)
        .unwrap_err();
    assert!(matches!(err, ShardError::Spawn { .. }), "{err}");
}

#[test]
fn killed_worker_recovers_on_retry_with_identical_results() {
    // A flaky launcher: the first invocation per marker directory kills
    // itself before speaking the protocol (simulating a worker dying
    // mid-batch); every later invocation execs the real worker. With one
    // retry the coordinator must recover and still produce the exact
    // single-process bytes.
    let marker_dir = std::env::temp_dir().join(format!(
        "osc-shard-flaky-{}-{}",
        std::process::id(),
        std::thread::current().name().unwrap_or("t").len()
    ));
    let _ = std::fs::remove_dir_all(&marker_dir);
    std::fs::create_dir_all(&marker_dir).unwrap();
    let script_path = marker_dir.join("flaky_worker.sh");
    let script = format!(
        "#!/bin/sh\nif [ ! -f '{dir}/died-once' ]; then\n  : > '{dir}/died-once'\n  kill -9 $$\nfi\nexec '{worker}'\n",
        dir = marker_dir.display(),
        worker = WORKER,
    );
    std::fs::write(&script_path, script).unwrap();
    let mut perms = std::fs::metadata(&script_path).unwrap().permissions();
    use std::os::unix::fs::PermissionsExt;
    perms.set_mode(0o755);
    std::fs::set_permissions(&script_path, perms).unwrap();

    let system = fig5_system();
    let xs: Vec<f64> = (0..9).map(|i| i as f64 / 8.0).collect();
    let reference = reference_runs(&system, SngKind::Xoshiro, &xs, 128, 3);
    let coordinator = ShardCoordinator::new(&script_path, 3).with_retries(1);
    let recovered = coordinator
        .evaluate_many(&system, SngKind::Xoshiro, &xs, 128, 3)
        .unwrap();
    assert_eq!(recovered, reference, "recovery must not change results");
    assert!(
        marker_dir.join("died-once").exists(),
        "the flaky launcher should have died exactly once"
    );
    // With retries disabled the same first-death launcher fails cleanly.
    let _ = std::fs::remove_file(marker_dir.join("died-once"));
    let coordinator = ShardCoordinator::new(&script_path, 3).with_retries(0);
    let err = coordinator
        .evaluate_many(&system, SngKind::Xoshiro, &xs, 128, 3)
        .unwrap_err();
    assert!(matches!(err, ShardError::Worker { .. }), "{err}");
    let _ = std::fs::remove_dir_all(&marker_dir);
}

#[test]
fn remote_evaluation_errors_cross_the_boundary_as_values() {
    // An out-of-range input is rejected by the worker and reported as a
    // remote error (not retried — the answer is deterministic).
    let system = fig5_system();
    let coordinator = ShardCoordinator::new(WORKER, 2);
    let err = coordinator
        .evaluate_many(&system, SngKind::Xoshiro, &[0.5, 1.5], 64, 1)
        .unwrap_err();
    match err {
        ShardError::Remote { detail, .. } => {
            assert!(detail.contains("outside"), "{detail}");
        }
        other => panic!("expected a remote error, got {other}"),
    }
}

#[test]
fn worker_thread_pinning_does_not_change_results() {
    let system = fig5_system();
    let xs: Vec<f64> = (0..13).map(|i| i as f64 / 12.0).collect();
    let pinned = ShardCoordinator::new(WORKER, 2)
        .with_worker_threads(1)
        .evaluate_many(&system, SngKind::Chaotic, &xs, 256, 11)
        .unwrap();
    let free = ShardCoordinator::new(WORKER, 2)
        .evaluate_many(&system, SngKind::Chaotic, &xs, 256, 11)
        .unwrap();
    assert_eq!(pinned, free, "OSC_THREADS pinning must be unobservable");
}
