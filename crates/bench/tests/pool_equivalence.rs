//! End-to-end persistent-pool equivalence: a [`WorkerPool`] of real
//! `shard_worker` subprocesses must reproduce single-process results
//! **byte for byte** — across worker counts, repeat requests (the
//! warm circuit-cache path), forced cache misses, mid-stream worker
//! kills and fatal errors — and every failure must surface as a
//! [`ShardError`] value with the pool still usable afterwards.
//!
//! This suite owns the worker binary via `CARGO_BIN_EXE_shard_worker`;
//! the in-memory v2 protocol properties live in
//! `osc-core/tests/shard_equivalence.rs` and
//! `osc-core/tests/protocol_robustness.rs`.

use osc_apps::backend::OpticalBackend;
use osc_apps::contrast::{run_contrast_lanes, run_contrast_pooled, smoothstep_poly};
use osc_apps::gamma_app::{
    apply_optical_lanes, apply_optical_pooled, paper_gamma_polynomial, run_gamma_lanes,
    run_gamma_pooled,
};
use osc_apps::image::Image;
use osc_bench::soak::{self, SoakConfig, SoakMode};
use osc_core::backend::BackendKind;
use osc_core::batch::shard::pool::PoolConfig;
use osc_core::batch::shard::{ShardCoordinator, ShardError, SngKind};
use osc_core::batch::BatchEvaluator;
use osc_core::fault::FaultSpec;
use osc_core::params::CircuitParams;
use osc_core::system::{OpticalRun, OpticalScSystem};
use osc_stochastic::bernstein::BernsteinPoly;
use osc_stochastic::sng::{ChaoticLaserSng, CounterSng, LfsrSng, XoshiroSng};
use osc_units::Nanometers;

const WORKER: &str = env!("CARGO_BIN_EXE_shard_worker");

fn fig5_system() -> OpticalScSystem {
    OpticalScSystem::new(
        CircuitParams::paper_fig5(),
        BernsteinPoly::new(vec![0.25, 0.625, 0.75]).unwrap(),
    )
    .unwrap()
}

fn reference_runs(
    system: &OpticalScSystem,
    kind: SngKind,
    xs: &[f64],
    stream_length: usize,
    seed: u64,
) -> Vec<OpticalRun> {
    let ev = BatchEvaluator::with_threads(2);
    match kind {
        SngKind::Lfsr => ev.evaluate_many(
            system,
            xs,
            stream_length,
            |s| LfsrSng::new(16, s as u32).unwrap(),
            seed,
        ),
        SngKind::Counter => {
            ev.evaluate_many(system, xs, stream_length, |_| CounterSng::new(), seed)
        }
        SngKind::Xoshiro => ev.evaluate_many(system, xs, stream_length, XoshiroSng::new, seed),
        SngKind::Chaotic => {
            ev.evaluate_many(system, xs, stream_length, ChaoticLaserSng::seeded, seed)
        }
    }
    .unwrap()
}

#[test]
fn pooled_batches_match_single_process_for_all_sngs_and_worker_counts() {
    let system = fig5_system();
    let xs: Vec<f64> = (0..11).map(|i| i as f64 / 10.0).collect();
    for workers in [1usize, 3] {
        let mut pool = PoolConfig::new(WORKER, workers)
            .with_worker_threads(1)
            .spawn()
            .unwrap();
        for kind in SngKind::ALL {
            let reference = reference_runs(&system, kind, &xs, 128, 7);
            // Twice through the same pool: the first call ships the
            // circuit inline, the second rides the cached reference —
            // both must be byte-identical to the reference.
            for round in 0..2 {
                let pooled = pool.evaluate_many(&system, kind, &xs, 128, 7).unwrap();
                assert_eq!(
                    pooled,
                    reference,
                    "{} workers={workers} round={round}",
                    kind.name()
                );
            }
        }
    }
}

#[test]
fn pooled_images_are_byte_identical_to_the_lanes_pipeline() {
    let image = Image::blobs(13, 16); // width 13 → ragged 8+4+1 lane blocks
    let gamma_poly = paper_gamma_polynomial().unwrap();
    let gamma_backend = OpticalBackend::new(
        CircuitParams::paper_fig7(6, Nanometers::new(0.165)),
        gamma_poly,
        256,
        13,
    )
    .unwrap();
    let contrast_backend = OpticalBackend::new(
        CircuitParams::paper_fig7(3, Nanometers::new(0.2)),
        smoothstep_poly(),
        256,
        5,
    )
    .unwrap();
    let evaluator = BatchEvaluator::with_threads(2);
    let gamma_ref = apply_optical_lanes(&image, &gamma_backend, &evaluator).unwrap();
    let (contrast_ref, contrast_ref_mae) =
        run_contrast_lanes(&image, &contrast_backend, &evaluator).unwrap();
    let mut pool = PoolConfig::new(WORKER, 3).spawn().unwrap();
    // Alternate gamma/contrast twice: both circuits stay cached, and
    // every repetition must reproduce the in-process bytes exactly.
    for round in 0..2 {
        let gamma_pooled = apply_optical_pooled(&image, &gamma_backend, &mut pool).unwrap();
        let identical = gamma_pooled
            .pixels()
            .iter()
            .zip(gamma_ref.pixels())
            .all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(identical, "round {round}: pooled gamma bytes diverged");
        let (contrast_pooled, contrast_mae) =
            run_contrast_pooled(&image, &contrast_backend, &mut pool).unwrap();
        assert_eq!(contrast_pooled, contrast_ref, "round {round}");
        assert_eq!(contrast_mae, contrast_ref_mae, "round {round}");
    }
    // The derived gamma reports agree exactly too.
    let lanes_report = run_gamma_lanes(&image, &gamma_backend, &evaluator).unwrap();
    let pooled_report = run_gamma_pooled(&image, &gamma_backend, &mut pool).unwrap();
    assert_eq!(pooled_report, lanes_report);
}

#[test]
fn soak_modes_produce_identical_bytes() {
    // The CI pool-soak contract in miniature: in-process, pooled and
    // spawn-per-request runs of the shared schedule produce the same
    // bytes.
    let cfg = SoakConfig {
        requests: 6,
        width: 9,
        height: 4,
        stream: 64,
        ..Default::default()
    };
    let in_process = soak::run(&cfg, SoakMode::InProcess).unwrap();
    let mut pool = PoolConfig::new(WORKER, 3).spawn().unwrap();
    let pooled = soak::run(&cfg, SoakMode::Pool(&mut pool)).unwrap();
    let coordinator = ShardCoordinator::new(WORKER, 3);
    let spawned = soak::run(&cfg, SoakMode::Spawn(&coordinator)).unwrap();
    assert_eq!(pooled.bytes, in_process.bytes, "pool ≡ in-process");
    assert_eq!(spawned.bytes, in_process.bytes, "spawn ≡ in-process");
}

#[test]
fn faulted_soak_modes_produce_identical_bytes_across_worker_counts() {
    // The CI fault-soak contract in miniature: a fault-injected run of
    // the shared schedule produces the same bytes in-process, pooled
    // and spawn-per-request, across the worker counts the acceptance
    // criteria name — and those bytes differ from the clean run (the
    // faults are real, not silently dropped on the wire).
    let mut fault = FaultSpec::with_seed(0xFA07);
    fault.flip_probability = 0.02;
    fault.shift_probability = 0.001;
    let cfg = SoakConfig {
        requests: 4,
        width: 9,
        height: 3,
        stream: 128,
        fault: Some(fault),
        ..Default::default()
    };
    let clean_cfg = SoakConfig { fault: None, ..cfg };
    let in_process = soak::run(&cfg, SoakMode::InProcess).unwrap();
    let clean = soak::run(&clean_cfg, SoakMode::InProcess).unwrap();
    assert_ne!(in_process.bytes, clean.bytes, "faults must perturb output");
    for workers in [1usize, 2, 3, 7] {
        let mut pool = PoolConfig::new(WORKER, workers).spawn().unwrap();
        let pooled = soak::run(&cfg, SoakMode::Pool(&mut pool)).unwrap();
        assert_eq!(
            pooled.bytes, in_process.bytes,
            "faulted pool({workers}) ≡ in-process"
        );
        let coordinator = ShardCoordinator::new(WORKER, workers);
        let spawned = soak::run(&cfg, SoakMode::Spawn(&coordinator)).unwrap();
        assert_eq!(
            spawned.bytes, in_process.bytes,
            "faulted spawn({workers}) ≡ in-process"
        );
    }
}

#[test]
fn killed_worker_mid_stream_is_respawned_with_identical_results() {
    let system = fig5_system();
    let xs: Vec<f64> = (0..9).map(|i| i as f64 / 8.0).collect();
    let reference = reference_runs(&system, SngKind::Xoshiro, &xs, 128, 3);
    let mut pool = PoolConfig::new(WORKER, 2).spawn().unwrap();
    let before = pool
        .evaluate_many(&system, SngKind::Xoshiro, &xs, 128, 3)
        .unwrap();
    assert_eq!(before, reference);
    // Kill one worker out from under the pool, mid-stream.
    let pids = pool.worker_pids();
    assert_eq!(pids.len(), 2);
    let status = std::process::Command::new("kill")
        .args(["-9", &pids[0].to_string()])
        .status()
        .unwrap();
    assert!(status.success(), "kill must succeed");
    // The next call hits the dead worker, respawns it transparently and
    // still produces the exact reference bytes (the respawned worker's
    // cold cache forces the inline path — also byte-identical).
    let after = pool
        .evaluate_many(&system, SngKind::Xoshiro, &xs, 128, 3)
        .unwrap();
    assert_eq!(after, reference, "recovery must not change results");
    let new_pids = pool.worker_pids();
    assert_ne!(new_pids[0], pids[0], "the dead worker was respawned");
}

#[test]
fn forced_cache_miss_falls_back_to_inline_transparently() {
    // Poison the pool's cache mirror so its very first request ships as
    // a cached reference the worker has never seen: the worker answers
    // a clean cache miss, the pool resends inline, and the caller sees
    // only the correct bytes.
    let system = fig5_system();
    let xs = [0.1, 0.5, 0.9];
    let reference = reference_runs(&system, SngKind::Xoshiro, &xs, 96, 11);
    let mut pool = PoolConfig::new(WORKER, 1).spawn().unwrap();
    pool.assume_cached(system.params(), system.polynomial().coeffs());
    let pooled = pool
        .evaluate_many(&system, SngKind::Xoshiro, &xs, 96, 11)
        .unwrap();
    assert_eq!(pooled, reference, "cache-miss fallback must be invisible");
    // And the digest is now genuinely cached: the repeat request rides
    // the reference path for real.
    let again = pool
        .evaluate_many(&system, SngKind::Xoshiro, &xs, 96, 11)
        .unwrap();
    assert_eq!(again, reference);
}

#[test]
fn nanocavity_soak_modes_produce_identical_bytes() {
    // The backend-matrix contract in miniature: the nanocavity physics
    // rides the identical schedule through in-process, pooled and
    // spawn-per-request serving and must produce one set of bytes. At
    // the schedule's order-6 gamma circuit the nanocavity decisions are
    // genuinely noisy (folded probabilities inside (0, 1)), so this
    // also drags the uniform-draw kernel tier across the process
    // boundary for the non-default backend.
    let cfg = SoakConfig {
        requests: 4,
        width: 5,
        height: 3,
        stream: 64,
        backend: BackendKind::Nanocavity,
        ..Default::default()
    };
    let in_process = soak::run(&cfg, SoakMode::InProcess).unwrap();
    let mut pool = PoolConfig::new(WORKER, 2).spawn().unwrap();
    let pooled = soak::run(&cfg, SoakMode::Pool(&mut pool)).unwrap();
    let coordinator = ShardCoordinator::new(WORKER, 2);
    let spawned = soak::run(&cfg, SoakMode::Spawn(&coordinator)).unwrap();
    assert_eq!(
        pooled.bytes, in_process.bytes,
        "nanocavity pool ≡ in-process"
    );
    assert_eq!(
        spawned.bytes, in_process.bytes,
        "nanocavity spawn ≡ in-process"
    );
    // And the physics is real: the two backends put different optical
    // power on the detector at the same operating point. (Their folded
    // flip probabilities are all within ~4e-6 of 0 or 1 here, so a
    // schedule this small sees no actual flips on either physics —
    // bytes alone cannot distinguish the backends.)
    use osc_core::backend::ScBackend;
    let params = CircuitParams::paper_fig7(6, Nanometers::new(0.165));
    let poly = paper_gamma_polynomial().unwrap();
    let nano_gamma = OpticalBackend::new(
        params.with_backend(BackendKind::Nanocavity),
        poly.clone(),
        64,
        0,
    )
    .unwrap();
    let mrr_gamma = OpticalBackend::new(params, poly, 64, 0).unwrap();
    let nano_power = nano_gamma
        .system()
        .backend()
        .received_power(3, 0b1)
        .unwrap();
    let mrr_power = mrr_gamma.system().backend().received_power(3, 0b1).unwrap();
    assert_ne!(nano_power.as_mw().to_bits(), mrr_power.as_mw().to_bits());
}

#[test]
fn capacity_one_cache_thrash_is_byte_identical() {
    // The soak schedule alternates two circuits (gamma and contrast),
    // so a worker whose circuit cache holds only ONE system evicts on
    // every request: each circuit reference the pool ships as cached
    // would be stale if the capacity knob were not mirrored
    // dispatcher-side. The run must still match the in-process bytes —
    // eviction costs rebuilds, never correctness — and the default-
    // capacity pool must agree too.
    let cfg = SoakConfig {
        requests: 6,
        width: 4,
        height: 3,
        stream: 64,
        ..Default::default()
    };
    let in_process = soak::run(&cfg, SoakMode::InProcess).unwrap();
    let mut thrashing_pool = PoolConfig::new(WORKER, 2)
        .with_circuit_cache_capacity(1)
        .spawn()
        .unwrap();
    let thrashed = soak::run(&cfg, SoakMode::Pool(&mut thrashing_pool)).unwrap();
    assert_eq!(
        thrashed.bytes, in_process.bytes,
        "capacity-1 thrash ≡ in-process"
    );
    let mut roomy_pool = PoolConfig::new(WORKER, 2)
        .with_circuit_cache_capacity(4)
        .spawn()
        .unwrap();
    let roomy = soak::run(&cfg, SoakMode::Pool(&mut roomy_pool)).unwrap();
    assert_eq!(roomy.bytes, in_process.bytes, "capacity-4 ≡ in-process");
}

#[test]
fn fatal_errors_are_values_and_the_pool_survives_them() {
    let system = fig5_system();
    let mut pool = PoolConfig::new(WORKER, 2).spawn().unwrap();
    // A deterministic rejection (out-of-range input) is a Remote error,
    // not a retry loop...
    let err = pool
        .evaluate_many(&system, SngKind::Xoshiro, &[0.5, 1.5], 64, 1)
        .unwrap_err();
    match err {
        ShardError::Remote { detail, .. } => assert!(detail.contains("outside"), "{detail}"),
        other => panic!("expected a remote error, got {other}"),
    }
    // ...and the pool remains fully usable afterwards.
    let xs = [0.25, 0.5, 0.75];
    let reference = reference_runs(&system, SngKind::Xoshiro, &xs, 64, 1);
    let recovered = pool
        .evaluate_many(&system, SngKind::Xoshiro, &xs, 64, 1)
        .unwrap();
    assert_eq!(recovered, reference);
}

#[test]
fn garbage_speaking_worker_fails_as_a_value() {
    // /bin/echo "answers" with a newline and exits: an invalid frame
    // prefix. The pool must retry on fresh processes and then fail with
    // a clean Worker error — never a panic, hang or huge allocation.
    let system = fig5_system();
    let mut pool = PoolConfig::new("/bin/echo", 2)
        .with_retries(1)
        .spawn()
        .unwrap();
    let err = pool
        .evaluate_many(&system, SngKind::Xoshiro, &[0.5], 64, 1)
        .unwrap_err();
    assert!(matches!(err, ShardError::Worker { .. }), "{err}");
}

#[test]
fn pool_thread_pinning_does_not_change_results() {
    let system = fig5_system();
    let xs: Vec<f64> = (0..13).map(|i| i as f64 / 12.0).collect();
    let mut pinned = PoolConfig::new(WORKER, 2)
        .with_worker_threads(1)
        .spawn()
        .unwrap();
    let mut free = PoolConfig::new(WORKER, 2).spawn().unwrap();
    let a = pinned
        .evaluate_many(&system, SngKind::Chaotic, &xs, 256, 11)
        .unwrap();
    let b = free
        .evaluate_many(&system, SngKind::Chaotic, &xs, 256, 11)
        .unwrap();
    assert_eq!(a, b, "OSC_THREADS pinning must be unobservable");
}
