//! End-to-end TCP front-door equivalence and lifecycle: a [`Service`]
//! serving real `shard_worker` subprocesses must reproduce in-process
//! results **byte for byte** across connection counts, loop modes,
//! fault injection and replicas — and every lifecycle edge (drain
//! mid-request, overload, client disconnect, pipelined slow
//! responses) must surface as complete responses or clean
//! [`ShardError`] values, never hangs, resets or wrong bytes.
//!
//! This suite owns the worker binary via `CARGO_BIN_EXE_shard_worker`;
//! the dispatcher's process-level hardening (stalling stubs, kill -9)
//! lives in `osc-core/tests/pool_hardening.rs`.

use osc_bench::soak::{self, LoadConfig, SoakConfig, SoakMode};
use osc_core::backend::BackendKind;
use osc_core::batch::shard::pool::PoolConfig;
use osc_core::batch::shard::service::{Service, ServiceClient};
use osc_core::batch::shard::{ShardError, ShardRequest, SngKind};
use osc_core::batch::BatchEvaluator;
use osc_core::fault::FaultSpec;
use osc_core::params::CircuitParams;
use osc_core::system::OpticalScSystem;
use osc_stochastic::bernstein::BernsteinPoly;
use osc_stochastic::sng::XoshiroSng;
use std::time::{Duration, Instant};

const WORKER: &str = env!("CARGO_BIN_EXE_shard_worker");

fn fig5_system() -> OpticalScSystem {
    OpticalScSystem::new(
        CircuitParams::paper_fig5(),
        BernsteinPoly::new(vec![0.25, 0.625, 0.75]).unwrap(),
    )
    .unwrap()
}

/// A small fig. 5 batch request, the whole-request unit these
/// lifecycle tests ship.
fn small_request(system: &OpticalScSystem, seed: u64) -> ShardRequest {
    ShardRequest::batch(
        system,
        SngKind::Xoshiro,
        0,
        &[0.15, 0.4, 0.8],
        64,
        seed,
        None,
    )
}

/// The in-process reference for [`small_request`], as estimate bit
/// patterns.
fn reference_bits(system: &OpticalScSystem, seed: u64) -> Vec<u64> {
    BatchEvaluator::with_threads(2)
        .evaluate_many(system, &[0.15, 0.4, 0.8], 64, XoshiroSng::new, seed)
        .unwrap()
        .iter()
        .map(|r| r.estimate.to_bits())
        .collect()
}

fn bits(runs: &[osc_core::system::OpticalRun]) -> Vec<u64> {
    runs.iter().map(|r| r.estimate.to_bits()).collect()
}

/// Binds a service over a fresh pool built from `config`.
fn serve(config: PoolConfig) -> Service {
    let dispatcher = config.spawn_dispatcher().expect("dispatcher spawns");
    Service::bind(("127.0.0.1", 0), dispatcher).expect("service binds an ephemeral port")
}

#[test]
fn service_soak_matches_in_process_bytes() {
    let cfg = SoakConfig {
        requests: 12,
        width: 6,
        height: 4,
        stream: 64,
        ..Default::default()
    };
    let reference = soak::run(&cfg, SoakMode::InProcess).unwrap();
    let service = serve(PoolConfig::new(WORKER, 2));
    let addr = service.local_addr();

    // Closed-loop over 3 connections, then open-loop over 4 — both
    // reassemble to the in-process bytes.
    let closed = soak::run_service(
        &cfg,
        addr,
        &LoadConfig {
            connections: 3,
            open_loop: false,
        },
    )
    .unwrap();
    assert_eq!(closed.bytes, reference.bytes);
    assert_eq!(closed.latencies.len(), cfg.requests);

    let open = soak::run_service(
        &cfg,
        addr,
        &LoadConfig {
            connections: 4,
            open_loop: true,
        },
    )
    .unwrap();
    assert_eq!(open.bytes, reference.bytes);

    // A single-connection SoakMode::Service client agrees too.
    let mut client = ServiceClient::connect(addr).unwrap();
    let single = soak::run(&cfg, SoakMode::Service(&mut client)).unwrap();
    assert_eq!(single.bytes, reference.bytes);

    assert_eq!(service.drain(), (cfg.requests * 3) as u64);
}

#[test]
fn nanocavity_service_soak_matches_in_process_bytes() {
    // Cross-service determinism for the non-default backend: the
    // backend tag rides the TCP framing per request, so one service
    // instance answers the nanocavity schedule byte-identically to the
    // in-process pipeline.
    let cfg = SoakConfig {
        requests: 6,
        width: 4,
        height: 3,
        stream: 64,
        backend: BackendKind::Nanocavity,
        ..Default::default()
    };
    let reference = soak::run(&cfg, SoakMode::InProcess).unwrap();
    let service = serve(PoolConfig::new(WORKER, 2));
    let report = soak::run_service(&cfg, service.local_addr(), &LoadConfig::default()).unwrap();
    assert_eq!(report.bytes, reference.bytes);
}

#[test]
fn faulty_service_soak_matches_in_process_bytes() {
    let mut fault = FaultSpec::with_seed(0xFA07);
    fault.flip_probability = 0.05;
    fault.shift_probability = 0.02;
    fault.validate().unwrap();
    let cfg = SoakConfig {
        requests: 8,
        width: 5,
        height: 3,
        stream: 64,
        fault: Some(fault),
        ..Default::default()
    };
    let reference = soak::run(&cfg, SoakMode::InProcess).unwrap();
    let service = serve(PoolConfig::new(WORKER, 2));
    let report = soak::run_service(&cfg, service.local_addr(), &LoadConfig::default()).unwrap();
    assert_eq!(report.bytes, reference.bytes);
}

#[test]
fn two_service_instances_are_byte_identical() {
    // Replica interchangeability: different worker counts, pipeline
    // depths and processes — same request stream, same bytes.
    let cfg = SoakConfig {
        requests: 10,
        width: 4,
        height: 4,
        stream: 64,
        ..Default::default()
    };
    let replica_a = serve(PoolConfig::new(WORKER, 1));
    let replica_b = serve(PoolConfig::new(WORKER, 3).with_pipeline_depth(3));
    let load = LoadConfig::default();
    let a = soak::run_service(&cfg, replica_a.local_addr(), &load).unwrap();
    let b = soak::run_service(&cfg, replica_b.local_addr(), &load).unwrap();
    assert_eq!(a.bytes, b.bytes);
}

#[test]
fn drain_completes_in_flight_request() {
    let system = fig5_system();
    let expected = reference_bits(&system, 11);
    // 150 ms of injected service time guarantees the request is still
    // in flight when the drain begins.
    let service = serve(PoolConfig::new(WORKER, 1).with_response_delay(Duration::from_millis(150)));
    let addr = service.local_addr();
    let mut client = ServiceClient::connect(addr).unwrap();
    let request = small_request(&system, 11);
    let (id, runs_expected) = client.send_request(&request).unwrap();

    let drainer = std::thread::spawn(move || {
        // Let the request reach the worker, then drain.
        std::thread::sleep(Duration::from_millis(50));
        service.drain()
    });
    // The client mid-request when shutdown begins still receives its
    // complete, correct response.
    let runs = client.read_response(id, runs_expected).unwrap();
    assert_eq!(bits(&runs), expected);
    assert_eq!(drainer.join().unwrap(), 1);

    // After the drain the listener is closed: new connections are
    // refused (or reset before an answer).
    assert!(
        ServiceClient::connect(addr).is_err() || {
            let mut late = ServiceClient::connect(addr).unwrap();
            late.request(&request).is_err()
        }
    );
}

#[test]
fn overload_past_queue_cap_is_an_error_value() {
    let system = fig5_system();
    let expected = reference_bits(&system, 23);
    // One worker at depth 1 with a 300 ms service time and a queue cap
    // of 1: the first request occupies the worker, the second the
    // queue, the third must be rejected — as a value, not a hang or a
    // reset.
    let service = serve(
        PoolConfig::new(WORKER, 1)
            .with_pipeline_depth(1)
            .with_queue_cap(1)
            .with_response_delay(Duration::from_millis(300)),
    );
    let addr = service.local_addr();
    let results: Vec<Result<Vec<u64>, ShardError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..3)
            .map(|i| {
                let system = &system;
                scope.spawn(move || {
                    // Stagger so arrival order is deterministic.
                    std::thread::sleep(Duration::from_millis(100 * i));
                    let mut client = ServiceClient::connect(addr).unwrap();
                    client.request(&small_request(system, 23)).map(|r| bits(&r))
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let (ok, err): (Vec<_>, Vec<_>) = results.into_iter().partition(Result::is_ok);
    assert_eq!(ok.len(), 2, "two requests fit (one in flight, one queued)");
    for runs in ok {
        assert_eq!(runs.unwrap(), expected);
    }
    let message = err[0].as_ref().unwrap_err().to_string();
    assert!(
        message.contains("overloaded"),
        "rejection should name the overload: {message}"
    );
}

#[test]
fn client_disconnect_mid_request_does_not_poison_the_worker() {
    let system = fig5_system();
    let expected = reference_bits(&system, 31);
    let service = serve(PoolConfig::new(WORKER, 1).with_response_delay(Duration::from_millis(100)));
    let addr = service.local_addr();
    // Client A walks away mid-request.
    {
        let mut doomed = ServiceClient::connect(addr).unwrap();
        doomed.send_request(&small_request(&system, 99)).unwrap();
    }
    // Client B, pinned to the same single worker, still gets correct
    // bytes on every subsequent request.
    let mut client = ServiceClient::connect(addr).unwrap();
    for _ in 0..3 {
        let runs = client.request(&small_request(&system, 31)).unwrap();
        assert_eq!(bits(&runs), expected);
    }
}

#[test]
fn pipelined_slow_responses_are_not_misattributed() {
    // Satellite-5 pin: with depth-2 pipelining on one worker, two
    // requests are in flight together. The second response lands ~600
    // ms after its submit — past the 500 ms read timeout — but the
    // deadline bounds head-of-line service time, not time since
    // submit, so BOTH must succeed. A per-request-clock dispatcher
    // would misattribute the wait and time the second request out.
    let system = fig5_system();
    let expected = reference_bits(&system, 47);
    let dispatcher = PoolConfig::new(WORKER, 1)
        .with_pipeline_depth(2)
        .with_response_delay(Duration::from_millis(300))
        .with_read_timeout(Duration::from_millis(500))
        .spawn_dispatcher()
        .expect("dispatcher spawns");
    let started = Instant::now();
    let results: Vec<Result<Vec<u64>, ShardError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let dispatcher = &dispatcher;
                let system = &system;
                scope.spawn(move || {
                    dispatcher
                        .submit(small_request(system, 47))
                        .map(|r| bits(&r))
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed = started.elapsed();
    for result in results {
        assert_eq!(result.unwrap(), expected);
    }
    // The worker really did serialize the two delays: the pair cannot
    // finish faster than 2 × 300 ms, so the second response genuinely
    // outlived the 500 ms deadline measured from submit.
    assert!(
        elapsed >= Duration::from_millis(550),
        "expected serialized service times, finished in {elapsed:?}"
    );
}

#[test]
fn a_genuinely_stalled_head_still_times_out() {
    // The converse of the pin above: when the head-of-line response
    // itself exceeds the deadline, the timeout fires and surfaces as a
    // value after retries.
    let system = fig5_system();
    let dispatcher = PoolConfig::new(WORKER, 1)
        .with_response_delay(Duration::from_millis(400))
        .with_read_timeout(Duration::from_millis(50))
        .with_retries(0)
        .spawn_dispatcher()
        .expect("dispatcher spawns");
    let err = dispatcher.submit(small_request(&system, 5)).unwrap_err();
    assert!(
        matches!(err, ShardError::Timeout { .. }),
        "expected a timeout value, got: {err}"
    );
}
