//! # osc-units
//!
//! Type-safe physical quantities for photonic circuit modeling.
//!
//! The optical stochastic computing models juggle wavelengths (nm), optical
//! powers (mW and dBm), dimensionless dB ratios (insertion loss, extinction
//! ratio), times (ps–ns), data rates (Gb/s), energies (pJ/bit) and detector
//! currents (µA). Mixing those up silently is the classic failure mode of
//! scientific reproductions, so each quantity is a distinct newtype with
//! explicit constructors and conversions (C-NEWTYPE).
//!
//! # Example
//!
//! ```
//! use osc_units::{DbRatio, Milliwatts, Nanometers};
//!
//! // The paper's minimum pump power (Section V.A):
//! let insertion_loss = DbRatio::from_db(4.5);
//! let detuning = Nanometers::new(2.1);
//! let ote_nm_per_mw = 0.01; // 0.1 nm per 10 mW
//! let pump = Milliwatts::new(detuning.as_nm() / (ote_nm_per_mw * insertion_loss.as_linear()));
//! assert!((pump.as_mw() - 591.86).abs() < 0.05);
//! ```

mod current;
mod energy;
mod power;
mod ratio;
mod time;
mod wavelength;

pub use current::Amperes;
pub use energy::Picojoules;
pub use power::{Milliwatts, Watts};
pub use ratio::DbRatio;
pub use time::{GigahertzRate, Seconds};
pub use wavelength::Nanometers;

/// Speed of light in vacuum, m/s.
pub const SPEED_OF_LIGHT_M_PER_S: f64 = 299_792_458.0;

/// Implements the shared arithmetic surface of a scalar quantity newtype:
/// same-unit addition/subtraction/summation, scaling by `f64`, ratio of two
/// quantities, and ordering.
macro_rules! impl_quantity_ops {
    ($ty:ident) => {
        impl core::ops::Add for $ty {
            type Output = $ty;
            fn add(self, rhs: $ty) -> $ty {
                $ty(self.0 + rhs.0)
            }
        }
        impl core::ops::Sub for $ty {
            type Output = $ty;
            fn sub(self, rhs: $ty) -> $ty {
                $ty(self.0 - rhs.0)
            }
        }
        impl core::ops::Mul<f64> for $ty {
            type Output = $ty;
            fn mul(self, rhs: f64) -> $ty {
                $ty(self.0 * rhs)
            }
        }
        impl core::ops::Mul<$ty> for f64 {
            type Output = $ty;
            fn mul(self, rhs: $ty) -> $ty {
                $ty(self * rhs.0)
            }
        }
        impl core::ops::Div<f64> for $ty {
            type Output = $ty;
            fn div(self, rhs: f64) -> $ty {
                $ty(self.0 / rhs)
            }
        }
        impl core::ops::Div<$ty> for $ty {
            /// Ratio of two like quantities is dimensionless.
            type Output = f64;
            fn div(self, rhs: $ty) -> f64 {
                self.0 / rhs.0
            }
        }
        impl core::ops::Neg for $ty {
            type Output = $ty;
            fn neg(self) -> $ty {
                $ty(-self.0)
            }
        }
        impl core::iter::Sum for $ty {
            fn sum<I: Iterator<Item = $ty>>(iter: I) -> $ty {
                $ty(iter.map(|q| q.0).sum())
            }
        }
        impl $ty {
            /// Absolute value.
            pub fn abs(self) -> $ty {
                $ty(self.0.abs())
            }
            /// Component-wise maximum.
            pub fn max(self, other: $ty) -> $ty {
                $ty(self.0.max(other.0))
            }
            /// Component-wise minimum.
            pub fn min(self, other: $ty) -> $ty {
                $ty(self.0.min(other.0))
            }
            /// Whether the underlying value is finite.
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }
    };
}
pub(crate) use impl_quantity_ops;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantities_do_not_cross_assign() {
        // This test documents the type-safety property: a wavelength and a
        // power are different types. (Compile-time property; here we just
        // exercise both.)
        let wl = Nanometers::new(1550.0);
        let p = Milliwatts::new(1.0);
        assert_eq!(wl.as_nm(), 1550.0);
        assert_eq!(p.as_mw(), 1.0);
    }

    #[test]
    fn frequency_wavelength_round_trip() {
        let wl = Nanometers::new(1550.0);
        let f_hz = SPEED_OF_LIGHT_M_PER_S / wl.as_meters();
        let back = Nanometers::from_meters(SPEED_OF_LIGHT_M_PER_S / f_hz);
        assert!((back.as_nm() - 1550.0).abs() < 1e-9);
    }

    #[test]
    fn paper_pump_power_example() {
        let il = DbRatio::from_db(4.5);
        let pump_mw = 2.1 / (0.01 * il.as_linear());
        assert!((pump_mw - 591.8).abs() < 0.1, "pump={pump_mw}");
    }
}
