//! Electrical current, for the photodetector model.

/// Electrical current in amperes.
///
/// The detector model (paper Eq. 8) compares photocurrent
/// `I = R × P_received` against the internal noise current `i_n`; both are
/// represented with this type.
///
/// ```
/// use osc_units::{Amperes, Milliwatts};
/// let responsivity = 1.1; // A/W
/// let photocurrent = Amperes::from_power(Milliwatts::new(0.476), responsivity);
/// assert!((photocurrent.as_microamps() - 523.6).abs() < 0.1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Amperes(pub(crate) f64);

crate::impl_quantity_ops!(Amperes);

impl Amperes {
    /// Creates a current from amperes.
    pub fn new(a: f64) -> Self {
        Amperes(a)
    }

    /// Creates a current from microamperes.
    pub fn from_microamps(ua: f64) -> Self {
        Amperes(ua * 1e-6)
    }

    /// Photocurrent produced by `power` on a detector with the given
    /// responsivity (A/W).
    pub fn from_power(power: crate::Milliwatts, responsivity_a_per_w: f64) -> Self {
        Amperes(power.as_watts() * responsivity_a_per_w)
    }

    /// Value in amperes.
    pub fn as_amps(self) -> f64 {
        self.0
    }

    /// Value in microamperes.
    pub fn as_microamps(self) -> f64 {
        self.0 * 1e6
    }
}

impl std::fmt::Display for Amperes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0.abs() < 1e-3 {
            write!(f, "{} µA", self.as_microamps())
        } else {
            write!(f, "{} A", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Milliwatts;

    #[test]
    fn microamp_round_trip() {
        let i = Amperes::from_microamps(11.5);
        assert!((i.as_amps() - 1.15e-5).abs() < 1e-18);
        assert!((i.as_microamps() - 11.5).abs() < 1e-12);
    }

    #[test]
    fn photocurrent_from_power() {
        let i = Amperes::from_power(Milliwatts::new(1.0), 1.0);
        assert!((i.as_amps() - 1e-3).abs() < 1e-15);
    }

    #[test]
    fn snr_style_ratio() {
        let signal = Amperes::from_power(Milliwatts::new(0.476), 1.0);
        let noise = Amperes::from_microamps(50.0);
        assert!((signal / noise - 9.52).abs() < 0.01);
    }

    #[test]
    fn display_scales() {
        assert_eq!(Amperes::from_microamps(2.0).to_string(), "2 µA");
        assert_eq!(Amperes::new(1.5).to_string(), "1.5 A");
    }
}
