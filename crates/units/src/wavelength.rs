//! Optical wavelength.

/// A wavelength (or wavelength difference) in nanometers.
///
/// The paper works exclusively in the C-band around 1550 nm with shifts and
/// spacings between 0.1 nm and a few nm, so nanometers are the natural
/// storage unit.
///
/// ```
/// use osc_units::Nanometers;
/// let spacing = Nanometers::new(1.0);
/// let l2 = Nanometers::new(1550.0);
/// let l0 = l2 - spacing * 2.0;
/// assert_eq!(l0.as_nm(), 1548.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Nanometers(pub(crate) f64);

crate::impl_quantity_ops!(Nanometers);

impl Nanometers {
    /// Creates a wavelength from a value in nanometers.
    pub fn new(nm: f64) -> Self {
        Nanometers(nm)
    }

    /// Creates a wavelength from a value in meters.
    pub fn from_meters(m: f64) -> Self {
        Nanometers(m * 1e9)
    }

    /// Creates a wavelength from a value in micrometers.
    pub fn from_um(um: f64) -> Self {
        Nanometers(um * 1e3)
    }

    /// Value in nanometers.
    pub fn as_nm(self) -> f64 {
        self.0
    }

    /// Value in meters.
    pub fn as_meters(self) -> f64 {
        self.0 * 1e-9
    }

    /// Value in micrometers.
    pub fn as_um(self) -> f64 {
        self.0 * 1e-3
    }

    /// Optical frequency (Hz) of light at this vacuum wavelength.
    ///
    /// # Panics
    ///
    /// Panics if the wavelength is not strictly positive.
    pub fn frequency_hz(self) -> f64 {
        assert!(self.0 > 0.0, "frequency of non-positive wavelength");
        crate::SPEED_OF_LIGHT_M_PER_S / self.as_meters()
    }
}

impl std::fmt::Display for Nanometers {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} nm", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Nanometers::from_meters(1.55e-6), Nanometers::new(1550.0));
        assert_eq!(Nanometers::from_um(1.55), Nanometers::new(1550.0));
    }

    #[test]
    fn arithmetic() {
        let a = Nanometers::new(1550.0);
        let b = Nanometers::new(0.1);
        assert_eq!((a + b).as_nm(), 1550.1);
        assert_eq!((a - b).as_nm(), 1549.9);
        assert_eq!((b * 3.0).as_nm(), 0.30000000000000004);
        assert_eq!(a / a, 1.0);
    }

    #[test]
    fn c_band_frequency() {
        let f = Nanometers::new(1550.0).frequency_hz();
        assert!((f - 1.934e14).abs() / 1.934e14 < 1e-3);
    }

    #[test]
    fn display_format() {
        assert_eq!(Nanometers::new(1550.1).to_string(), "1550.1 nm");
    }

    #[test]
    fn ordering() {
        assert!(Nanometers::new(1548.0) < Nanometers::new(1550.0));
    }

    #[test]
    fn sum_iterator() {
        let total: Nanometers = (0..3).map(|_| Nanometers::new(0.5)).sum();
        assert_eq!(total.as_nm(), 1.5);
    }
}
