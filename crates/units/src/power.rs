//! Optical power.

use crate::{energy::Picojoules, time::Seconds};

/// Optical power in milliwatts.
///
/// The working unit throughout the paper (probe lasers ~0.25–1 mW, pump
/// laser ~25–600 mW).
///
/// ```
/// use osc_units::Milliwatts;
/// let probe = Milliwatts::new(1.0);
/// let received = probe * 0.476;
/// assert!((received.as_mw() - 0.476).abs() < 1e-12);
/// assert!((received.as_dbm() - (-3.224)).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Milliwatts(pub(crate) f64);

crate::impl_quantity_ops!(Milliwatts);

impl Milliwatts {
    /// Zero power.
    pub const ZERO: Milliwatts = Milliwatts(0.0);

    /// Creates a power from milliwatts.
    pub fn new(mw: f64) -> Self {
        Milliwatts(mw)
    }

    /// Creates a power from watts.
    pub fn from_watts(w: f64) -> Self {
        Milliwatts(w * 1e3)
    }

    /// Creates a power from a dBm level.
    pub fn from_dbm(dbm: f64) -> Self {
        Milliwatts(10f64.powf(dbm / 10.0))
    }

    /// Value in milliwatts.
    pub fn as_mw(self) -> f64 {
        self.0
    }

    /// Value in watts.
    pub fn as_watts(self) -> f64 {
        self.0 * 1e-3
    }

    /// Level in dBm.
    ///
    /// Returns `-inf` for zero power; panics on negative power because a
    /// negative absolute power has no dBm representation.
    ///
    /// # Panics
    ///
    /// Panics if the power is negative.
    pub fn as_dbm(self) -> f64 {
        assert!(self.0 >= 0.0, "negative power has no dBm representation");
        10.0 * self.0.log10()
    }

    /// Energy delivered over a duration.
    pub fn over(self, duration: Seconds) -> Picojoules {
        Picojoules::from_joules(self.as_watts() * duration.as_secs())
    }

    /// Whether this is a physically meaningful (finite, non-negative) power.
    pub fn is_physical(self) -> bool {
        self.0.is_finite() && self.0 >= 0.0
    }
}

impl std::fmt::Display for Milliwatts {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} mW", self.0)
    }
}

/// Optical power in watts, for high-power pump budgets.
///
/// Kept distinct from [`Milliwatts`] only as a reading aid at API
/// boundaries; convert with [`Watts::as_milliwatts`].
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Watts(pub(crate) f64);

crate::impl_quantity_ops!(Watts);

impl Watts {
    /// Creates a power from watts.
    pub fn new(w: f64) -> Self {
        Watts(w)
    }

    /// Value in watts.
    pub fn as_watts(self) -> f64 {
        self.0
    }

    /// Converts to milliwatts.
    pub fn as_milliwatts(self) -> Milliwatts {
        Milliwatts(self.0 * 1e3)
    }
}

impl From<Watts> for Milliwatts {
    fn from(w: Watts) -> Milliwatts {
        w.as_milliwatts()
    }
}

impl From<Milliwatts> for Watts {
    fn from(mw: Milliwatts) -> Watts {
        Watts(mw.as_watts())
    }
}

impl std::fmt::Display for Watts {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} W", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dbm_round_trip() {
        let p = Milliwatts::from_dbm(3.0);
        assert!((p.as_mw() - 1.995).abs() < 0.001);
        assert!((p.as_dbm() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn zero_dbm_is_one_mw() {
        assert!((Milliwatts::from_dbm(0.0).as_mw() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn watts_conversions() {
        let p = Watts::new(0.6);
        assert_eq!(p.as_milliwatts().as_mw(), 600.0);
        let back: Watts = Milliwatts::new(600.0).into();
        assert_eq!(back.as_watts(), 0.6);
    }

    #[test]
    fn energy_over_duration() {
        // 591.8 mW over a 26 ps pulse ~ 15.4 pJ.
        let e = Milliwatts::new(591.8).over(Seconds::from_picos(26.0));
        assert!((e.as_pj() - 15.3868).abs() < 1e-3, "e={e:?}");
    }

    #[test]
    fn physicality_check() {
        assert!(Milliwatts::new(1.0).is_physical());
        assert!(Milliwatts::ZERO.is_physical());
        assert!(!Milliwatts::new(-0.1).is_physical());
        assert!(!Milliwatts::new(f64::NAN).is_physical());
    }

    #[test]
    #[should_panic(expected = "no dBm representation")]
    fn negative_power_dbm_panics() {
        let _ = Milliwatts::new(-1.0).as_dbm();
    }

    #[test]
    fn sum_of_received_channels() {
        // Fig. 5(a): 0.091 + 0.004 + 0.0002 = 0.0952 mW on the detector.
        let total: Milliwatts = [0.091, 0.004, 0.0002]
            .iter()
            .map(|&t| Milliwatts::new(1.0) * t)
            .sum();
        assert!((total.as_mw() - 0.0952).abs() < 1e-12);
    }
}
