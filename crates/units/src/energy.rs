//! Energy quantities.

/// Energy in picojoules.
///
/// The paper's key efficiency metric is *laser energy per computed bit*
/// (20.1 pJ/bit for the 2nd-order circuit at 1 GHz), so picojoules are the
/// storage unit.
///
/// ```
/// use osc_units::{Milliwatts, Picojoules, Seconds};
/// // A pulsed pump: 121 mW for 26 ps at 20% lasing efficiency.
/// let optical = Milliwatts::new(121.0).over(Seconds::from_picos(26.0));
/// let wall_plug = optical / 0.2;
/// assert!((wall_plug.as_pj() - 15.73).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Picojoules(pub(crate) f64);

crate::impl_quantity_ops!(Picojoules);

impl Picojoules {
    /// Zero energy.
    pub const ZERO: Picojoules = Picojoules(0.0);

    /// Creates an energy from picojoules.
    pub fn new(pj: f64) -> Self {
        Picojoules(pj)
    }

    /// Creates an energy from joules.
    pub fn from_joules(j: f64) -> Self {
        Picojoules(j * 1e12)
    }

    /// Value in picojoules.
    pub fn as_pj(self) -> f64 {
        self.0
    }

    /// Value in joules.
    pub fn as_joules(self) -> f64 {
        self.0 * 1e-12
    }

    /// Value in femtojoules.
    pub fn as_fj(self) -> f64 {
        self.0 * 1e3
    }
}

impl std::fmt::Display for Picojoules {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} pJ", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Milliwatts, Seconds};

    #[test]
    fn joule_round_trip() {
        let e = Picojoules::from_joules(20.1e-12);
        assert!((e.as_pj() - 20.1).abs() < 1e-12);
        assert!((e.as_joules() - 20.1e-12).abs() < 1e-24);
    }

    #[test]
    fn probe_laser_energy_per_bit() {
        // Three 0.3 mW probe lasers over a 1 ns bit at 20% efficiency:
        // 3 * 0.3 mW * 1 ns / 0.2 = 4.5 pJ.
        let per_laser = Milliwatts::new(0.3).over(Seconds::from_nanos(1.0));
        let total = (per_laser * 3.0) / 0.2;
        assert!((total.as_pj() - 4.5).abs() < 1e-9);
    }

    #[test]
    fn femtojoules() {
        assert_eq!(Picojoules::new(1.5).as_fj(), 1500.0);
    }

    #[test]
    fn accumulation() {
        let total: Picojoules = vec![Picojoules::new(15.7), Picojoules::new(4.4)]
            .into_iter()
            .sum();
        assert!((total.as_pj() - 20.1).abs() < 1e-12);
    }
}
