//! Dimensionless power ratios expressed in decibels.

/// A dimensionless power ratio stored in dB.
///
/// Used for insertion loss (IL), extinction ratio (ER), and transmission
/// factors. The paper's Eq. (7.b) uses the *linear fraction* form (`IL%`,
/// `ER%`); [`DbRatio::as_linear`] performs that conversion:
/// `linear = 10^(-dB/10)` — note the sign convention: a **positive** dB
/// value denotes attenuation (fraction < 1), matching how the paper quotes
/// IL = 4.5 dB ⇒ IL% ≈ 0.355.
///
/// ```
/// use osc_units::DbRatio;
/// let il = DbRatio::from_db(4.5);
/// assert!((il.as_linear() - 0.35481).abs() < 1e-4);
/// let er = DbRatio::from_linear(0.047624);
/// assert!((er.as_db() - 13.22).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct DbRatio(f64);

impl DbRatio {
    /// Lossless ratio (0 dB, linear 1.0).
    pub const UNITY: DbRatio = DbRatio(0.0);

    /// Creates a ratio from an attenuation in dB (positive = loss).
    pub fn from_db(db: f64) -> Self {
        DbRatio(db)
    }

    /// Creates a ratio from a linear power fraction in `(0, ∞)`.
    ///
    /// # Panics
    ///
    /// Panics if `linear` is not strictly positive (0 has no dB value).
    pub fn from_linear(linear: f64) -> Self {
        assert!(
            linear > 0.0 && linear.is_finite(),
            "linear ratio must be positive and finite, got {linear}"
        );
        DbRatio(-10.0 * linear.log10())
    }

    /// Attenuation in dB (positive = loss).
    pub fn as_db(self) -> f64 {
        self.0
    }

    /// Linear power fraction `10^(-dB/10)`.
    pub fn as_linear(self) -> f64 {
        10f64.powf(-self.0 / 10.0)
    }

    /// Cascades two attenuations (dB values add, linear fractions multiply).
    pub fn cascade(self, other: DbRatio) -> DbRatio {
        DbRatio(self.0 + other.0)
    }

    /// Whether this ratio attenuates (loss > 0 dB).
    pub fn is_lossy(self) -> bool {
        self.0 > 0.0
    }
}

impl std::ops::Add for DbRatio {
    type Output = DbRatio;
    /// `+` cascades attenuations, mirroring the engineering habit of
    /// summing dB budgets.
    fn add(self, rhs: DbRatio) -> DbRatio {
        self.cascade(rhs)
    }
}

impl std::fmt::Display for DbRatio {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} dB", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values() {
        assert!((DbRatio::from_db(3.0103).as_linear() - 0.5).abs() < 1e-4);
        assert!((DbRatio::from_db(10.0).as_linear() - 0.1).abs() < 1e-12);
        assert_eq!(DbRatio::UNITY.as_linear(), 1.0);
    }

    #[test]
    fn round_trip() {
        for db in [0.0, 0.5, 3.2, 4.5, 6.5, 13.22] {
            let r = DbRatio::from_db(db);
            let back = DbRatio::from_linear(r.as_linear());
            assert!((back.as_db() - db).abs() < 1e-10);
        }
    }

    #[test]
    fn cascade_multiplies_linear() {
        let a = DbRatio::from_db(3.0);
        let b = DbRatio::from_db(4.5);
        let c = a + b;
        assert!((c.as_linear() - a.as_linear() * b.as_linear()).abs() < 1e-12);
        assert_eq!(c.as_db(), 7.5);
    }

    #[test]
    fn paper_il_er_values() {
        // Ziebell et al. MZI: IL = 4.5 dB, paper-derived ER = 13.22 dB.
        let il = DbRatio::from_db(4.5);
        let er = DbRatio::from_db(13.22);
        assert!((il.as_linear() - 0.354_81).abs() < 1e-4);
        assert!((il.as_linear() * er.as_linear() - 0.016_9).abs() < 1e-4);
    }

    #[test]
    fn negative_db_is_gain() {
        let g = DbRatio::from_db(-3.0);
        assert!(g.as_linear() > 1.0);
        assert!(!g.is_lossy());
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_linear_panics() {
        let _ = DbRatio::from_linear(0.0);
    }
}
