//! Time and data-rate quantities.

/// A duration in seconds (stored as f64 seconds; constructed from ps/ns
/// since the circuit's time scales are 26 ps pulses and 1 ns bit slots).
///
/// ```
/// use osc_units::Seconds;
/// let bit = Seconds::from_nanos(1.0);
/// let pulse = Seconds::from_picos(26.0);
/// assert!(pulse < bit);
/// assert!((bit.as_nanos() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Seconds(pub(crate) f64);

crate::impl_quantity_ops!(Seconds);

impl Seconds {
    /// Creates a duration from seconds.
    pub fn new(s: f64) -> Self {
        Seconds(s)
    }

    /// Creates a duration from nanoseconds.
    pub fn from_nanos(ns: f64) -> Self {
        Seconds(ns * 1e-9)
    }

    /// Creates a duration from picoseconds.
    pub fn from_picos(ps: f64) -> Self {
        Seconds(ps * 1e-12)
    }

    /// Value in seconds.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Value in nanoseconds.
    pub fn as_nanos(self) -> f64 {
        self.0 * 1e9
    }

    /// Value in picoseconds.
    pub fn as_picos(self) -> f64 {
        self.0 * 1e12
    }
}

impl std::fmt::Display for Seconds {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0.abs() < 1e-9 {
            write!(f, "{} ps", self.as_picos())
        } else if self.0.abs() < 1e-3 {
            write!(f, "{} ns", self.as_nanos())
        } else {
            write!(f, "{} s", self.0)
        }
    }
}

/// A serial data rate in Gb/s.
///
/// The paper evaluates 1 Gb/s SC streams against literature modulators at
/// 40–60 Gb/s; the reciprocal gives the bit slot duration.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct GigahertzRate(f64);

impl GigahertzRate {
    /// Creates a rate from Gb/s.
    ///
    /// # Panics
    ///
    /// Panics if the rate is not strictly positive.
    pub fn new(gbps: f64) -> Self {
        assert!(gbps > 0.0, "data rate must be positive, got {gbps}");
        GigahertzRate(gbps)
    }

    /// Rate in Gb/s.
    pub fn as_gbps(self) -> f64 {
        self.0
    }

    /// Rate in bits per second.
    pub fn as_bps(self) -> f64 {
        self.0 * 1e9
    }

    /// Duration of one bit slot.
    pub fn bit_period(self) -> Seconds {
        Seconds(1.0 / self.as_bps())
    }

    /// Throughput ratio against another rate (e.g. the paper's 10× claim
    /// for 1 GHz optics over 100 MHz CMOS).
    pub fn speedup_over(self, other: GigahertzRate) -> f64 {
        self.0 / other.0
    }
}

impl std::fmt::Display for GigahertzRate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} Gb/s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        assert_eq!(Seconds::from_nanos(1.0).as_secs(), 1e-9);
        assert_eq!(Seconds::from_picos(26.0).as_picos(), 26.0);
    }

    #[test]
    fn bit_period_of_one_gbps() {
        let r = GigahertzRate::new(1.0);
        assert!((r.bit_period().as_nanos() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn paper_speedup_claim() {
        // 1 GHz optical SC vs the 100 MHz CMOS ReSC of [9]: 10x.
        let optical = GigahertzRate::new(1.0);
        let cmos = GigahertzRate::new(0.1);
        assert!((optical.speedup_over(cmos) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn display_picks_scale() {
        assert_eq!(Seconds::from_picos(26.0).to_string(), "26 ps");
        assert_eq!(Seconds::from_nanos(2.0).to_string(), "2 ns");
        assert_eq!(Seconds::new(1.5).to_string(), "1.5 s");
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_rate_panics() {
        let _ = GigahertzRate::new(0.0);
    }
}
